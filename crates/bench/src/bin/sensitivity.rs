//! Sensitivity studies (the paper's §6.4 closing paragraph; details in its
//! technical report \[41\]): how the worst-case capacity of each policy
//! responds to (1) the fraction of high-priority servers, (2) `Pcap_min`,
//! and (3) the contractual budget. Includes an SPO on/off ablation on the
//! stranded-power rig.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin sensitivity [-- --worst-trials N]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{stranded_rig, RigConfig};
use capmaestro_server::ServerPowerModel;
use capmaestro_units::Watts;

fn worst_counts(config: CapacityConfig) -> [usize; 3] {
    let planner = CapacityPlanner::new(config);
    let mut out = [0usize; 3];
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        out[i] = planner.max_deployable(*policy, Condition::WorstCase);
    }
    out
}

fn main() {
    let args = Args::capture();
    banner(
        "Sensitivity",
        "worst-case capacity vs high-priority share, Pcap_min, and contractual budget",
    );
    let trials: usize = args.get("worst-trials", 20);

    // (1) High-priority fraction.
    println!("(1) high-priority fraction (paper default 30%)");
    let mut t = Table::new(vec!["High-pri %", "No Priority", "Local", "Global"]);
    for frac in [0.1, 0.3, 0.5, 0.7] {
        let config = CapacityConfig {
            high_priority_fraction: frac,
            worst_trials: trials,
            ..CapacityConfig::default()
        };
        let c = worst_counts(config);
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(fewer high-priority servers ⇒ more low-priority headroom ⇒ larger global capacity)\n");

    // (2) Pcap_min.
    println!("(2) Pcap_min (paper default 270 W)");
    let mut t = Table::new(vec!["Pcap_min", "No Priority", "Local", "Global"]);
    for cap_min in [230.0, 270.0, 310.0] {
        let config = CapacityConfig {
            model: ServerPowerModel::new(
                Watts::new(160.0),
                Watts::new(cap_min),
                Watts::new(490.0),
            ),
            worst_trials: trials,
            ..CapacityConfig::default()
        };
        let c = worst_counts(config);
        t.row(vec![
            format!("{cap_min:.0} W"),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("(a deeper throttling range lets low-priority servers yield more power)\n");

    // (3) Contractual budget.
    println!("(3) contractual budget per phase (paper default 700 kW)");
    let mut t = Table::new(vec!["Budget", "No Priority", "Local", "Global"]);
    for kw in [600.0, 700.0, 800.0] {
        let config = CapacityConfig {
            contractual_per_phase: Watts::from_kilowatts(kw),
            worst_trials: trials,
            ..CapacityConfig::default()
        };
        let c = worst_counts(config);
        t.row(vec![
            format!("{kw:.0} kW"),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();

    // (4) SPO ablation on the stranded-power rig.
    println!("(4) SPO ablation: Y-side feed utilization on the Fig. 7a rig");
    for (label, spo) in [("without SPO", false), ("with SPO", true)] {
        let rig = stranded_rig(RigConfig::table3().with_spo(spo));
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        engine.run(150);
        let sb_perf = engine
            .server(sb)
            .expect("rig server")
            .performance_fraction();
        println!("  {label}: SB performance fraction {sb_perf}");
    }
}
