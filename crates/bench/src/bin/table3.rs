//! Table 3: per-supply budgets and consumption with and without the
//! stranded-power optimization (§6.3, Fig. 7a rig).
//!
//! Paper shape: without SPO, SC and SD strand ~25–30 W each on the Y side
//! (budgeted more than consumed); with SPO those budgets shrink to actual
//! use and SB (Y-side only) gains ~67 W.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin table3
//! ```

use capmaestro_bench::banner;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{stranded_rig, RigConfig};
use capmaestro_topology::presets::RIG_SERVER_NAMES;
use capmaestro_topology::SupplyIndex;

/// X/Y budget & consumption per server at steady state.
fn run(spo: bool) -> Vec<[f64; 4]> {
    let rig = stranded_rig(RigConfig::table3().with_spo(spo));
    let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
    let mut engine = Engine::new(rig);
    engine.run(150);
    let report = engine.run_control_round();
    let mut rows = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        // Supply 0 is the X side for SA/SC/SD; SB's only supply (index 0)
        // is on the Y side.
        let (bx, by) = match i {
            0 => (report.supply_budget(*id, SupplyIndex::FIRST), None),
            1 => (None, report.supply_budget(*id, SupplyIndex::FIRST)),
            _ => (
                report.supply_budget(*id, SupplyIndex::FIRST),
                report.supply_budget(*id, SupplyIndex::SECOND),
            ),
        };
        let snap = engine.server(*id).expect("rig server").sense();
        let (cx, cy) = match i {
            0 => (snap.supply_ac[0].as_f64(), 0.0),
            1 => (0.0, snap.supply_ac[0].as_f64()),
            _ => (snap.supply_ac[0].as_f64(), snap.supply_ac[1].as_f64()),
        };
        rows.push([
            bx.map(|w| w.as_f64()).unwrap_or(0.0),
            by.map(|w| w.as_f64()).unwrap_or(0.0),
            cx,
            cy,
        ]);
    }
    rows
}

fn main() {
    banner(
        "Table 3",
        "stranded power: per-supply budgets vs consumption, without and with SPO (700 W per feed)",
    );
    for (label, spo) in [("Global Priority w/o SPO", false), ("Global Priority w/ SPO", true)] {
        let rows = run(spo);
        let mut table = Table::new(vec![
            "Server",
            "Budget X/Y (W)",
            "Consumption X/Y (W)",
            "Stranded (W)",
        ]);
        for (i, name) in RIG_SERVER_NAMES.iter().enumerate() {
            let [bx, by, cx, cy] = rows[i];
            let stranded = (bx - cx).max(0.0) + (by - cy).max(0.0);
            table.row(vec![
                (*name).to_string(),
                format!("{bx:.0}/{by:.0}"),
                format!("{cx:.0}/{cy:.0}"),
                format!("{stranded:.0}"),
            ]);
        }
        println!("{label}:");
        print!("{}", table.render());
        println!();
    }
    println!("paper w/o SPO: SC strands ~27 W and SD ~29 W on the Y side;");
    println!("paper w/ SPO: stranded budgets shrink to actual use and SB gains ~67 W");
}
