//! Figure 8: the distribution of fleet-average CPU utilization driving the
//! typical-case capacity study.
//!
//! The paper uses a load profile from a Google data center \[27\]; we use a
//! synthetic distribution with the same qualitative shape (unimodal, mode
//! ≈25 %, thin tail above 50 %), calibrated so the typical-case capacity
//! of Fig. 9 lands at the paper's 6318 servers. See EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig8
//! ```

use capmaestro_bench::banner;
use capmaestro_workload::google_like_profile;

fn main() {
    banner(
        "Figure 8",
        "fleet-average CPU utilization distribution (synthetic Google-like profile)",
    );
    let d = google_like_profile();
    println!("mean {:.3}, std {:.3}", d.mean(), d.std_dev());
    println!(
        "P(u > 0.35) = {:.3}, P(u > 0.5) = {:.4}, P(u > 0.7) = {:.5}",
        d.prob_above(0.35),
        d.prob_above(0.5),
        d.prob_above(0.7)
    );
    println!();
    println!("util   probability");
    let max_p = d
        .probabilities()
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    for (v, p) in d.values().iter().zip(d.probabilities()) {
        if *p < 1e-6 {
            continue;
        }
        let bar = "#".repeat(((p / max_p) * 50.0).round() as usize);
        println!("{v:>5.3}  {p:>7.4} {bar}");
    }
}
