//! Hot-path throughput measurement for the parallel simulation engine.
//!
//! Times the engine's per-second loop (fused step+sense sweep, load
//! accumulation, breaker checks, trace recording, control rounds) on the
//! Table 4-style data center at three sizes and several farm thread
//! counts, then reports servers simulated per wall-clock second. Results
//! are also written to `BENCH_dcsim.json` so CI can track regressions.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin parallel_scale \
//!     [-- --seconds N --warmup N --out PATH]
//! ```
//!
//! The JSON includes `host_cpus`: on a single-core host the parallel
//! configurations cannot beat the sequential baseline, and the numbers
//! are reported as measured rather than extrapolated.

use std::fmt::Write as _;
use std::time::Instant;

use capmaestro_bench::{banner, Args};
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_units::Watts;

/// One (size, threads) measurement.
struct Sample {
    servers: usize,
    threads: usize,
    sim_seconds: u64,
    wall_ms: f64,
    servers_per_sec: f64,
}

fn config_for(racks: usize, rpp: usize, cdus: usize) -> DataCenterRigConfig {
    DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: 2,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: 32,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        utilization: 0.9,
        ..DataCenterRigConfig::default()
    }
}

fn measure(
    racks: usize,
    rpp: usize,
    cdus: usize,
    threads: usize,
    warmup_s: u64,
    sim_s: u64,
) -> Sample {
    let config = config_for(racks, rpp, cdus);
    let mut engine = Engine::new(datacenter_rig(&config));
    engine.set_parallelism(threads);
    let servers = engine.farm().len();
    engine.run(warmup_s);
    let start = Instant::now();
    engine.run(sim_s);
    let wall = start.elapsed().as_secs_f64();
    Sample {
        servers,
        threads,
        sim_seconds: sim_s,
        wall_ms: wall * 1000.0,
        servers_per_sec: servers as f64 * sim_s as f64 / wall,
    }
}

fn render_json(samples: &[Sample], host_cpus: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"dcsim_parallel_scale\",");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    // On a single-CPU host the thread>1 rows time-slice one core and
    // measure scheduling overhead, not the engine — mark the whole file
    // so downstream tooling never trends those rows.
    let _ = writeln!(out, "  \"degraded\": {},", host_cpus == 1);
    out.push_str("  \"results\": [\n");
    // Baseline (1 thread) throughput per size, for the speedup column.
    for (i, s) in samples.iter().enumerate() {
        let base = samples
            .iter()
            .find(|b| b.servers == s.servers && b.threads == 1)
            .map(|b| b.servers_per_sec)
            .unwrap_or(s.servers_per_sec);
        let speedup = s.servers_per_sec / base;
        let _ = write!(
            out,
            "    {{\"servers\": {}, \"threads\": {}, \"sim_seconds\": {}, \
             \"wall_ms\": {:.3}, \"servers_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            s.servers, s.threads, s.sim_seconds, s.wall_ms, s.servers_per_sec, speedup
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::capture();
    let sim_s: u64 = args.get("seconds", 16);
    let warmup_s: u64 = args.get("warmup", 4);
    let out_path: String = args.get("out", "BENCH_dcsim.json".to_string());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    banner(
        "Parallel scale",
        "engine per-second loop throughput vs farm thread count",
    );
    println!("host cpus: {host_cpus}   simulated: {sim_s} s (+{warmup_s} s warmup)\n");
    if host_cpus == 1 {
        eprintln!("================================================================");
        eprintln!("WARNING: only 1 CPU is visible to this process.");
        eprintln!("Every thread>1 row below time-slices a single core: the numbers");
        eprintln!("measure scheduling overhead, not parallel speedup. The JSON is");
        eprintln!("written with \"degraded\": true so CI does not trend these rows.");
        eprintln!("================================================================");
    }

    let mut table = Table::new(vec![
        "Servers",
        "Threads",
        "Wall (ms)",
        "Servers/s",
        "Speedup",
    ]);
    let mut samples = Vec::new();
    for (racks, rpp, cdus) in [(8, 2, 2), (32, 4, 4), (128, 8, 8)] {
        for threads in [1usize, 4, 8] {
            let s = measure(racks, rpp, cdus, threads, warmup_s, sim_s);
            let base = samples
                .iter()
                .find(|b: &&Sample| b.servers == s.servers && b.threads == 1)
                .map(|b| b.servers_per_sec)
                .unwrap_or(s.servers_per_sec);
            table.row(vec![
                s.servers.to_string(),
                s.threads.to_string(),
                format!("{:.1}", s.wall_ms),
                format!("{:.0}", s.servers_per_sec),
                format!("{:.2}x", s.servers_per_sec / base),
            ]);
            samples.push(s);
        }
    }
    print!("{}", table.render());
    println!();

    let json = render_json(&samples, host_cpus);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
    if (2..4).contains(&host_cpus) {
        println!(
            "note: only {host_cpus} cpu(s) visible to this process; parallel \
             speedups are not expected to materialize on this host."
        );
    }
}
