//! Figure 7c: power drawn from the Y-side feed with and without SPO.
//!
//! Paper shape: with SPO the Y side consistently uses its full 700 W
//! budget; without SPO a stranded gap of tens of watts remains.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig7c [-- --csv]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_sim::engine::{Engine, Trace};
use capmaestro_sim::report::{downsample, series_csv, sparkline};
use capmaestro_sim::scenarios::{stranded_rig, RigConfig};
use capmaestro_topology::FeedId;

fn y_side_series(spo: bool) -> Vec<f64> {
    let rig = stranded_rig(RigConfig::table3().with_spo(spo));
    let mut engine = Engine::new(rig);
    let trace = engine.run(150);
    trace
        .node_series_on(FeedId::B, "Y Top CB")
        .expect("Y top CB recorded")
        .to_vec()
}

fn main() {
    let args = Args::capture();
    banner(
        "Figure 7c",
        "Y-side feed power with and without SPO (700 W feed budget)",
    );
    let without = y_side_series(false);
    let with = y_side_series(true);

    if args.flag("csv") {
        print!(
            "{}",
            series_csv("t", &[("without_spo", &without), ("with_spo", &with)])
        );
        return;
    }

    println!("without SPO  {}", sparkline(&downsample(&without, 4)));
    println!("with SPO     {}", sparkline(&downsample(&with, 4)));
    println!();
    let tail_without = Trace::tail_mean(&without, 30);
    let tail_with = Trace::tail_mean(&with, 30);
    println!("steady-state Y-side power: {tail_without:.0} W without SPO, {tail_with:.0} W with SPO");
    println!(
        "SPO recovers {:.0} W of the 700 W Y-side budget (paper: ~67 W to SB)",
        tail_with - tail_without
    );
}
