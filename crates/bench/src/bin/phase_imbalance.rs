//! Phase imbalance: why the capacity answers land on multiples of three.
//!
//! §4.1 replicates the control tree per phase "since loading on each phase
//! is not always uniform". With round-robin placement, a rack size that is
//! not a multiple of three overloads phase L1 — and because every phase
//! must independently respect its breakers and contractual share, capacity
//! grows in steps of three servers per rack. This harness sweeps rack
//! sizes 34–42 under the worst case and shows the L1 penalty.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin phase_imbalance
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_sim::report::Table;

fn main() {
    let args = Args::capture();
    banner(
        "Phase imbalance",
        "worst-case high-priority cap ratio vs rack size (global priority)",
    );
    let config = CapacityConfig {
        worst_trials: args.get("worst-trials", 20),
        ..CapacityConfig::default()
    };
    let planner = CapacityPlanner::new(config);

    let mut table = Table::new(vec![
        "Servers/rack",
        "L1/L2/L3 per rack",
        "Total servers",
        "High-pri cap ratio",
        "Meets <1%?",
    ]);
    for spr in 34..=42usize {
        let l1 = spr.div_ceil(3);
        let l3 = spr / 3;
        let l2 = spr - l1 - l3;
        let stats = planner.evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
        table.row(vec![
            spr.to_string(),
            format!("{l1}/{l2}/{l3}"),
            stats.servers.to_string(),
            format!("{:.4}", stats.cap_ratio_high),
            if stats.cap_ratio_high < 0.01 { "yes" } else { "no" }.into(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("between multiples of three, the extra servers all land on phase L1,");
    println!("whose tree saturates first — the criterion fails before the average");
    println!("rack is actually full, which is why Fig. 9's answers are 24/30/36/39.");
}
