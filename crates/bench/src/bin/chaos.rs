//! Chaos soak: seeded telemetry-fault schedules against the Fig. 2 rig
//! and a small data center, with per-second invariant checking.
//!
//! Each run generates a [`ChaosPlan`] (dropped/stuck/noisy/spiking
//! sensors, flapping feeds), schedules it on the engine, and observes
//! every simulated second with an [`InvariantTracker`]: per-tree budgets
//! respected by the physical load, caps inside the controllable range,
//! priority ordering preserved, and no breaker trips. After the schedule
//! drains, the harness measures how long the control plane takes to
//! return every per-supply budget (and the fleet's physical power) to
//! within 2 % of its pre-fault baseline; failing to recover inside the
//! quiesce window is itself a violation.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin chaos \
//!     [-- --seconds N --seed S --seeds K --out PATH]
//! ```
//!
//! Results land in `BENCH_chaos.json`; the process exits non-zero if any
//! invariant was violated, so CI can gate on it.

use std::fmt::Write as _;
use std::sync::Arc;

use capmaestro_bench::{banner, Args};
use capmaestro_core::obs::{names, MetricsRegistry, MetricsSnapshot};
use capmaestro_core::plane::RoundReport;
use capmaestro_sim::audit::{InvariantConfig, InvariantKind, InvariantTracker};
use capmaestro_sim::engine::Engine;
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{
    datacenter_rig, priority_rig, DataCenterRigConfig, Rig, RigConfig,
};
use capmaestro_topology::{FeedId, ServerId, SupplyIndex};
use capmaestro_units::Watts;

/// Budget recovery tolerance: fractional part and absolute slack.
const RECOVERY_TOLERANCE: f64 = 0.02;
const RECOVERY_SLACK_W: f64 = 2.0;
const POWER_SLACK_W: f64 = 5.0;

/// One (rig, seed) soak outcome.
struct RunResult {
    rig: &'static str,
    seed: u64,
    servers: usize,
    episodes: usize,
    faults_injected: u64,
    /// `capmaestro_sim_fault_events_total` from the run's registry: the
    /// scheduled fault/flap events the engine applied.
    fault_events: u64,
    violations: Vec<String>,
    /// Server·seconds spent in fail-safe (stale) degradation — non-zero
    /// proves the schedule actually drove the degradation ladder rather
    /// than being absorbed silently.
    stale_server_seconds: u64,
    /// Seconds from the end of the last fault to full budget+power
    /// recovery (`None` when the run never left baseline, i.e. the plan
    /// held no effective disturbance).
    recovery_s: Option<u64>,
}

/// Scales the default chaos schedule down for short smoke runs while
/// keeping settle room before the first episode and a fault-free tail
/// for the recovery check.
fn chaos_config(seconds: u64) -> ChaosConfig {
    let defaults = ChaosConfig::default();
    let settle_s = defaults.settle_s.min(seconds / 5);
    let quiesce_s = defaults.quiesce_s.min(seconds / 4);
    let max_duration_s = defaults.max_duration_s.min(seconds / 6).max(8);
    ChaosConfig {
        seconds,
        episodes: ((seconds / 160) as usize).clamp(3, defaults.episodes),
        min_duration_s: defaults.min_duration_s.min(max_duration_s),
        max_duration_s,
        settle_s,
        quiesce_s,
        ..defaults
    }
}

fn total_power(engine: &Engine) -> f64 {
    engine
        .farm()
        .iter()
        .map(|(_, s)| s.sense().total_ac.as_f64())
        .sum()
}

fn budgets_match(
    base: &RoundReport,
    cur: &RoundReport,
    pairs: &[(ServerId, SupplyIndex)],
) -> bool {
    pairs.iter().all(|&(server, supply)| {
        match (
            base.supply_budget(server, supply),
            cur.supply_budget(server, supply),
        ) {
            (Some(b), Some(c)) => {
                (b.as_f64() - c.as_f64()).abs()
                    <= RECOVERY_TOLERANCE * b.as_f64().abs() + RECOVERY_SLACK_W
            }
            (None, None) => true,
            _ => false,
        }
    })
}

fn run_one(name: &'static str, rig: Rig, seconds: u64, seed: u64) -> RunResult {
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
    let config = chaos_config(seconds);
    let plan = ChaosPlan::generate(&config, &servers, &feeds, seed);
    let first_start = plan
        .episodes()
        .first()
        .map(|e| e.start_s)
        .unwrap_or(seconds);
    let last_end = plan.last_fault_end_s();
    let pairs: Vec<(ServerId, SupplyIndex)> = servers
        .iter()
        .flat_map(|&s| [(s, SupplyIndex::FIRST), (s, SupplyIndex::SECOND)])
        .collect();

    // One registry per run observes the engine, the control plane, and
    // the tracker at once; after the run its counters are cross-checked
    // against the ground truth the harness already holds.
    let registry = Arc::new(MetricsRegistry::new());
    let mut engine = Engine::new(rig);
    engine.plane_mut().set_recorder(registry.clone());
    engine.schedule_chaos(&plan);
    let mut tracker = InvariantTracker::new(InvariantConfig::default())
        .with_recorder(registry.clone());

    // Baseline: the last control round fully before the first episode.
    let baseline_at = first_start.saturating_sub(8);
    let mut baseline: Option<(RoundReport, f64)> = None;
    let mut recovered_at: Option<u64> = None;
    let mut stale_server_seconds: u64 = 0;
    engine.run_observed(seconds, |e| {
        tracker.observe(e);
        stale_server_seconds += e.plane().stale_servers().len() as u64;
        let t = e.now_s();
        if baseline.is_none() && t >= baseline_at {
            if let Some(report) = e.last_round_report() {
                baseline = Some((report.clone(), total_power(e)));
            }
        }
        if t > last_end && recovered_at.is_none() {
            if let (Some((base, base_power)), Some(cur)) =
                (baseline.as_ref(), e.last_round_report())
            {
                let power_ok = (total_power(e) - base_power).abs()
                    <= RECOVERY_TOLERANCE * base_power + POWER_SLACK_W;
                if power_ok && budgets_match(base, cur, &pairs) {
                    recovered_at = Some(t);
                }
            }
        }
    });

    if recovered_at.is_none() {
        tracker.record(
            seconds,
            InvariantKind::Recovery,
            format!(
                "budgets/power did not return to the pre-fault baseline within \
                 {} s of the last fault clearing",
                seconds.saturating_sub(last_end)
            ),
        );
    }

    let mut violations: Vec<String> = tracker
        .violations()
        .iter()
        .map(|v| format!("[t={} {:?}] {}", v.second, v.kind, v.detail))
        .collect();

    // Metrics cross-check: the exported counters must agree with what the
    // harness observed directly, or the observability layer itself is
    // broken.
    let snap = registry.snapshot();
    let steps = counter(&snap, names::SIM_STEPS_TOTAL);
    if steps != seconds {
        violations.push(format!(
            "[metrics] {} reported {steps} steps, expected {seconds}",
            names::SIM_STEPS_TOTAL
        ));
    }
    let counted_violations = counter(&snap, names::INVARIANT_VIOLATIONS_TOTAL);
    if counted_violations != tracker.violations().len() as u64 {
        violations.push(format!(
            "[metrics] {} reported {counted_violations} violations, tracker holds {}",
            names::INVARIANT_VIOLATIONS_TOTAL,
            tracker.violations().len()
        ));
    }

    RunResult {
        rig: name,
        seed,
        servers: servers.len(),
        episodes: plan.episodes().len(),
        faults_injected: engine.fault_layer().injected_total(),
        fault_events: counter(&snap, names::SIM_FAULT_EVENTS_TOTAL),
        violations,
        stale_server_seconds,
        recovery_s: recovered_at.map(|t| t.saturating_sub(last_end)),
    }
}

/// Reads one counter from a snapshot (0 when never registered).
fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

fn fig2_rig() -> Rig {
    priority_rig(RigConfig::table2())
}

/// The small data center, loaded so that capping actually binds: fleet
/// utilization 0.75 against a contractual budget ~17 % below the
/// resulting demand (the default small() rig runs uncapped, which would
/// make the soak vacuous).
fn small_dc_rig() -> Rig {
    datacenter_rig(&DataCenterRigConfig {
        utilization: 0.75,
        contractual_per_phase: Watts::from_kilowatts(30.0),
        ..DataCenterRigConfig::small()
    })
}

fn render_json(seconds: u64, seeds: &[u64], runs: &[RunResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"chaos_soak\",");
    let _ = writeln!(out, "  \"seconds\": {seconds},");
    let seed_list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "  \"seeds\": [{}],", seed_list.join(", "));
    let total: usize = runs.iter().map(|r| r.violations.len()).sum();
    let _ = writeln!(out, "  \"violations_total\": {total},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let recovery = r
            .recovery_s
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string());
        let violations: Vec<String> = r
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect();
        let _ = write!(
            out,
            "    {{\"rig\": \"{}\", \"seed\": {}, \"servers\": {}, \
             \"episodes\": {}, \"faults_injected\": {}, \"fault_events\": {}, \
             \"stale_server_seconds\": {}, \"recovery_s\": {}, \
             \"violations\": [{}]}}",
            r.rig,
            r.seed,
            r.servers,
            r.episodes,
            r.faults_injected,
            r.fault_events,
            r.stale_server_seconds,
            recovery,
            violations.join(", ")
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Recovery-time histogram in control-round (8 s) buckets.
    let times: Vec<u64> = runs.iter().filter_map(|r| r.recovery_s).collect();
    let buckets = times.iter().map(|t| t / 8).max().map(|b| b + 1).unwrap_or(0);
    out.push_str("  \"recovery_histogram\": {");
    for b in 0..buckets {
        let count = times.iter().filter(|&&t| t / 8 == b).count();
        let _ = write!(out, "\"{}-{} s\": {}", b * 8, (b + 1) * 8, count);
        if b + 1 < buckets {
            out.push_str(", ");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn main() {
    let args = Args::capture();
    let seconds: u64 = args.get("seconds", 4000);
    let first_seed: u64 = args.get("seed", 1);
    let seed_count: u64 = args.get("seeds", 3);
    let out_path: String = args.get("out", "BENCH_chaos.json".to_string());
    let seeds: Vec<u64> = (first_seed..first_seed + seed_count.max(1)).collect();

    banner(
        "Chaos soak",
        "seeded telemetry faults vs fail-safe degradation, invariant-checked",
    );
    println!(
        "{} simulated seconds per run, seeds {:?}, rigs: fig2 + small datacenter\n",
        seconds, seeds
    );

    let mut runs = Vec::new();
    for &seed in &seeds {
        runs.push(run_one("fig2", fig2_rig(), seconds, seed));
        runs.push(run_one("small_dc", small_dc_rig(), seconds, seed));
    }

    let mut table = Table::new(vec![
        "Rig",
        "Seed",
        "Servers",
        "Episodes",
        "Faults",
        "Stale srv·s",
        "Recovery (s)",
        "Violations",
    ]);
    for r in &runs {
        table.row(vec![
            r.rig.to_string(),
            r.seed.to_string(),
            r.servers.to_string(),
            r.episodes.to_string(),
            r.faults_injected.to_string(),
            r.stale_server_seconds.to_string(),
            r.recovery_s
                .map(|s| s.to_string())
                .unwrap_or_else(|| "—".to_string()),
            r.violations.len().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();

    let json = render_json(seconds, &seeds, &runs);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }

    let total: usize = runs.iter().map(|r| r.violations.len()).sum();
    if total > 0 {
        eprintln!("\n{total} invariant violation(s):");
        for r in &runs {
            for v in &r.violations {
                eprintln!("  {}/{}: {}", r.rig, r.seed, v);
            }
        }
        std::process::exit(1);
    }
    println!("all invariants held across {} runs.", runs.len());
}
