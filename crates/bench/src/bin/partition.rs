//! Partition chaos-soak over the *socket* control plane: a room
//! controller in this process, real `capmaestro-agent` rack processes,
//! and a seeded kill/freeze schedule against them.
//!
//! Each run builds a [`PartitionPlan`]: SIGKILL (torn connection,
//! process restart) and SIGSTOP/SIGCONT (open-but-silent socket, the
//! heartbeat-timeout path) faults against the agent fleet, with
//! recovery slack between faults and a fault-free quiet tail. Every
//! control round is invariant-checked through an [`InvariantTracker`]:
//! cut budgets must conserve each tree's root budget, agents' own
//! world-state audits (reported over the wire) must stay clean, and
//! every partitioned rack must leave fail-safe budgets within the quiet
//! tail — a rack still riding fail-safe at the end of the run is a
//! recovery violation.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin partition \
//!     [-- --rounds N --seed S --seeds K --agents A --smoke --out PATH]
//! ```
//!
//! Results land in `BENCH_partition.json`; the process exits non-zero
//! if any invariant was violated, so CI can gate on it.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use capmaestro_bench::{banner, Args};
use capmaestro_core::obs::{names, MetricsRegistry, MetricsSnapshot};
use capmaestro_core::workers::leaf_statics;
use capmaestro_core::{DeploymentConfig, PolicyKind, WorkerDeployment};
use capmaestro_serve::rig::{build_farm, build_rig, rig_assignments, RigSpec};
use capmaestro_serve::socket::{SocketTransport, SocketTransportConfig};
use capmaestro_sim::audit::{InvariantConfig, InvariantKind, InvariantTracker};
use capmaestro_sim::procchaos::{partition_plan, ProcFault};
use capmaestro_sim::report::Table;

/// Conservation tolerance: relative part and absolute slack in watts.
const CONSERVE_REL: f64 = 1e-4;
const CONSERVE_SLACK_W: f64 = 0.5;

/// Wall-clock control period per round. The loop must pace like the real
/// daemon: recovery is physical (process restart, TCP connect,
/// handshake), so an unpaced loop would burn through the quiet tail in
/// microseconds and report false recovery failures.
const ROUND_PERIOD: Duration = Duration::from_millis(250);

/// One (seed) soak outcome.
struct RunResult {
    seed: u64,
    kills: u64,
    freezes: u64,
    /// Rounds in which at least one cut rode fail-safe budgets — proof
    /// the schedule drove the degradation ladder, not a silent no-op.
    failsafe_rounds: u64,
    /// `capmaestro_worker_respawns_total`: dead→alive transitions the
    /// deployment observed (agent reconnects after kills and thaws).
    worker_respawns: u64,
    /// Rounds into the quiet tail until the last fail-safe cut cleared
    /// (0 = the fleet was already clean when the tail began; `None`
    /// means it never cleared, which is also a recorded violation).
    recovery_rounds: Option<u64>,
    violations: Vec<String>,
}

/// Locates the `capmaestro-agent` binary: `$CAPMAESTRO_AGENT_BIN`
/// override first, then a sibling of this executable (both land in the
/// same cargo target directory).
fn agent_binary() -> PathBuf {
    if let Ok(path) = std::env::var("CAPMAESTRO_AGENT_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("executable has a parent directory");
    let candidate = dir.join("capmaestro-agent");
    assert!(
        candidate.exists(),
        "capmaestro-agent not found at {}; build it first \
         (cargo build --release -p capmaestro-serve) or set CAPMAESTRO_AGENT_BIN",
        candidate.display()
    );
    candidate
}

/// Spawns one rack agent process against the controller at `addr`.
fn spawn_agent(bin: &PathBuf, addr: &str, worker: usize, agents: usize, spec: RigSpec, seed: u64) -> Child {
    Command::new(bin)
        .args([
            "--connect",
            addr,
            "--worker",
            &worker.to_string(),
            "--workers-total",
            &agents.to_string(),
            "--rig",
            &spec.to_arg(),
            "--demand-seed",
            &seed.to_string(),
            // Bounded retry so an agent orphaned by controller teardown
            // exits on its own instead of reconnecting forever.
            "--max-connect-attempts",
            "30",
        ])
        .stdout(Stdio::null())
        .stderr(if trace() { Stdio::inherit() } else { Stdio::null() })
        .spawn()
        .expect("spawn capmaestro-agent")
}

/// Per-round diagnostics on stderr when `CAPM_PARTITION_TRACE=1`.
fn trace() -> bool {
    std::env::var("CAPM_PARTITION_TRACE").is_ok_and(|v| v == "1")
}

/// Sends a named signal (e.g. `-STOP`, `-CONT`) to a process.
fn signal(pid: u32, sig: &str) {
    let _ = Command::new("kill").arg(sig).arg(pid.to_string()).status();
}

/// Waits up to `grace` for a child to exit, then kills it. SIGKILL also
/// takes down a child still stopped by an unapplied SIGCONT.
fn reap(mut child: Child, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => thread::sleep(Duration::from_millis(20)),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

/// Reads one counter from a snapshot (0 when never registered).
fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

fn run_one(seed: u64, agents: usize, rounds: u64, quiet_tail: u64) -> RunResult {
    let spec = RigSpec::Racks {
        racks: agents,
        servers_per_rack: 2,
    };
    let rig = build_rig(spec);
    let assignments = rig_assignments(&rig, agents);
    let statics = {
        let farm = build_farm(&rig.topo);
        leaf_statics(&rig.trees, &assignments, &farm)
    };
    let root_budgets: Vec<f64> = rig.root_budgets.iter().map(|b| b.as_f64()).collect();

    let registry = Arc::new(MetricsRegistry::new());
    let transport =
        SocketTransport::bind(SocketTransportConfig::new(agents)).expect("bind agent listener");
    let addr = transport.local_addr().to_string();
    let mut deployment = WorkerDeployment::with_transport(
        rig.trees,
        rig.root_budgets,
        PolicyKind::GlobalPriority,
        assignments,
        &statics,
        Box::new(transport),
        DeploymentConfig::default()
            .with_gather_timeout(Duration::from_millis(400))
            .with_stale_after_rounds(2)
            .with_recorder(registry.clone()),
    );

    let bin = agent_binary();
    let mut children: Vec<Option<Child>> = (0..agents)
        .map(|w| Some(spawn_agent(&bin, &addr, w, agents, spec, seed)))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(15);
    while !(0..agents).all(|w| deployment.is_worker_alive(w)) {
        assert!(Instant::now() < deadline, "agent fleet never connected");
        thread::sleep(Duration::from_millis(10));
    }

    let plan = partition_plan(seed, agents, rounds, quiet_tail);
    let mut tracker = InvariantTracker::new(InvariantConfig::default());
    // (round, agent, restart?) — kills restart the process, freezes thaw it.
    let mut revive: Vec<(u64, usize, bool)> = Vec::new();
    let mut kills = 0u64;
    let mut freezes = 0u64;
    let mut failsafe_rounds = 0u64;
    let mut last_failsafe_round: Option<u64> = None;

    let mut next_round_at = Instant::now();
    for round in 0..rounds {
        // Pace: at least ROUND_PERIOD between consecutive round starts,
        // with no catch-up burst after a slow (degraded) round — a burst
        // would tear through the quiet tail faster than an agent can
        // exec and reconnect.
        if let Some(wait) = next_round_at.checked_duration_since(Instant::now()) {
            thread::sleep(wait);
        }
        next_round_at = Instant::now() + ROUND_PERIOD;
        for (agent, fault) in plan.due(round) {
            match fault {
                ProcFault::Kill { down_rounds, .. } => {
                    if let Some(mut child) = children[agent].take() {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    kills += 1;
                    revive.push((round + down_rounds, agent, true));
                }
                ProcFault::Freeze { frozen_rounds, .. } => {
                    if let Some(child) = &children[agent] {
                        signal(child.id(), "-STOP");
                    }
                    freezes += 1;
                    revive.push((round + frozen_rounds, agent, false));
                }
            }
        }
        let (due_now, later): (Vec<_>, Vec<_>) = revive.into_iter().partition(|&(at, _, _)| at <= round);
        revive = later;
        for (_, agent, restart) in due_now {
            if restart {
                children[agent] = Some(spawn_agent(&bin, &addr, agent, agents, spec, seed));
            } else if let Some(child) = &children[agent] {
                signal(child.id(), "-CONT");
            }
        }

        let outcome = deployment.run_round(round);
        // advance() can miss acks while an agent is partitioned; the
        // agent catches up from its socket backlog or on reconnect.
        let _ = deployment.advance(1);

        // Conservation: the cut budgets of each tree must not exceed its
        // root budget, partitioned or not — fail-safe floors included.
        let mut per_tree: HashMap<usize, f64> = HashMap::new();
        for &((tree, _), b) in &outcome.cut_budgets {
            *per_tree.entry(tree).or_insert(0.0) += b.as_f64();
        }
        for (tree, sum) in per_tree {
            let root = root_budgets[tree];
            if sum > root * (1.0 + CONSERVE_REL) + CONSERVE_SLACK_W {
                tracker.record(
                    round,
                    InvariantKind::FeedBudget,
                    format!("tree {tree} cut budgets sum to {sum:.3} W over root {root:.3} W"),
                );
            }
        }
        if !outcome.failsafe_cuts.is_empty() {
            failsafe_rounds += 1;
            last_failsafe_round = Some(round);
        }
        if trace() {
            let alive: Vec<bool> = (0..agents).map(|w| deployment.is_worker_alive(w)).collect();
            let procs: Vec<String> = children
                .iter_mut()
                .map(|c| match c {
                    None => "killed".to_string(),
                    Some(child) => match child.try_wait() {
                        Ok(Some(st)) => format!("exited({st})"),
                        Ok(None) => format!("pid {}", child.id()),
                        Err(_) => "?".to_string(),
                    },
                })
                .collect();
            let listener = match std::net::TcpStream::connect_timeout(
                &addr.parse().expect("listener addr"),
                Duration::from_millis(100),
            ) {
                Ok(_) => "up",
                Err(_) => "DOWN",
            };
            eprintln!(
                "[trace] round {round}: alive={alive:?} listener={listener} procs={procs:?} failsafe_cuts={:?}",
                outcome.failsafe_cuts
            );
        }
    }

    // Recovery: with every fault cleared before the quiet tail, no cut
    // may still be on fail-safe budgets when the run ends.
    let recovery_rounds = match last_failsafe_round {
        Some(last) if last + 1 >= rounds => {
            tracker.record(
                rounds,
                InvariantKind::Recovery,
                format!(
                    "fail-safe cuts still present in the final round \
                     ({} quiet rounds were available)",
                    quiet_tail
                ),
            );
            None
        }
        Some(last) => Some((last + 1).saturating_sub(plan.quiet_from)),
        None => Some(0),
    };

    let agent_violations = deployment.transport_violations();
    if agent_violations > 0 {
        tracker.record(
            rounds,
            InvariantKind::CapRange,
            format!("agents reported {agent_violations} world-state violations"),
        );
    }

    let snap = registry.snapshot();
    let worker_respawns = counter(&snap, names::WORKER_RESPAWNS_TOTAL);
    deployment.shutdown();
    for child in children.into_iter().flatten() {
        // The controller's Shutdown reached every *connected* agent, but
        // one mid-reconnect at teardown would spin on its backoff loop;
        // give each a grace period, then kill.
        reap(child, Duration::from_secs(5));
    }

    RunResult {
        seed,
        kills,
        freezes,
        failsafe_rounds,
        worker_respawns,
        recovery_rounds,
        violations: tracker
            .violations()
            .iter()
            .map(|v| format!("[round={} {:?}] {}", v.second, v.kind, v.detail))
            .collect(),
    }
}

fn render_json(agents: usize, rounds: u64, quiet_tail: u64, seeds: &[u64], runs: &[RunResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"partition_soak\",");
    let _ = writeln!(out, "  \"transport\": \"socket\",");
    let _ = writeln!(out, "  \"agents\": {agents},");
    let _ = writeln!(out, "  \"rounds\": {rounds},");
    let _ = writeln!(out, "  \"quiet_tail\": {quiet_tail},");
    let seed_list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "  \"seeds\": [{}],", seed_list.join(", "));
    let total: usize = runs.iter().map(|r| r.violations.len()).sum();
    let _ = writeln!(out, "  \"violations_total\": {total},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let recovery = r
            .recovery_rounds
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        let violations: Vec<String> = r
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('"', "'")))
            .collect();
        let _ = write!(
            out,
            "    {{\"seed\": {}, \"kills\": {}, \"freezes\": {}, \
             \"failsafe_rounds\": {}, \"worker_respawns\": {}, \
             \"recovery_rounds\": {}, \"violations\": [{}]}}",
            r.seed,
            r.kills,
            r.freezes,
            r.failsafe_rounds,
            r.worker_respawns,
            recovery,
            violations.join(", ")
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::capture();
    let smoke = args.flag("smoke");
    let agents: usize = args.get("agents", 4);
    let rounds: u64 = args.get("rounds", if smoke { 18 } else { 40 });
    let quiet_tail: u64 = args.get("quiet-tail", if smoke { 6 } else { 8 });
    let first_seed: u64 = args.get("seed", 1);
    let seed_count: u64 = args.get("seeds", if smoke { 1 } else { 3 });
    let out_path: String = args.get("out", "BENCH_partition.json".to_string());
    let seeds: Vec<u64> = (first_seed..first_seed + seed_count.max(1)).collect();

    banner(
        "Partition soak",
        "kill/freeze chaos against socket rack agents, invariant-checked",
    );
    println!(
        "{agents} agent processes, {rounds} rounds per run (quiet tail {quiet_tail}), seeds {seeds:?}\n",
    );

    let mut runs = Vec::new();
    for &seed in &seeds {
        runs.push(run_one(seed, agents, rounds, quiet_tail));
    }

    let mut table = Table::new(vec![
        "Seed",
        "Kills",
        "Freezes",
        "Fail-safe rounds",
        "Respawns",
        "Recovery (rounds)",
        "Violations",
    ]);
    for r in &runs {
        table.row(vec![
            r.seed.to_string(),
            r.kills.to_string(),
            r.freezes.to_string(),
            r.failsafe_rounds.to_string(),
            r.worker_respawns.to_string(),
            r.recovery_rounds
                .map(|v| v.to_string())
                .unwrap_or_else(|| "—".to_string()),
            r.violations.len().to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();

    let json = render_json(agents, rounds, quiet_tail, &seeds, &runs);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }

    let total: usize = runs.iter().map(|r| r.violations.len()).sum();
    if total > 0 {
        eprintln!("\n{total} invariant violation(s):");
        for r in &runs {
            for v in &r.violations {
                eprintln!("  seed {}: {}", r.seed, v);
            }
        }
        std::process::exit(1);
    }
    println!("all invariants held across {} runs.", runs.len());
}
