//! A day in the life: diurnal load over the data center.
//!
//! Drives the 18-rack center through a compressed 24-hour sinusoidal load
//! curve (peak at 15:00) with per-server noise, under an oversubscribed
//! deployment where the afternoon peak forces capping. Reports the hourly
//! power envelope, when capping engaged, and how the priority classes
//! fared — the normal-operations picture behind Fig. 9's typical case.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin day [-- --spr N --csv]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::{Engine, Event};
use capmaestro_sim::report::{series_csv, sparkline, Table};
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_server::ServerPowerModel;
use capmaestro_units::{Ratio, Watts};
use capmaestro_workload::{DiurnalPattern, NormalSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One simulated second per 36 real seconds: a day in 2400 s.
const COMPRESSION: f64 = 36.0;
const DAY_S: u64 = (86_400.0 / COMPRESSION) as u64;

fn main() {
    let args = Args::capture();
    let spr: usize = args.get("spr", 39); // the paper's typical-case density
    banner(
        "Day in the life",
        "diurnal load (peak 15:00) over the 18-rack center, typical-case density",
    );

    let mut config = DataCenterRigConfig::small();
    config.params.servers_per_rack = spr;
    config.utilization = 0.1; // pre-dawn start
    config.policy = PolicyKind::GlobalPriority;
    let rig = datacenter_rig(&config);
    let servers: Vec<_> = rig.topology.servers().map(|(id, _)| id).collect();
    let n = servers.len();

    let day = DiurnalPattern::new(0.35, 0.25, DAY_S as f64, DAY_S as f64 * 15.0 / 24.0);
    let model = ServerPowerModel::paper_default();
    let jitter = NormalSampler::new(0.0, 0.05);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut engine = Engine::new(rig);
    // Update every server's demand once per simulated minute (compressed).
    let step = 60;
    for t in (0..DAY_S).step_by(step as usize) {
        let fleet = day.utilization_at(t as f64).as_f64();
        for &id in &servers {
            let u = (fleet + jitter.sample_clamped(&mut rng, -0.2, 0.2)).clamp(0.0, 1.0);
            let demand = model.power_at_utilization(Ratio::new(u));
            engine.schedule(t, Event::SetDemand(id, demand));
        }
    }
    let trace = engine.run(DAY_S);

    // Hourly totals.
    let mut hourly_power = Vec::new();
    let mut hourly_throttled = Vec::new();
    let per_hour = DAY_S as usize / 24;
    for hour in 0..24 {
        let t = (hour * per_hour + per_hour / 2).min(DAY_S as usize - 1);
        let total: f64 = trace.server_power.values().map(|s| s[t]).sum();
        let throttled = trace
            .throttle
            .values()
            .filter(|s| s[t] > 0.02)
            .count();
        hourly_power.push(total / 1000.0);
        hourly_throttled.push(throttled as f64);
    }

    if args.flag("csv") {
        print!(
            "{}",
            series_csv(
                "hour",
                &[
                    ("total_power_kw", &hourly_power),
                    ("servers_throttled", &hourly_throttled),
                ],
            )
        );
        return;
    }

    println!("{n} servers at {spr}/rack; contractual ceiling {:.0} kW\n", 3.0 * (700.0 / 9.0) * 0.95);
    println!("fleet power (kW) by hour:   {}", sparkline(&hourly_power));
    println!("servers throttled by hour:  {}", sparkline(&hourly_throttled));
    println!();
    let mut table = Table::new(vec!["Hour", "Power (kW)", "Throttled servers"]);
    for hour in [3usize, 9, 12, 15, 18, 23] {
        table.row(vec![
            format!("{hour:02}:00"),
            format!("{:.1}", hourly_power[hour]),
            format!("{:.0}", hourly_throttled[hour]),
        ]);
    }
    print!("{}", table.render());
    println!();
    let peak = hourly_power.iter().cloned().fold(0.0, f64::max);
    let ceiling = 3.0 * (700.0 / 9.0) * 0.95;
    println!(
        "peak hour {:.1} kW vs ceiling {:.1} kW; breaker trips: {}; energy: {:.0} kWh (compressed day)",
        peak,
        ceiling,
        trace.trips.len(),
        trace.total_energy_wh() * COMPRESSION / 1000.0
    );
    let _ = Watts::ZERO;
    println!("capping engages only around the afternoon peak — the rest of the day");
    println!("the infrastructure runs uncapped, exactly the paper's typical case.");
}
