//! `dcsim` — a configurable data-center power-capping scenario runner.
//!
//! Not tied to a single paper figure: pick a center size, density, policy,
//! utilization, and (optionally) a feed failure time, and watch the whole
//! stack — estimation, priority-aware budgeting, SPO, per-supply capping,
//! breaker thermal models — play out. The summary reports safety, the
//! priority split, and energy.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin dcsim -- \
//!     --racks 18 --spr 30 --util 1.0 --policy global --fail-feed-at 40 \
//!     --seconds 300 [--spo] [--no-control] [--csv]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::{Engine, EngineConfig, Event};
use capmaestro_sim::report::{series_csv, Table};
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::{FeedId, Priority};
use capmaestro_units::Watts;

fn main() {
    let args = Args::capture();
    let racks: usize = args.get("racks", 18);
    let spr: usize = args.get("spr", 30);
    let util: f64 = args.get("util", 0.9);
    let seconds: u64 = args.get("seconds", 300);
    let fail_at: u64 = args.get("fail-feed-at", 0);
    let seed: u64 = args.get("seed", 1);
    let policy = match args.get::<String>("policy", "global".into()).as_str() {
        "none" => PolicyKind::NoPriority,
        "local" => PolicyKind::LocalPriority,
        _ => PolicyKind::GlobalPriority,
    };

    banner(
        "dcsim",
        "configurable closed-loop data-center power-capping scenario",
    );

    // Scale the distribution fan-out to the rack count (must multiply out).
    let (rpp, cdus) = match racks {
        18 => (3, 3),
        54 => (3, 9),
        162 => (9, 9),
        other => {
            eprintln!("supported rack counts: 18, 54, 162 (got {other})");
            std::process::exit(2);
        }
    };
    let config = DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: 2,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        },
        utilization: util,
        policy,
        spo: args.flag("spo"),
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        seed,
        ..DataCenterRigConfig::default()
    };
    let rig = datacenter_rig(&config);
    let n = rig.farm.len();
    println!(
        "{n} servers, {racks} racks, {policy} policy, utilization {util:.2}, SPO {}",
        if config.spo { "on" } else { "off" }
    );

    let mut engine = Engine::with_config(
        rig,
        EngineConfig {
            control_enabled: !args.flag("no-control"),
            ..EngineConfig::default()
        },
    );
    if fail_at > 0 {
        engine.schedule(fail_at, Event::FailFeed(FeedId::B));
        println!("feed B fails at t={fail_at}s");
    }
    let trace = engine.run(seconds);

    if args.flag("csv") {
        // Total fleet power per second.
        let mut total = vec![0.0f64; seconds as usize];
        for series in trace.server_power.values() {
            for (t, p) in series.iter().enumerate() {
                total[t] += p;
            }
        }
        print!("{}", series_csv("t", &[("total_power_w", &total)]));
        return;
    }

    // Priority split at the end.
    let mut buckets: Vec<(Priority, f64, usize)> = Vec::new();
    for (id, info) in engine.topology().servers() {
        let Some(server) = engine.server(id) else {
            continue;
        };
        let perf = server.performance_fraction().as_f64();
        match buckets.iter_mut().find(|(p, _, _)| *p == info.priority()) {
            Some(b) => {
                b.1 += perf;
                b.2 += 1;
            }
            None => buckets.push((info.priority(), perf, 1)),
        }
    }
    buckets.sort_by_key(|b| std::cmp::Reverse(b.0));
    let mut table = Table::new(vec!["Priority", "Servers", "Mean performance"]);
    for (priority, sum, count) in &buckets {
        table.row(vec![
            priority.to_string(),
            count.to_string(),
            format!("{:.3}", sum / *count as f64),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "breaker trips: {}; servers lost: {}; fleet energy: {:.1} kWh",
        trace.trips.len(),
        trace.lost_servers.len(),
        trace.total_energy_wh() / 1000.0
    );
    if !trace.trips.is_empty() {
        for (t, feed, name) in trace.trips.iter().take(5) {
            println!("  trip at t={t}s: {name} on {feed}");
        }
        if trace.trips.len() > 5 {
            println!("  … and {} more", trace.trips.len() - 5);
        }
    }
}
