//! Fleet-scale stepping bench: the full per-second hot path — 1 Hz
//! sampling into the control plane, fused step-and-sense over the
//! struct-of-arrays server slab, and the 8 s control round — at data
//! center sizes up to ≥100k servers.
//!
//! Two stepping modes are timed on identical rigs:
//!
//! - **event-driven** — the production path: dirty bitmaps skip servers
//!   whose utilization sample, cap, and supply split are unchanged since
//!   the last tick, and the sense buffers re-copy only changed snapshots;
//! - **full-rebuild** — every server stepped and re-sensed every second
//!   (the differential-test reference, and the pre-slab cost model).
//!
//! Both are sharded across the farm's configured thread count. The rig
//! holds demand constant (the paper's Table 4 sizing with seeded
//! per-server utilization), so after the node managers settle the fleet
//! quiesces and the event-driven mode shows its steady-state cost.
//! Results go to `BENCH_fleet.json`, including the honest host CPU count
//! the shards actually had available.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fleet \
//!     [-- --periods N --out PATH --smoke]
//! ```
//!
//! `--smoke` runs the same pipeline on a 128-server rig for a handful of
//! periods — a wall-clock-bounded CI check that the fleet path executes
//! and reports sane throughput, exiting nonzero otherwise.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use capmaestro_bench::{banner, Args};
use capmaestro_core::plane::{ControlPlane, Farm, SenseBuffer};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_units::{Seconds, Watts};

/// Control periods used to warm every cache (node-manager settling,
/// estimator windows, round context, sense buffers) before measuring.
const WARMUP_PERIODS: u32 = 2;

/// Seconds per control period (the paper's 8 s round cadence).
const PERIOD_S: u32 = 8;

fn config_for(
    racks: usize,
    tpf: usize,
    rpp: usize,
    cdus: usize,
    spr: usize,
) -> DataCenterRigConfig {
    DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: tpf,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        utilization: 0.9,
        ..DataCenterRigConfig::default()
    }
}

/// One mode's timing over `periods` control periods.
struct ModeTiming {
    /// Wall time of the whole loop (sampling, stepping, rounds).
    total: Duration,
    /// Wall time strictly around the `round` calls.
    rounds: Duration,
    /// Wall time strictly around the fused step-and-sense sweeps — the
    /// phase the event-driven slab accelerates (the 1 Hz estimator
    /// sampling is unconditional by design, so it dilutes `total`).
    stepping: Duration,
}

/// Runs `periods` control periods of the engine-shaped hot path:
/// `PERIOD_S` seconds of (1 Hz sample + fused step-and-sense), then one
/// control round.
fn run_periods(
    plane: &mut ControlPlane,
    farm: &mut Farm,
    buf: &mut SenseBuffer,
    periods: u32,
) -> ModeTiming {
    let start = Instant::now();
    let mut rounds = Duration::ZERO;
    let mut stepping = Duration::ZERO;
    for _ in 0..periods {
        for _ in 0..PERIOD_S {
            plane.sample(farm);
            let step_start = Instant::now();
            farm.step_and_sense_into(Seconds::new(1.0), buf);
            stepping += step_start.elapsed();
        }
        let round_start = Instant::now();
        plane.round(farm);
        rounds += round_start.elapsed();
    }
    ModeTiming {
        total: start.elapsed(),
        rounds,
        stepping,
    }
}

struct Sample {
    servers: usize,
    threads: usize,
    periods: u32,
    /// Simulated seconds per wall second, event-driven.
    event_steps_per_sec: f64,
    /// Simulated seconds per wall second, full rebuild.
    full_steps_per_sec: f64,
    /// Mean step-and-sense sweep cost, microseconds, event-driven.
    event_step_us: f64,
    /// Mean step-and-sense sweep cost, microseconds, full rebuild.
    full_step_us: f64,
    /// Control rounds per wall second (event-driven, round time only).
    rounds_per_sec: f64,
    /// Server-seconds simulated per wall second (event-driven, whole
    /// loop): `servers × simulated seconds / wall time`.
    servers_per_sec: f64,
}

fn measure(config: &DataCenterRigConfig, threads: usize, periods: u32) -> Sample {
    let mut sample = Sample {
        servers: 0,
        threads,
        periods,
        event_steps_per_sec: 0.0,
        full_steps_per_sec: 0.0,
        event_step_us: 0.0,
        full_step_us: 0.0,
        rounds_per_sec: 0.0,
        servers_per_sec: 0.0,
    };
    for event_driven in [true, false] {
        let rig = datacenter_rig(config);
        let mut farm = rig.farm;
        let mut plane = rig.plane;
        let mut buf = SenseBuffer::new();
        farm.set_parallelism(threads);
        farm.set_event_driven(event_driven);
        sample.servers = farm.len();
        run_periods(&mut plane, &mut farm, &mut buf, WARMUP_PERIODS);
        let timing = run_periods(&mut plane, &mut farm, &mut buf, periods);
        let sim_seconds = (periods * PERIOD_S) as f64;
        let steps_per_sec = sim_seconds / timing.total.as_secs_f64();
        let step_us = timing.stepping.as_secs_f64() * 1e6 / sim_seconds;
        if event_driven {
            sample.event_steps_per_sec = steps_per_sec;
            sample.event_step_us = step_us;
            sample.rounds_per_sec = periods as f64 / timing.rounds.as_secs_f64();
            sample.servers_per_sec =
                sample.servers as f64 * sim_seconds / timing.total.as_secs_f64();
        } else {
            sample.full_steps_per_sec = steps_per_sec;
            sample.full_step_us = step_us;
        }
    }
    sample
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn render_json(samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet_stepping\",");
    let _ = writeln!(out, "  \"host_cpus\": {},", host_cpus());
    let _ = writeln!(out, "  \"period_s\": {PERIOD_S},");
    let _ = writeln!(out, "  \"warmup_periods\": {WARMUP_PERIODS},");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"servers\": {}, \"threads\": {}, \"periods\": {}, \
             \"event_driven_steps_per_sec\": {:.2}, \
             \"full_rebuild_steps_per_sec\": {:.2}, \"speedup\": {:.3}, \
             \"event_driven_step_us\": {:.1}, \"full_rebuild_step_us\": {:.1}, \
             \"step_speedup\": {:.2}, \
             \"rounds_per_sec\": {:.2}, \"servers_per_sec\": {:.0}}}",
            s.servers,
            s.threads,
            s.periods,
            s.event_steps_per_sec,
            s.full_steps_per_sec,
            s.event_steps_per_sec / s.full_steps_per_sec,
            s.event_step_us,
            s.full_step_us,
            s.full_step_us / s.event_step_us,
            s.rounds_per_sec,
            s.servers_per_sec,
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Wall-clock-bounded CI smoke: the fleet pipeline on a 128-server rig
/// for a few periods in both modes, checking it completes with sane
/// (finite, nonzero) throughput. Returns the process exit code.
fn smoke() -> i32 {
    let config = config_for(8, 2, 2, 2, 16);
    let s = measure(&config, 2, 4);
    println!(
        "smoke: {} servers, {:.1} event-driven steps/s, {:.1} full-rebuild \
         steps/s, {:.1} rounds/s, {:.0} servers/s on {} host cpus",
        s.servers,
        s.event_steps_per_sec,
        s.full_steps_per_sec,
        s.rounds_per_sec,
        s.servers_per_sec,
        host_cpus(),
    );
    let sane = |x: f64| x.is_finite() && x > 0.0;
    if s.servers != 128 {
        eprintln!("FAIL: expected a 128-server smoke rig, got {}", s.servers);
        return 1;
    }
    if !(sane(s.event_steps_per_sec)
        && sane(s.full_steps_per_sec)
        && sane(s.rounds_per_sec)
        && sane(s.servers_per_sec))
    {
        eprintln!("FAIL: fleet smoke produced degenerate throughput numbers.");
        return 1;
    }
    println!("smoke ok: fleet stepping pipeline ran in both modes.");
    0
}

fn main() {
    let args = Args::capture();
    let periods: u32 = args.get("periods", 12);
    let out_path: String = args.get("out", "BENCH_fleet.json".to_string());

    banner(
        "Fleet stepping",
        "event-driven sharded slab stepping vs full rebuild at fleet scale",
    );

    if args.flag("smoke") {
        std::process::exit(smoke());
    }

    let threads = host_cpus();
    let mut table = Table::new(vec![
        "Servers",
        "Threads",
        "Event steps/s",
        "Full steps/s",
        "Step µs (ev/full)",
        "Step speedup",
        "Rounds/s",
        "Servers/s",
    ]);
    let mut samples = Vec::new();
    // Rack counts must equal transformers × RPPs × CDUs; the largest rig
    // is 2520 racks × 40 servers = 100 800 servers (≥100k).
    for (racks, tpf, rpp, cdus, spr) in
        [(128, 2, 8, 8, 32), (630, 2, 9, 35, 40), (2520, 6, 20, 21, 40)]
    {
        let config = config_for(racks, tpf, rpp, cdus, spr);
        let s = measure(&config, threads, periods);
        table.row(vec![
            s.servers.to_string(),
            s.threads.to_string(),
            format!("{:.1}", s.event_steps_per_sec),
            format!("{:.1}", s.full_steps_per_sec),
            format!("{:.0}/{:.0}", s.event_step_us, s.full_step_us),
            format!("{:.1}x", s.full_step_us / s.event_step_us),
            format!("{:.1}", s.rounds_per_sec),
            format!("{:.2e}", s.servers_per_sec),
        ]);
        samples.push(s);
    }
    print!("{}", table.render());
    println!();

    let json = render_json(&samples);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
