//! Figure 7b: normalized throughput with and without the stranded-power
//! optimization (§6.3).
//!
//! Paper values: without SPO, SB runs at ≈0.88 of its uncapped
//! throughput; with SPO it exceeds 0.99. SC and SD are unchanged by SPO.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig7b
//! ```

use capmaestro_bench::banner;
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{stranded_rig, RigConfig};
use capmaestro_topology::presets::RIG_SERVER_NAMES;
use capmaestro_workload::WebServerModel;

fn perf_row(policy: PolicyKind, spo: bool) -> [f64; 4] {
    let rig = stranded_rig(RigConfig::table3().with_policy(policy).with_spo(spo));
    let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
    let mut engine = Engine::new(rig);
    engine.run(150);
    let apache = WebServerModel::new(1000.0, 5.0);
    let mut out = [0.0f64; 4];
    for (i, id) in ids.iter().enumerate() {
        let perf = engine.server(*id).expect("rig server").performance_fraction();
        out[i] = apache.at_performance(perf).normalized_throughput.as_f64();
    }
    out
}

fn main() {
    banner(
        "Figure 7b",
        "normalized throughput on the stranded-power rig, per policy, with/without SPO",
    );
    let configs = [
        ("No Priority", PolicyKind::NoPriority, false),
        ("Local Priority", PolicyKind::LocalPriority, false),
        ("Global Priority w/o SPO", PolicyKind::GlobalPriority, false),
        ("Global Priority w/ SPO", PolicyKind::GlobalPriority, true),
    ];
    let mut table = Table::new(vec!["Configuration", "SA", "SB", "SC", "SD"]);
    let mut rows = Vec::new();
    for (label, policy, spo) in configs {
        let row = perf_row(policy, spo);
        table.row(vec![
            label.to_string(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{:.2}", row[2]),
            format!("{:.2}", row[3]),
        ]);
        rows.push(row);
    }
    print!("{}", table.render());
    println!();
    let without = rows[2][1];
    let with = rows[3][1];
    println!(
        "SB without SPO: {without:.2} (paper ≈0.88); with SPO: {with:.2} (paper >0.99)"
    );
    println!(
        "SC/SD change under SPO: {:+.3}/{:+.3} (paper: unchanged)",
        rows[3][2] - rows[2][2],
        rows[3][3] - rows[2][3],
    );
}
