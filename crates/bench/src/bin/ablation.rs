//! Ablation: why per-supply budget enforcement matters (§3.1).
//!
//! Compares CapMaestro's per-supply capping controller against the
//! state-of-the-art baseline that enforces only a single combined budget
//! (Intel Node Manager / prior data-center cappers \[5–8\]) on a server with
//! the paper's worst measured load split (65/35). With equal per-supply
//! budgets, the baseline lets the heavy supply — and therefore its feed —
//! run far past its budget even though the total looks legal.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin ablation
//! ```

use capmaestro_bench::banner;
use capmaestro_core::capping::{CappingController, CombinedBudgetController};
use capmaestro_sim::report::Table;
use capmaestro_server::{Server, ServerConfig};
use capmaestro_units::{Seconds, Watts};

struct Outcome {
    ps1: f64,
    ps2: f64,
    total: f64,
}

fn run(split: f64, use_combined: bool) -> Outcome {
    let budgets = [Watts::new(230.0), Watts::new(230.0)];
    let mut server = Server::new(ServerConfig::paper_default().with_split(split));
    server.set_offered_demand(Watts::new(460.0));
    server.settle();
    let model = server.config().model();
    let k = server.config().efficiency();
    let mut per_supply = CappingController::new(model.cap_min(), model.cap_max(), k);
    let mut combined = CombinedBudgetController::new(model.cap_min(), model.cap_max(), k);

    for _ in 0..15 {
        let snap = server.sense();
        let cap = if use_combined {
            combined.update(budgets.iter().sum(), snap.total_ac)
        } else {
            per_supply.update(&budgets, &snap.supply_ac)
        };
        server.set_dc_cap(cap);
        for _ in 0..8 {
            server.step(Seconds::new(1.0));
        }
    }
    let snap = server.sense();
    Outcome {
        ps1: snap.supply_ac[0].as_f64(),
        ps2: snap.supply_ac[1].as_f64(),
        total: snap.total_ac.as_f64(),
    }
}

fn main() {
    banner(
        "Ablation (§3.1)",
        "per-supply enforcement vs single combined budget, 230 W per supply, 460 W demand",
    );
    let mut table = Table::new(vec![
        "Split",
        "Controller",
        "PS1 (W)",
        "PS2 (W)",
        "Total (W)",
        "PS1 over budget?",
    ]);
    for split in [0.50, 0.57, 0.65] {
        for (label, combined) in [("combined (baseline)", true), ("per-supply (ours)", false)] {
            let o = run(split, combined);
            table.row(vec![
                format!("{:.0}/{:.0}", split * 100.0, (1.0 - split) * 100.0),
                label.to_string(),
                format!("{:.0}", o.ps1),
                format!("{:.0}", o.ps2),
                format!("{:.0}", o.total),
                if o.ps1 > 230.0 * 1.02 {
                    format!("YES (+{:.0}%)", (o.ps1 / 230.0 - 1.0) * 100.0)
                } else {
                    "no".into()
                },
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!("with an even split both controllers coincide; with the paper's 15%");
    println!("mismatch (65/35) the combined baseline overloads PS1's feed by ~30%,");
    println!("which is exactly the tripped-breaker hazard of §3.1.");
}
