//! Scheduler coordination: a day of jobs with dynamic priorities (§7).
//!
//! Generates a random job timeline over the small data-center rig and
//! replays it through the engine with the job-scheduler hook feeding
//! per-server priorities to the control plane at every arrival and
//! departure. Reports how well each priority class was served and the
//! energy picture.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin scheduler [-- --jobs N --seed S]
//! ```

use std::collections::HashMap;

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_server::ServerPowerModel;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::jobs::JobSchedule;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_units::Watts;

const HORIZON_S: u64 = 600;

fn main() {
    let args = Args::capture();
    let jobs: usize = args.get("jobs", 4000);
    let seed: u64 = args.get("seed", 11);
    banner(
        "Scheduler coordination (§7)",
        "random job day on the 18-rack center; priorities flow from jobs to budgets",
    );

    // A dense center under a tight budget so the jobs actually contend.
    let mut config = DataCenterRigConfig::small();
    config.params.servers_per_rack = 30;
    config.utilization = 0.0; // demand comes entirely from jobs
    config.jitter_std = 0.0;
    config.policy = PolicyKind::GlobalPriority;
    // Tighten the contract to 80 % so the day genuinely contends while
    // staying above the fleet's Σ Pcap_min floor (48.6 kW per phase).
    config.contractual_per_phase = config.contractual_per_phase * 0.8;
    let rig = datacenter_rig(&config);
    let servers: Vec<_> = rig.topology.servers().map(|(id, _)| id).collect();

    let schedule = JobSchedule::generate(&servers, jobs, HORIZON_S, seed);
    let mut engine = Engine::new(rig);
    for (t, event) in schedule.compile(ServerPowerModel::paper_default()) {
        engine.schedule(t, event);
    }
    let trace = engine.run(HORIZON_S);

    // Score each job by its host's mean performance during its lifetime.
    let mut by_priority: HashMap<u8, (f64, usize)> = HashMap::new();
    for (server, job) in schedule.assignments() {
        let throttle = &trace.throttle[server];
        let mut perf_sum = 0.0;
        let mut samples = 0usize;
        for t in job.start_s..job.end_s.min(HORIZON_S) {
            perf_sum += (1.0 - throttle[t as usize]).powf(1.0 / 3.0);
            samples += 1;
        }
        if samples > 0 {
            let entry = by_priority.entry(job.priority.level()).or_insert((0.0, 0));
            entry.0 += perf_sum / samples as f64;
            entry.1 += 1;
        }
    }

    let mut table = Table::new(vec!["Job priority", "Jobs", "Mean performance"]);
    let mut levels: Vec<u8> = by_priority.keys().copied().collect();
    levels.sort_unstable_by(|a, b| b.cmp(a));
    for level in levels {
        let (sum, count) = by_priority[&level];
        table.row(vec![
            format!("P{level}"),
            count.to_string(),
            format!("{:.3}", sum / count as f64),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "fleet energy over the {HORIZON_S} s day: {:.1} kWh; breaker trips: {}",
        trace.total_energy_wh() / 1000.0,
        trace.trips.len()
    );
    let budget: Watts = Watts::from_kilowatts(700.0 / 9.0) * 0.95 * 0.8 * 3.0;
    println!(
        "contractual ceiling: {:.1} kW across three phases (never exceeded)",
        budget.as_kilowatts()
    );
    println!("\nhigher-priority jobs ride closer to full speed — the scheduler's");
    println!("priorities reached the power plane at every arrival and departure.");
}
