//! Control-period sensitivity: why the paper runs at 8 seconds.
//!
//! §5 argues the 8 s period "provides a more stabilized response while
//! still being fast enough to address failures" — budgets must land within
//! the ~30 s UL 489 window after a feed failure. This harness sweeps the
//! control period on the §6.2 rig and reports (1) how long the Fig. 5-style
//! budget step takes to settle within 5 %, and (2) whether a feed-failure
//! overload is corrected inside the 30 s breaker window.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin control_period
//! ```

use capmaestro_bench::banner;
use capmaestro_core::capping::CappingController;
use capmaestro_sim::engine::{Engine, EngineConfig, Event};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{stranded_rig, RigConfig};
use capmaestro_server::{Server, ServerConfig};
use capmaestro_topology::FeedId;
use capmaestro_units::{Seconds, Watts};

/// Seconds until the PS2 power stays within 5 % of a 200 W budget step.
fn settle_time(period: u64) -> Option<u64> {
    let mut server = Server::new(ServerConfig::paper_default().with_split(0.5));
    server.set_offered_demand(Watts::new(460.0));
    server.settle();
    let model = server.config().model();
    let mut ctl =
        CappingController::new(model.cap_min(), model.cap_max(), server.config().efficiency());
    let budgets = [Watts::new(280.0), Watts::new(200.0)];
    let mut settled_at = None;
    for t in 0..200u64 {
        if t % period == 0 {
            let snap = server.sense();
            let cap = ctl.update(&budgets, &snap.supply_ac);
            server.set_dc_cap(cap);
        }
        server.step(Seconds::new(1.0));
        let ps2 = server.sense().supply_ac[1];
        let within = (ps2 - budgets[1]).as_f64().abs() <= 10.0;
        match (within, settled_at) {
            (true, None) => settled_at = Some(t + 1),
            (false, Some(_)) => settled_at = None,
            _ => {}
        }
    }
    settled_at
}

/// Seconds after a feed failure until the surviving feed is back within
/// its budget (must be < 30 s for breaker safety).
///
/// The Y side dies while the X side is granted only 900 W of the shared
/// contract — the failed-over demand (~1.29 kW) overloads it by ~43 %
/// until capping wins the race.
fn failover_recovery(period: u64) -> Option<u64> {
    const SURVIVOR_BUDGET: f64 = 900.0;
    let rig = stranded_rig(RigConfig::table3());
    let mut engine = Engine::with_config(
        rig,
        EngineConfig {
            control_period_s: period,
            ..EngineConfig::default()
        },
    );
    engine.schedule(64, Event::FailFeed(FeedId::B));
    engine.schedule(64, Event::SetRootBudgets(vec![Watts::new(SURVIVOR_BUDGET)]));
    let trace = engine.run(240);
    let x_top = trace.node_series_on(FeedId::A, "X Top CB")?;
    // Find the last second the X feed exceeded its budget after the event.
    let mut last_over = None;
    for (t, &load) in x_top.iter().enumerate().skip(64) {
        if load > SURVIVOR_BUDGET * 1.02 {
            last_over = Some(t as u64);
        }
    }
    Some(match last_over {
        Some(t) => t - 64 + 1,
        None => 0,
    })
}

fn main() {
    banner(
        "Control-period sensitivity (§5)",
        "settling time and failover recovery vs control period (paper: 8 s)",
    );
    let mut table = Table::new(vec![
        "Period (s)",
        "Step settle (s)",
        "Failover recovery (s)",
        "Within 30 s window?",
    ]);
    for period in [2u64, 4, 8, 16, 24] {
        let settle = settle_time(period)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into());
        let recovery = failover_recovery(period);
        let (rec_str, ok) = match recovery {
            Some(t) => (t.to_string(), t <= 30),
            None => ("?".into(), false),
        };
        table.row(vec![
            period.to_string(),
            settle,
            rec_str,
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("the paper's 8 s period corrects a worst-case failover in ~16 s —");
    println!("inside its own 'at most 14 s to a new cap' + settling arithmetic and");
    println!("the UL 489 30-second window; at 16 s periods and above, the race");
    println!("with the breaker is lost.");
}
