//! Figure 10: average cap ratio vs. deployed servers during a worst-case
//! power emergency — (a) all servers, (b) high-priority servers.
//!
//! Paper shape: all curves grow with server count; priority-aware policies
//! hold high-priority cap ratios near zero much longer, and Global Priority
//! longest (its high-priority curve lifts off only past ~5.8k servers).
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig10 [-- --worst-trials N]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_sim::report::{series_csv, Table};

fn main() {
    let args = Args::capture();
    banner(
        "Figure 10",
        "cap ratio vs server count under a worst-case emergency (one feed down, 100% load)",
    );
    let mut config = CapacityConfig::default();
    config.worst_trials = args.get("worst-trials", 30);
    config.seed = args.get("seed", config.seed);
    let racks = config.dc.racks;
    let planner = CapacityPlanner::new(config);

    let sizes: Vec<usize> = (6..=45).step_by(3).collect();
    let mut table_all = Table::new(vec![
        "Servers", "No Priority", "Local Priority", "Global Priority",
    ]);
    let mut table_high = table_all.clone();

    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    for policy in PolicyKind::ALL {
        let stats = planner.capacity_curve(policy, Condition::WorstCase, &sizes);
        columns.push(
            stats
                .iter()
                .map(|s| (s.cap_ratio_all, s.cap_ratio_high))
                .collect(),
        );
    }
    if args.flag("csv") {
        let servers: Vec<f64> = sizes.iter().map(|&s| (s * racks) as f64).collect();
        let cols: Vec<Vec<f64>> = (0..3)
            .flat_map(|p| {
                [
                    columns[p].iter().map(|(a, _)| *a).collect::<Vec<f64>>(),
                    columns[p].iter().map(|(_, h)| *h).collect::<Vec<f64>>(),
                ]
            })
            .collect();
        print!(
            "{}",
            series_csv(
                "idx",
                &[
                    ("servers", &servers),
                    ("none_all", &cols[0]),
                    ("none_high", &cols[1]),
                    ("local_all", &cols[2]),
                    ("local_high", &cols[3]),
                    ("global_all", &cols[4]),
                    ("global_high", &cols[5]),
                ],
            )
        );
        return;
    }

    for (i, &spr) in sizes.iter().enumerate() {
        let servers = spr * racks;
        table_all.row(vec![
            servers.to_string(),
            format!("{:.3}", columns[0][i].0),
            format!("{:.3}", columns[1][i].0),
            format!("{:.3}", columns[2][i].0),
        ]);
        table_high.row(vec![
            servers.to_string(),
            format!("{:.3}", columns[0][i].1),
            format!("{:.3}", columns[1][i].1),
            format!("{:.3}", columns[2][i].1),
        ]);
    }
    println!("(a) average cap ratio, all servers");
    print!("{}", table_all.render());
    println!();
    println!("(b) average cap ratio, high-priority servers");
    print!("{}", table_high.render());
}
