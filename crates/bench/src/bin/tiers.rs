//! Multi-tier priorities: the capping waterfall with more than two levels.
//!
//! The paper's examples use two priorities but the mechanism "can support
//! an arbitrary number of priorities" (§3.2) and expects "on the order of
//! 10" levels in practice (§4.1). This harness builds a flat feed of eight
//! servers across four tiers (P3 highest) and sweeps the budget downward,
//! printing which tier is being capped at each step. The theorem says the
//! waterfall must drain strictly bottom-up: P0 to its minimum before P1 is
//! touched, and so on.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin tiers
//! ```

use capmaestro_bench::banner;
use capmaestro_core::policy::GlobalPriority;
use capmaestro_core::tree::{ControlTree, SupplyInput};
use capmaestro_sim::report::Table;
use capmaestro_topology::{
    ControlTreeSpec, FeedId, Phase, Priority, ServerId, SpecLeaf, SpecNode, SupplyIndex,
};
use capmaestro_units::{Ratio, Watts};

const DEMAND: f64 = 430.0;
const CAP_MIN: f64 = 270.0;

/// Eight servers: two per tier P0..P3.
fn tier_of(i: usize) -> u8 {
    (i / 2) as u8
}

fn build_tree() -> ControlTree {
    let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
    let root = spec.push_node(SpecNode {
        name: "feed".into(),
        limit: Some(Watts::new(4000.0)),
        parent: None,
        children: vec![],
        leaf: None,
    });
    for i in 0..8usize {
        let leaf = spec.push_node(SpecNode {
            name: format!("s{i}"),
            limit: None,
            parent: Some(root),
            children: vec![],
            leaf: Some(SpecLeaf {
                server: ServerId(i as u32),
                supply: SupplyIndex::FIRST,
                priority: Priority(tier_of(i)),
            }),
        });
        spec.node_mut(root).children.push(leaf);
    }
    ControlTree::with_uniform(
        spec,
        SupplyInput {
            demand: Watts::new(DEMAND),
            cap_min: Watts::new(CAP_MIN),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
        },
    )
}

fn main() {
    banner(
        "Multi-tier priorities",
        "8 servers across 4 tiers (P3 highest), 430 W demand each, budget sweep",
    );
    let tree = build_tree();
    let mut table = Table::new(vec![
        "Budget (W)",
        "P0 avg",
        "P1 avg",
        "P2 avg",
        "P3 avg",
        "Tier being capped",
    ]);
    for budget in (2200..=3500).rev().step_by(160) {
        let alloc = tree.allocate(Watts::new(budget as f64), &GlobalPriority::new());
        let mut tier_avg = [0.0f64; 4];
        for i in 0..8usize {
            let b = alloc
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap()
                .as_f64();
            tier_avg[tier_of(i) as usize] += b / 2.0;
        }
        // The tier actively draining: strictly between its floor and its
        // demand. Tiers already at the floor are fully drained.
        let capped_tier = (0..4)
            .find(|&t| tier_avg[t] > CAP_MIN + 0.5 && tier_avg[t] < DEMAND - 0.5)
            .map(|t| format!("P{t}"))
            .unwrap_or_else(|| {
                if tier_avg.iter().all(|&b| b >= DEMAND - 0.5) {
                    "none".into()
                } else {
                    // Everything below the first uncapped tier is drained.
                    let drained = (0..4).take_while(|&t| tier_avg[t] <= CAP_MIN + 0.5).count();
                    format!("P0–P{} drained", drained.saturating_sub(1))
                }
            });
        table.row(vec![
            budget.to_string(),
            format!("{:.0}", tier_avg[0]),
            format!("{:.0}", tier_avg[1]),
            format!("{:.0}", tier_avg[2]),
            format!("{:.0}", tier_avg[3]),
            capped_tier,
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("reading downward: P0 drains to its 270 W floor before P1 loses a watt,");
    println!("P1 before P2, P2 before P3 — the waterfall the technical report proves.");
}
