//! Round-pipeline allocation micro-bench: incremental vs from-scratch
//! control rounds, with a counting global allocator proving the
//! steady-state hot path is allocation-free.
//!
//! For each data-center size this harness builds the Table 4-style rig,
//! warms the plane's cached `RoundContext`, then times two variants of
//! the control round:
//!
//! - **incremental** — `ControlPlane::round` reusing the arena round
//!   state, dirty stamps, and scratch buffers across rounds;
//! - **full** — `reset_round_cache` before every round, so each round
//!   rebuilds the context from scratch (the pre-refactor cost model).
//!
//! Heap allocations are counted strictly around the `round` call
//! (sampling and farm stepping sit outside the window), so
//! `allocs_per_round` reports what the round itself allocates once warm.
//! Results go to `BENCH_alloc.json`.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin alloc \
//!     [-- --rounds N --out PATH --smoke]
//! ```
//!
//! `--smoke` runs a short deterministic check instead of the sweep: 60
//! incremental rounds on the small rig against a twin plane rebuilt
//! every round, verifying bit-identical caps and zero steady-state
//! allocations, exiting nonzero on any mismatch. The smoke then attaches
//! a live `MetricsRegistry` and proves the instrumented hot path is
//! *still* allocation-free once the registry is warm.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use capmaestro_bench::{banner, Args};
use capmaestro_core::obs::{MetricsRegistry, RoundPhase};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::{ServerId, SupplyIndex};
use capmaestro_units::{Seconds, Watts};

/// Counts heap allocations (alloc + realloc + alloc_zeroed) made through
/// the global allocator; frees are not counted. The counter is a plain
/// relaxed atomic so the measurement overhead is one fetch-add per
/// allocation — negligible next to the allocation itself.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Rounds used to warm caches (estimator windows, `RoundContext`
/// buffers, report capacity) before any measurement window opens.
const WARMUP_ROUNDS: u32 = 12;

/// One size's measurement.
struct Sample {
    servers: usize,
    nodes: usize,
    rounds: u32,
    incremental_rounds_per_sec: f64,
    full_rounds_per_sec: f64,
    allocs_per_round: f64,
}

fn config_for(racks: usize, rpp: usize, cdus: usize, spr: usize) -> DataCenterRigConfig {
    DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: 2,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        utilization: 0.9,
        ..DataCenterRigConfig::default()
    }
}

fn measure(racks: usize, rpp: usize, cdus: usize, spr: usize, rounds: u32) -> Sample {
    let config = config_for(racks, rpp, cdus, spr);
    let rig = datacenter_rig(&config);
    let mut farm = rig.farm;
    let mut plane = rig.plane;
    let servers = farm.len();
    let nodes: usize = plane.trees().iter().map(|t| t.arena().len()).sum();

    for _ in 0..WARMUP_ROUNDS {
        plane.record_sample(&farm);
        plane.round(&mut farm);
        farm.step_all(Seconds::new(1.0));
    }

    // Incremental: time and count allocations strictly around the round.
    let mut incremental = Duration::ZERO;
    let mut allocs: u64 = 0;
    for _ in 0..rounds {
        plane.record_sample(&farm);
        let before = ALLOCS.load(Ordering::Relaxed);
        let start = Instant::now();
        plane.round(&mut farm);
        incremental += start.elapsed();
        allocs += ALLOCS.load(Ordering::Relaxed) - before;
        farm.step_all(Seconds::new(1.0));
    }

    // Full: throw the cached context away before every round, and charge
    // the rebuild to the round (that is the pre-refactor cost model).
    let mut full = Duration::ZERO;
    for _ in 0..rounds {
        plane.record_sample(&farm);
        let start = Instant::now();
        plane.reset_round_cache();
        plane.round(&mut farm);
        full += start.elapsed();
        farm.step_all(Seconds::new(1.0));
    }

    Sample {
        servers,
        nodes,
        rounds,
        incremental_rounds_per_sec: rounds as f64 / incremental.as_secs_f64(),
        full_rounds_per_sec: rounds as f64 / full.as_secs_f64(),
        allocs_per_round: allocs as f64 / rounds as f64,
    }
}

fn render_json(samples: &[Sample]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"round_pipeline_alloc\",");
    let _ = writeln!(out, "  \"warmup_rounds\": {WARMUP_ROUNDS},");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"servers\": {}, \"nodes\": {}, \"rounds\": {}, \
             \"incremental_rounds_per_sec\": {:.2}, \"full_rounds_per_sec\": {:.2}, \
             \"speedup\": {:.3}, \"allocs_per_round\": {:.1}}}",
            s.servers,
            s.nodes,
            s.rounds,
            s.incremental_rounds_per_sec,
            s.full_rounds_per_sec,
            s.incremental_rounds_per_sec / s.full_rounds_per_sec,
            s.allocs_per_round,
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Deterministic CI smoke: 60 incremental rounds on the small rig vs a
/// twin plane whose `RoundContext` is rebuilt every round, checking (a)
/// bit-identical caps, budgets, and stranded power each round, (b) zero
/// steady-state allocations inside `ControlPlane::round`, and (c) zero
/// allocations per round with a live `MetricsRegistry` attached once its
/// metric cells are registered. Returns the process exit code.
fn smoke() -> i32 {
    let config = config_for(8, 2, 2, 16);
    let rig_a = datacenter_rig(&config);
    let rig_b = datacenter_rig(&config);
    let mut farm_a = rig_a.farm;
    let mut plane_a = rig_a.plane;
    let mut farm_b = rig_b.farm;
    let mut plane_b = rig_b.plane;
    let pairs: Vec<(ServerId, SupplyIndex)> = farm_a
        .iter()
        .map(|(id, _)| id)
        .flat_map(|s| [(s, SupplyIndex::FIRST), (s, SupplyIndex::SECOND)])
        .collect();

    let mut failures = 0u32;
    let mut steady_allocs = 0u64;
    const ROUNDS: u32 = 60;
    for round in 0..ROUNDS {
        plane_a.record_sample(&farm_a);
        plane_b.record_sample(&farm_b);

        let before = ALLOCS.load(Ordering::Relaxed);
        plane_a.round(&mut farm_a);
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        if round >= WARMUP_ROUNDS {
            steady_allocs += allocs;
        }

        plane_b.reset_round_cache();
        plane_b.round(&mut farm_b);

        let report_a = plane_a.last_report().expect("round ran");
        let report_b = plane_b.last_report().expect("round ran");
        let caps_match = report_a.dc_caps.len() == report_b.dc_caps.len()
            && report_a.dc_caps.iter().all(|(id, cap)| {
                report_b.dc_caps.get(id).map(|c| c.as_f64().to_bits())
                    == Some(cap.as_f64().to_bits())
            });
        let budgets_match = pairs.iter().all(|&(server, supply)| {
            let a = report_a.supply_budget(server, supply);
            let b = report_b.supply_budget(server, supply);
            a.map(|w| w.as_f64().to_bits()) == b.map(|w| w.as_f64().to_bits())
        });
        let stranded_match = report_a.stranded_reclaimed.as_f64().to_bits()
            == report_b.stranded_reclaimed.as_f64().to_bits();
        if !(caps_match && budgets_match && stranded_match) {
            eprintln!(
                "round {round}: incremental diverged from full rebuild \
                 (caps {caps_match}, budgets {budgets_match}, stranded {stranded_match})"
            );
            failures += 1;
        }

        farm_a.step_all(Seconds::new(1.0));
        farm_b.step_all(Seconds::new(1.0));
    }

    let steady_rounds = (ROUNDS - WARMUP_ROUNDS) as u64;
    println!(
        "smoke: {ROUNDS} rounds, {failures} divergent, \
         {steady_allocs} heap allocations over {steady_rounds} steady-state rounds"
    );
    if failures > 0 {
        eprintln!("FAIL: incremental rounds are not bit-identical to full rebuilds.");
        return 1;
    }
    if steady_allocs > 0 {
        eprintln!("FAIL: steady-state rounds allocated on the hot path.");
        return 1;
    }

    // Phase 2: attach a live registry and prove the *instrumented* hot
    // path is still allocation-free. The first instrumented rounds
    // register every metric cell (that allocates, by design); after the
    // re-warm the registry is append-only and rounds must be clean.
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    plane_a.set_recorder(registry.clone());
    const INSTRUMENT_WARMUP: u32 = 2;
    const INSTRUMENT_ROUNDS: u32 = 20;
    for _ in 0..INSTRUMENT_WARMUP {
        plane_a.record_sample(&farm_a);
        plane_a.round(&mut farm_a);
        farm_a.step_all(Seconds::new(1.0));
    }
    let mut instrumented_allocs = 0u64;
    for _ in 0..INSTRUMENT_ROUNDS {
        plane_a.record_sample(&farm_a);
        let before = ALLOCS.load(Ordering::Relaxed);
        plane_a.round(&mut farm_a);
        instrumented_allocs += ALLOCS.load(Ordering::Relaxed) - before;
        farm_a.step_all(Seconds::new(1.0));
    }
    println!(
        "smoke: {instrumented_allocs} heap allocations over \
         {INSTRUMENT_ROUNDS} registry-instrumented rounds"
    );
    if instrumented_allocs > 0 {
        eprintln!("FAIL: instrumented rounds allocated on the hot path.");
        return 1;
    }
    // Sanity: the registry actually saw the rounds it instrumented.
    let snap = registry.snapshot();
    let phases_seen = RoundPhase::ALL.iter().all(|p| {
        snap.histograms
            .iter()
            .any(|h| h.name == p.metric_name() && h.count > 0)
    });
    if !phases_seen {
        eprintln!("FAIL: instrumented rounds did not record all six phases.");
        return 1;
    }

    // Phase 3: the zero-alloc sense path. `ControlPlane::sample` syncs
    // the farm's snapshot slab into the plane's persistent scratch
    // buffer (replacing the allocating `sense_all`), and the engine's
    // fused step-and-sense writes into a reused `SenseBuffer`. Once both
    // buffers are warm, a full 1 Hz sense+step second must not allocate.
    let mut sense_buf = capmaestro_core::plane::SenseBuffer::new();
    const SENSE_WARMUP: u32 = 2;
    const SENSE_STEPS: u32 = 30;
    for _ in 0..SENSE_WARMUP {
        plane_a.sample(&mut farm_a);
        farm_a.step_and_sense_into(Seconds::new(1.0), &mut sense_buf);
    }
    let mut sense_allocs = 0u64;
    for _ in 0..SENSE_STEPS {
        let before = ALLOCS.load(Ordering::Relaxed);
        plane_a.sample(&mut farm_a);
        farm_a.step_and_sense_into(Seconds::new(1.0), &mut sense_buf);
        sense_allocs += ALLOCS.load(Ordering::Relaxed) - before;
    }
    println!(
        "smoke: {sense_allocs} heap allocations over {SENSE_STEPS} \
         sense+step seconds (sample + step_and_sense_into)"
    );
    if sense_allocs > 0 {
        eprintln!("FAIL: the warm sense path allocated.");
        return 1;
    }

    println!("smoke ok: bit-identical and allocation-free once warm, with and without recording.");
    0
}

fn main() {
    let args = Args::capture();
    let rounds: u32 = args.get("rounds", 40);
    let out_path: String = args.get("out", "BENCH_alloc.json".to_string());

    banner(
        "Round allocation",
        "incremental (cached RoundContext) vs full-rebuild control rounds",
    );

    if args.flag("smoke") {
        std::process::exit(smoke());
    }

    let mut table = Table::new(vec![
        "Servers",
        "Nodes",
        "Incr rounds/s",
        "Full rounds/s",
        "Speedup",
        "Allocs/round",
    ]);
    let mut samples = Vec::new();
    for (racks, rpp, cdus, spr) in [(8, 2, 2, 16), (32, 4, 4, 32), (128, 8, 8, 32)] {
        let s = measure(racks, rpp, cdus, spr, rounds);
        table.row(vec![
            s.servers.to_string(),
            s.nodes.to_string(),
            format!("{:.1}", s.incremental_rounds_per_sec),
            format!("{:.1}", s.full_rounds_per_sec),
            format!("{:.2}x", s.incremental_rounds_per_sec / s.full_rounds_per_sec),
            format!("{:.1}", s.allocs_per_round),
        ]);
        samples.push(s);
    }
    print!("{}", table.render());
    println!();

    if let Some(bad) = samples.iter().find(|s| s.allocs_per_round > 0.0) {
        eprintln!(
            "note: steady-state rounds allocated ({:.1}/round at {} servers); \
             the hot path is expected to be allocation-free once warm.",
            bad.allocs_per_round, bad.servers
        );
    }

    let json = render_json(&samples);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
