//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the tiny bits they share (CLI parsing, headers).
//! Performance benchmarks live in `benches/` (criterion).

#![warn(missing_docs)]

use std::env;

/// Simple `--key value` / `--flag` argument access for experiment
/// binaries (no external CLI dependency needed for fixed harnesses).
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Args {
            raw: env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Whether `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.iter().any(|a| a == &key)
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let key = format!("--{name}");
        for pair in self.raw.windows(2) {
            if pair[0] == key {
                return pair[1]
                    .parse()
                    .unwrap_or_else(|e| panic!("invalid value for {key}: {e}"));
            }
        }
        default
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("== CapMaestro reproduction: {id} ==");
    println!("   {what}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_and_values() {
        let args = Args::from_vec(vec![
            "--quick".into(),
            "--trials".into(),
            "500".into(),
        ]);
        assert!(args.flag("quick"));
        assert!(!args.flag("full"));
        assert_eq!(args.get("trials", 100usize), 500);
        assert_eq!(args.get("reps", 3usize), 3);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        let args = Args::from_vec(vec!["--trials".into(), "abc".into()]);
        let _ = args.get("trials", 1usize);
    }
}
