//! Performance benchmarks backing the paper's §5 overhead and scalability
//! analysis:
//!
//! - rack-level budgeting "completes in ~10 ms" and room-level budgeting
//!   for 500 racks in "well under 300 ms" — `gather_budget/*` measures the
//!   full metrics-gather + budget-down pass at growing scale;
//! - the per-server capping controller and demand estimator are in the
//!   per-second path — `controller_step` and `estimator_*` measure them;
//! - one Monte-Carlo capacity trial bounds the planner's cost —
//!   `capacity_trial`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use capmaestro_core::capping::CappingController;
use capmaestro_core::estimator::DemandEstimator;
use capmaestro_core::policy::{GlobalPriority, LocalPriority, NoPriority, PolicyKind};
use capmaestro_core::tree::{ControlTree, SupplyInput};
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_topology::{
    ControlTreeSpec, FeedId, Phase, Priority, ServerId, SpecLeaf, SpecNode, SupplyIndex,
};
use capmaestro_units::{Ratio, Watts};

/// Builds a synthetic control tree: root → `racks` rack nodes →
/// `servers_per_rack` leaves each, with alternating priorities.
fn synthetic_tree(racks: usize, servers_per_rack: usize) -> ControlTree {
    let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
    let root = spec.push_node(SpecNode {
        name: "room".into(),
        limit: Some(Watts::from_kilowatts(700.0)),
        parent: None,
        children: vec![],
        leaf: None,
    });
    let mut server = 0u32;
    for r in 0..racks {
        let rack = spec.push_node(SpecNode {
            name: format!("rack{r}"),
            limit: Some(Watts::from_kilowatts(6.9)),
            parent: Some(root),
            children: vec![],
            leaf: None,
        });
        spec.node_mut(root).children.push(rack);
        for s in 0..servers_per_rack {
            let leaf = spec.push_node(SpecNode {
                name: format!("r{r}s{s}"),
                limit: None,
                parent: Some(rack),
                children: vec![],
                leaf: Some(SpecLeaf {
                    server: ServerId(server),
                    supply: SupplyIndex::FIRST,
                    priority: if server % 10 < 3 {
                        Priority::HIGH
                    } else {
                        Priority::LOW
                    },
                }),
            });
            spec.node_mut(rack).children.push(leaf);
            server += 1;
        }
    }
    ControlTree::with_uniform(
        spec,
        SupplyInput {
            demand: Watts::new(430.0),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
        },
    )
}

fn bench_gather_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_budget");
    group.sample_size(10);
    for racks in [1usize, 10, 100, 500] {
        let tree = synthetic_tree(racks, 45);
        let budget = Watts::from_kilowatts((racks * 14) as f64);
        group.bench_with_input(
            BenchmarkId::new("global_priority", racks * 45),
            &tree,
            |b, tree| {
                b.iter(|| {
                    black_box(tree.allocate(black_box(budget), &GlobalPriority::new()))
                })
            },
        );
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_comparison");
    let tree = synthetic_tree(45, 45); // ~2k servers, a large feed phase
    let budget = Watts::from_kilowatts(600.0);
    group.sample_size(20);
    group.bench_function("no_priority", |b| {
        b.iter(|| black_box(tree.allocate(budget, &NoPriority::new())))
    });
    group.bench_function("local_priority", |b| {
        b.iter(|| black_box(tree.allocate(budget, &LocalPriority::new())))
    });
    group.bench_function("global_priority", |b| {
        b.iter(|| black_box(tree.allocate(budget, &GlobalPriority::new())))
    });
    group.finish();
}

fn bench_controller_step(c: &mut Criterion) {
    c.bench_function("controller_step", |b| {
        let mut ctl =
            CappingController::new(Watts::new(270.0), Watts::new(490.0), Ratio::new(0.94));
        let budgets = [Watts::new(280.0), Watts::new(200.0)];
        let measured = [Watts::new(250.0), Watts::new(230.0)];
        b.iter(|| black_box(ctl.update(black_box(&budgets), black_box(&measured))))
    });
}

fn bench_estimator(c: &mut Criterion) {
    c.bench_function("estimator_push_estimate", |b| {
        let mut est = DemandEstimator::new();
        let mut t = 0u32;
        b.iter(|| {
            let throttle = Ratio::new(0.1 + 0.4 * ((t % 16) as f64 / 16.0));
            est.push(throttle, Watts::new(430.0 - 270.0 * throttle.as_f64()));
            t += 1;
            black_box(est.estimate())
        })
    });
}

fn bench_capacity_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity");
    group.sample_size(10);
    group.bench_function("worst_case_point_24pr", |b| {
        let config = CapacityConfig {
            worst_trials: 1,
            ..CapacityConfig::default()
        };
        let planner = CapacityPlanner::new(config);
        b.iter(|| {
            black_box(planner.evaluate(24, PolicyKind::GlobalPriority, Condition::WorstCase))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gather_budget,
    bench_policies,
    bench_controller_step,
    bench_estimator,
    bench_capacity_trial
);
criterion_main!(benches);
