//! Struct-of-arrays server storage for fleet-scale stepping.
//!
//! [`ServerSlab`] holds the state of every server in a farm as parallel
//! lanes (one `Vec` per field) instead of a map of [`Server`] structs.
//! Three things fall out of that layout:
//!
//! - **Cache-friendly sweeps.** Stepping touches `achieved_ac`,
//!   `offered_ac`, and the node-manager lane contiguously instead of
//!   chasing one heap allocation per server.
//! - **Event-driven stepping.** Two bitmaps track per-server state: an
//!   *active* bit (the server has not yet reached the exact `f64` fixed
//!   point of its first-order settling filter) and a *snap-ok* bit (the
//!   cached [`SensorSnapshot`] matches the current state). A quiescent
//!   server — unchanged demand, cap, supply split, and power state —
//!   costs zero arithmetic per tick; only its bitmap word is scanned.
//!   Skipping is *bitwise exact*: the active bit is cleared only when
//!   `approach(cur, target, dt)` returns `cur` bit-for-bit, and any
//!   mutation that could move the target sets the bit again.
//! - **Word-aligned sharding.** [`ServerSlab::shards_mut`] splits the
//!   lanes at 64-server boundaries into independent [`SlabShard`]s, so
//!   worker threads never write the same bitmap word and the parallel
//!   step is race-free by construction (and bitwise identical to the
//!   sequential sweep, because every server's update is independent).
//!
//! The per-server arithmetic is shared with [`Server`] via
//! `server::physics`, which is what makes the slab path provably
//! bitwise-identical to the reference path rather than merely close.
//!
//! Accessor ergonomics are preserved through the [`ServerRef`] /
//! [`ServerMut`] views, which mirror the [`Server`] method surface.
//! Every mutator on [`ServerMut`] compares the new value against the old
//! one and dirties the server only on a real change — this is what lets a
//! converged fleet stay quiescent while the control plane re-commands the
//! same caps round after round.

use capmaestro_units::{Ratio, Seconds, Watts};

use crate::node_manager::NodeManager;
use crate::psu::PsuBank;
use crate::server::{physics, SensorSnapshot, Server, ServerConfig};

const WORD_BITS: usize = 64;

fn set_bit(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
}

fn clear_bit(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
}

fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
}

/// The valid-lane mask for a word covering `count` populated lanes.
fn word_mask(count: usize) -> u64 {
    if count >= WORD_BITS {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Struct-of-arrays storage for a fleet of servers (see the module docs).
///
/// Index-addressed: the owner (the farm) maps stable server identities to
/// slot indices. Slots keep their index for the lifetime of the slab
/// except across [`ServerSlab::insert`], which shifts later slots up by
/// one (construction-time only).
#[derive(Debug, Clone)]
pub struct ServerSlab {
    configs: Vec<ServerConfig>,
    banks: Vec<PsuBank>,
    node_managers: Vec<NodeManager>,
    offered_ac: Vec<Watts>,
    achieved_ac: Vec<Watts>,
    powered: Vec<bool>,
    /// Bit i set ⇔ server i may still move on the next step.
    active: Vec<u64>,
    /// Bit i set ⇔ `snaps[i]` reflects the current server state.
    snap_ok: Vec<u64>,
    /// Cached sensor readings, refreshed lazily (see `refresh` on shards).
    snaps: Vec<SensorSnapshot>,
    /// Generation at which each cached snapshot last changed.
    changed_gen: Vec<u64>,
    /// Monotone refresh generation (bumped by [`ServerSlab::begin_refresh`]).
    generation: u64,
    /// Bumped whenever slots are added or shifted.
    layout_gen: u64,
    /// The `dt` of the last step; a different `dt` re-activates everything
    /// (the fixed point of the settling filter is only stable for a
    /// constant `dt`).
    last_dt: f64,
    event_driven: bool,
}

impl Default for ServerSlab {
    fn default() -> Self {
        ServerSlab::new()
    }
}

impl ServerSlab {
    /// Creates an empty slab with event-driven stepping enabled.
    pub fn new() -> Self {
        ServerSlab {
            configs: Vec::new(),
            banks: Vec::new(),
            node_managers: Vec::new(),
            offered_ac: Vec::new(),
            achieved_ac: Vec::new(),
            powered: Vec::new(),
            active: Vec::new(),
            snap_ok: Vec::new(),
            snaps: Vec::new(),
            changed_gen: Vec::new(),
            generation: 1,
            layout_gen: 1,
            last_dt: f64::NAN,
            event_driven: true,
        }
    }

    /// Number of servers stored.
    pub fn len(&self) -> usize {
        self.offered_ac.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.offered_ac.is_empty()
    }

    /// Enables or disables event-driven stepping. When disabled every
    /// server is stepped every tick (the sequential full-rebuild reference
    /// path); the dirty bitmaps are still maintained, so re-enabling is
    /// safe at any time. State trajectories are bitwise identical either
    /// way — that is what the differential tests assert.
    pub fn set_event_driven(&mut self, enabled: bool) {
        self.event_driven = enabled;
    }

    /// Whether event-driven stepping is enabled.
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// The current refresh generation (see [`ServerSlab::changed_since`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The layout generation, bumped whenever slot indices shift.
    pub fn layout_generation(&self) -> u64 {
        self.layout_gen
    }

    /// Whether slot `idx`'s cached snapshot changed after generation `gen`.
    pub fn changed_since(&self, idx: usize, gen: u64) -> bool {
        self.changed_gen[idx] > gen
    }

    /// The cached snapshot of slot `idx`. Only meaningful after a refresh
    /// pass; use [`ServerRef::sense`] for an always-correct reading.
    pub fn snapshot(&self, idx: usize) -> &SensorSnapshot {
        &self.snaps[idx]
    }

    /// Appends a server, returning its slot index.
    pub fn push(&mut self, server: Server) -> usize {
        let idx = self.len();
        self.insert(idx, server);
        idx
    }

    /// Inserts a server at `pos`, shifting later slots up by one.
    /// Construction-time only: cost is O(n) and every cached snapshot is
    /// invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `pos > len()`.
    pub fn insert(&mut self, pos: usize, server: Server) {
        let (config, bank, node_manager, offered, achieved, powered) =
            server.into_parts();
        self.configs.insert(pos, config);
        self.banks.insert(pos, bank);
        self.node_managers.insert(pos, node_manager);
        self.offered_ac.insert(pos, offered);
        self.achieved_ac.insert(pos, achieved);
        self.powered.insert(pos, powered);
        self.snaps.insert(pos, SensorSnapshot::empty());
        self.changed_gen.insert(pos, 0);
        // Later bits shifted: rebuild the bitmaps conservatively.
        let words = self.len().div_ceil(WORD_BITS);
        self.active.clear();
        self.active.resize(words, 0);
        self.snap_ok.clear();
        self.snap_ok.resize(words, 0);
        self.mark_all_active();
        self.changed_gen.iter_mut().for_each(|g| *g = 0);
        self.layout_gen += 1;
    }

    /// Replaces the server at `pos`, keeping slot indices stable.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn replace(&mut self, pos: usize, server: Server) {
        let (config, bank, node_manager, offered, achieved, powered) =
            server.into_parts();
        self.configs[pos] = config;
        self.banks[pos] = bank;
        self.node_managers[pos] = node_manager;
        self.offered_ac[pos] = offered;
        self.achieved_ac[pos] = achieved;
        self.powered[pos] = powered;
        self.touch(pos);
    }

    /// Borrows slot `idx` as a read view.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view(&self, idx: usize) -> ServerRef<'_> {
        assert!(idx < self.len(), "slab slot {idx} out of range");
        ServerRef { slab: self, idx }
    }

    /// Borrows slot `idx` as a mutable view.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn view_mut(&mut self, idx: usize) -> ServerMut<'_> {
        assert!(idx < self.len(), "slab slot {idx} out of range");
        ServerMut { slab: self, idx }
    }

    /// Prepares a step pass: a `dt` different from the previous step
    /// re-activates every server (fixed points are only stable under a
    /// constant `dt`).
    pub fn begin_step(&mut self, dt: Seconds) {
        let dt_f = dt.as_f64();
        if self.last_dt.to_bits() != dt_f.to_bits() {
            self.last_dt = dt_f;
            self.mark_all_active();
        }
    }

    /// Prepares a snapshot-refresh pass: bumps the refresh generation that
    /// freshly refreshed snapshots are stamped with.
    pub fn begin_refresh(&mut self) {
        self.generation += 1;
    }

    /// Splits the slab into at most `max_shards` independent mutable
    /// shards at 64-server boundaries, so no two shards share a bitmap
    /// word. Run [`SlabShard::step`] / [`SlabShard::refresh`] on each —
    /// sequentially or from one thread per shard; results are identical.
    pub fn shards_mut(&mut self, max_shards: usize) -> Vec<SlabShard<'_>> {
        let n = self.len();
        let words = self.active.len();
        let shard_count = max_shards.clamp(1, words.max(1));
        let chunk_words = words.div_ceil(shard_count).max(1);

        let event_driven = self.event_driven;
        let generation = self.generation;
        let configs: &[ServerConfig] = &self.configs;
        let banks: &[PsuBank] = &self.banks;
        let node_managers: &[NodeManager] = &self.node_managers;
        let offered_ac: &[Watts] = &self.offered_ac;
        let powered: &[bool] = &self.powered;

        let mut achieved: &mut [Watts] = &mut self.achieved_ac;
        let mut snaps: &mut [SensorSnapshot] = &mut self.snaps;
        let mut gens: &mut [u64] = &mut self.changed_gen;
        let mut active: &mut [u64] = &mut self.active;
        let mut snap_ok: &mut [u64] = &mut self.snap_ok;

        let mut shards = Vec::with_capacity(shard_count);
        let mut lo = 0usize;
        while lo < n {
            let take_words = active.len().min(chunk_words);
            let take = (take_words * WORD_BITS).min(n - lo);
            let (a, rest) = achieved.split_at_mut(take);
            achieved = rest;
            let (s, rest) = snaps.split_at_mut(take);
            snaps = rest;
            let (g, rest) = gens.split_at_mut(take);
            gens = rest;
            let (aw, rest) = active.split_at_mut(take_words);
            active = rest;
            let (ow, rest) = snap_ok.split_at_mut(take_words);
            snap_ok = rest;
            shards.push(SlabShard {
                lo,
                configs,
                banks,
                node_managers,
                offered_ac,
                powered,
                achieved_ac: a,
                snaps: s,
                changed_gen: g,
                active: aw,
                snap_ok: ow,
                event_driven,
                generation,
            });
            lo += take;
        }
        shards
    }

    /// The whole slab as a single shard, built on the stack — the
    /// allocation-free equivalent of `shards_mut(1)` for single-threaded
    /// hot paths (the shard struct only borrows lane slices).
    pub fn full_shard(&mut self) -> SlabShard<'_> {
        SlabShard {
            lo: 0,
            configs: &self.configs,
            banks: &self.banks,
            node_managers: &self.node_managers,
            offered_ac: &self.offered_ac,
            powered: &self.powered,
            achieved_ac: &mut self.achieved_ac,
            snaps: &mut self.snaps,
            changed_gen: &mut self.changed_gen,
            active: &mut self.active,
            snap_ok: &mut self.snap_ok,
            event_driven: self.event_driven,
            generation: self.generation,
        }
    }

    fn mark_all_active(&mut self) {
        let n = self.len();
        for (wi, word) in self.active.iter_mut().enumerate() {
            *word = word_mask(n - (wi * WORD_BITS).min(n));
        }
    }

    /// Marks slot `i` as needing a step and invalidates its cached
    /// snapshot.
    fn touch(&mut self, i: usize) {
        set_bit(&mut self.active, i);
        clear_bit(&mut self.snap_ok, i);
    }

    fn set_offered_demand(&mut self, i: usize, demand: Watts) {
        let v = physics::clamp_demand(self.configs[i].model(), demand);
        if v.as_f64().to_bits() != self.offered_ac[i].as_f64().to_bits() {
            self.offered_ac[i] = v;
            self.touch(i);
        }
    }

    fn set_utilization(&mut self, i: usize, u: Ratio) {
        let v = self.configs[i].model().power_at_utilization(u);
        if v.as_f64().to_bits() != self.offered_ac[i].as_f64().to_bits() {
            self.offered_ac[i] = v;
            self.touch(i);
        }
    }

    fn set_dc_cap(&mut self, i: usize, cap: Watts) {
        let cur = self.node_managers[i].dc_cap();
        if cur.map(|w| w.as_f64().to_bits()) != Some(cap.as_f64().to_bits()) {
            self.node_managers[i].set_dc_cap(cap);
            self.touch(i);
        }
    }

    fn clear_dc_cap(&mut self, i: usize) {
        if self.node_managers[i].dc_cap().is_some() {
            self.node_managers[i].clear_cap();
            self.touch(i);
        }
    }

    fn set_powered(&mut self, i: usize, powered: bool) {
        let old_powered = self.powered[i];
        let old_achieved = self.achieved_ac[i];
        self.powered[i] = powered;
        if !powered {
            self.achieved_ac[i] = Watts::ZERO;
        } else if self.achieved_ac[i] < self.configs[i].model().idle() {
            self.achieved_ac[i] = self.configs[i].model().idle();
        }
        let changed = old_powered != powered
            || old_achieved.as_f64().to_bits()
                != self.achieved_ac[i].as_f64().to_bits();
        if changed {
            self.touch(i);
        }
    }

    fn settle(&mut self, i: usize) {
        let target = if self.powered[i] {
            physics::target_ac(
                self.configs[i].model(),
                &self.node_managers[i],
                &self.banks[i],
                self.offered_ac[i],
            )
        } else {
            Watts::ZERO
        };
        if target.as_f64().to_bits() != self.achieved_ac[i].as_f64().to_bits() {
            self.achieved_ac[i] = target;
            self.touch(i);
        }
    }

    fn bank_mut(&mut self, i: usize) -> &mut PsuBank {
        // Conservative: any bank mutation may move the target and changes
        // the sensed per-supply loads.
        self.touch(i);
        &mut self.banks[i]
    }
}

/// One word-aligned mutable shard of a [`ServerSlab`] (see
/// [`ServerSlab::shards_mut`]). Immutable lanes are full-slab slices
/// indexed globally; mutable lanes cover only this shard's slot range.
#[derive(Debug)]
pub struct SlabShard<'a> {
    /// First global slot index covered (a multiple of 64).
    lo: usize,
    configs: &'a [ServerConfig],
    banks: &'a [PsuBank],
    node_managers: &'a [NodeManager],
    offered_ac: &'a [Watts],
    powered: &'a [bool],
    achieved_ac: &'a mut [Watts],
    snaps: &'a mut [SensorSnapshot],
    changed_gen: &'a mut [u64],
    active: &'a mut [u64],
    snap_ok: &'a mut [u64],
    event_driven: bool,
    generation: u64,
}

impl SlabShard<'_> {
    /// Steps every active server in this shard by `dt` (every server when
    /// event-driven stepping is off). A server whose achieved power lands
    /// bit-identical to its previous value has reached the settling
    /// filter's fixed point and is deactivated; one whose power moved has
    /// its cached snapshot invalidated.
    pub fn step(&mut self, dt: Seconds) {
        let n = self.achieved_ac.len();
        for wi in 0..self.active.len() {
            let lane_base = wi * WORD_BITS;
            let valid = word_mask(n - lane_base.min(n));
            let mut pending = if self.event_driven {
                self.active[wi] & valid
            } else {
                valid
            };
            while pending != 0 {
                let b = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let l = lane_base + b;
                let g = self.lo + l;
                let cur = self.achieved_ac[l];
                let next = if !self.powered[g] {
                    Watts::ZERO
                } else {
                    let target = physics::target_ac(
                        self.configs[g].model(),
                        &self.node_managers[g],
                        &self.banks[g],
                        self.offered_ac[g],
                    );
                    self.node_managers[g].approach(cur, target, dt)
                };
                if next.as_f64().to_bits() == cur.as_f64().to_bits() {
                    self.active[wi] &= !(1u64 << b);
                } else {
                    self.achieved_ac[l] = next;
                    self.snap_ok[wi] &= !(1u64 << b);
                }
            }
        }
    }

    /// Recomputes every stale cached snapshot in this shard in place
    /// (reusing each snapshot's `supply_ac` allocation) and stamps it with
    /// the current refresh generation.
    pub fn refresh(&mut self) {
        let n = self.achieved_ac.len();
        for wi in 0..self.snap_ok.len() {
            let lane_base = wi * WORD_BITS;
            let valid = word_mask(n - lane_base.min(n));
            let mut stale = !self.snap_ok[wi] & valid;
            self.snap_ok[wi] |= stale;
            while stale != 0 {
                let b = stale.trailing_zeros() as usize;
                stale &= stale - 1;
                let l = lane_base + b;
                let g = self.lo + l;
                physics::sense_into(
                    self.configs[g].model(),
                    &self.banks[g],
                    self.offered_ac[g],
                    self.achieved_ac[l],
                    &mut self.snaps[l],
                );
                self.changed_gen[l] = self.generation;
            }
        }
    }
}

/// A read-only view of one slab slot, mirroring the [`Server`] accessor
/// surface. `Copy`, so it can be passed around like `&Server` was.
#[derive(Debug, Clone, Copy)]
pub struct ServerRef<'a> {
    slab: &'a ServerSlab,
    idx: usize,
}

impl<'a> ServerRef<'a> {
    /// The static configuration.
    pub fn config(self) -> &'a ServerConfig {
        &self.slab.configs[self.idx]
    }

    /// The live PSU bank (supplies may have failed or stood by since
    /// construction).
    pub fn bank(self) -> &'a PsuBank {
        &self.slab.banks[self.idx]
    }

    /// The current offered AC demand.
    pub fn offered_demand(self) -> Watts {
        self.slab.offered_ac[self.idx]
    }

    /// The smoothed achieved AC power at the wall.
    pub fn achieved_ac(self) -> Watts {
        self.slab.achieved_ac[self.idx]
    }

    /// The commanded DC cap, if any.
    pub fn dc_cap(self) -> Option<Watts> {
        self.slab.node_managers[self.idx].dc_cap()
    }

    /// Whether the server currently has input power.
    pub fn is_powered(self) -> bool {
        self.slab.powered[self.idx]
    }

    /// The lowest AC power throttling can reach for a given offered
    /// demand (see [`Server::min_achievable_ac`]).
    pub fn min_achievable_ac(self, demand: Watts) -> Watts {
        physics::min_achievable_ac(self.config().model(), demand)
    }

    /// Reads the sensors. Returns the cached snapshot when it is current;
    /// recomputes (bitwise-identically) otherwise.
    pub fn sense(self) -> SensorSnapshot {
        if get_bit(&self.slab.snap_ok, self.idx) {
            self.slab.snaps[self.idx].clone()
        } else {
            let mut snap = SensorSnapshot::empty();
            physics::sense_into(
                self.config().model(),
                self.bank(),
                self.offered_demand(),
                self.achieved_ac(),
                &mut snap,
            );
            snap
        }
    }

    /// The power-cap throttling level (see [`Server::throttle`]).
    pub fn throttle(self) -> Ratio {
        physics::throttle(
            self.config().model(),
            self.offered_demand(),
            self.achieved_ac(),
        )
    }

    /// Achieved application performance as a fraction of uncapped
    /// performance (see [`Server::performance_fraction`]).
    pub fn performance_fraction(self) -> Ratio {
        self.config()
            .model()
            .performance_at_dynamic_ratio(self.throttle().complement())
    }
}

/// A mutable view of one slab slot, mirroring the [`Server`] mutator
/// surface. Every mutator compares against the current value and dirties
/// the slot only on a real change, so re-commanding an unchanged cap or
/// demand keeps the server quiescent.
#[derive(Debug)]
pub struct ServerMut<'a> {
    slab: &'a mut ServerSlab,
    idx: usize,
}

impl ServerMut<'_> {
    /// Reborrows as a read view.
    pub fn as_ref(&self) -> ServerRef<'_> {
        ServerRef {
            slab: self.slab,
            idx: self.idx,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.slab.configs[self.idx]
    }

    /// The live PSU bank.
    pub fn bank(&self) -> &PsuBank {
        &self.slab.banks[self.idx]
    }

    /// Mutable access to the PSU bank for failure injection.
    /// Conservatively dirties the server: any bank change may move its
    /// settling target and its sensed per-supply loads.
    pub fn bank_mut(&mut self) -> &mut PsuBank {
        self.slab.bank_mut(self.idx)
    }

    /// The current offered AC demand.
    pub fn offered_demand(&self) -> Watts {
        self.slab.offered_ac[self.idx]
    }

    /// The smoothed achieved AC power at the wall.
    pub fn achieved_ac(&self) -> Watts {
        self.slab.achieved_ac[self.idx]
    }

    /// The commanded DC cap, if any.
    pub fn dc_cap(&self) -> Option<Watts> {
        self.slab.node_managers[self.idx].dc_cap()
    }

    /// Whether the server currently has input power.
    pub fn is_powered(&self) -> bool {
        self.slab.powered[self.idx]
    }

    /// Reads the sensors (see [`ServerRef::sense`]).
    pub fn sense(&self) -> SensorSnapshot {
        self.as_ref().sense()
    }

    /// The power-cap throttling level.
    pub fn throttle(&self) -> Ratio {
        self.as_ref().throttle()
    }

    /// Achieved application performance as a fraction of uncapped
    /// performance.
    pub fn performance_fraction(&self) -> Ratio {
        self.as_ref().performance_fraction()
    }

    /// The lowest AC power throttling can reach for a given offered
    /// demand.
    pub fn min_achievable_ac(&self, demand: Watts) -> Watts {
        self.as_ref().min_achievable_ac(demand)
    }

    /// Sets the offered AC power demand, clamped into the model envelope
    /// (see [`Server::set_offered_demand`]).
    pub fn set_offered_demand(&mut self, demand: Watts) {
        self.slab.set_offered_demand(self.idx, demand);
    }

    /// Sets the offered demand from a CPU utilization via the power curve.
    pub fn set_utilization(&mut self, u: Ratio) {
        self.slab.set_utilization(self.idx, u);
    }

    /// Commands a DC power cap (see [`Server::set_dc_cap`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive.
    pub fn set_dc_cap(&mut self, cap: Watts) {
        self.slab.set_dc_cap(self.idx, cap);
    }

    /// Removes the DC cap.
    pub fn clear_dc_cap(&mut self) {
        self.slab.clear_dc_cap(self.idx);
    }

    /// Connects or disconnects input power entirely (see
    /// [`Server::set_powered`]).
    pub fn set_powered(&mut self, powered: bool) {
        self.slab.set_powered(self.idx, powered);
    }

    /// Instantly settles the server at its target power (see
    /// [`Server::settle`]).
    pub fn settle(&mut self) {
        self.slab.settle(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    fn slab_of(n: usize) -> ServerSlab {
        let mut slab = ServerSlab::new();
        for i in 0..n {
            let mut server = Server::new(ServerConfig::paper_default());
            server.set_offered_demand(Watts::new(200.0 + i as f64));
            slab.push(server);
        }
        slab
    }

    fn step_seq(slab: &mut ServerSlab, dt: Seconds) {
        slab.begin_step(dt);
        for shard in &mut slab.shards_mut(1) {
            shard.step(dt);
        }
    }

    #[test]
    fn slab_step_matches_server_step_bitwise() {
        let mut reference: Vec<Server> = (0..130)
            .map(|i| {
                let mut s = Server::new(ServerConfig::paper_default());
                s.set_offered_demand(Watts::new(180.0 + i as f64 * 2.0));
                if i % 3 == 0 {
                    s.set_dc_cap(Watts::new(190.0));
                }
                s
            })
            .collect();
        let mut slab = ServerSlab::new();
        for s in &reference {
            slab.push(s.clone());
        }
        let dt = Seconds::new(1.0);
        for _ in 0..40 {
            for s in &mut reference {
                s.step(dt);
            }
            step_seq(&mut slab, dt);
            for (i, s) in reference.iter().enumerate() {
                assert_eq!(
                    slab.view(i).achieved_ac().as_f64().to_bits(),
                    s.sense().total_ac.as_f64().to_bits(),
                );
            }
        }
    }

    #[test]
    fn converged_servers_deactivate_and_mutations_reactivate() {
        let mut slab = slab_of(70);
        let dt = Seconds::new(1.0);
        // Step to the fixed point: every server must eventually deactivate.
        for _ in 0..200 {
            step_seq(&mut slab, dt);
        }
        assert!(slab.active.iter().all(|&w| w == 0), "fleet not quiescent");
        // Re-commanding identical state keeps it quiescent.
        let same = slab.view(3).offered_demand();
        slab.view_mut(3).set_offered_demand(same);
        assert!(slab.active.iter().all(|&w| w == 0));
        // A real change re-activates exactly that server.
        slab.view_mut(69).set_offered_demand(Watts::new(400.0));
        assert!(get_bit(&slab.active, 69));
        assert_eq!(slab.active.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn dt_change_reactivates_everything() {
        let mut slab = slab_of(10);
        for _ in 0..200 {
            step_seq(&mut slab, Seconds::new(1.0));
        }
        assert!(slab.active.iter().all(|&w| w == 0));
        slab.begin_step(Seconds::new(0.5));
        assert_eq!(
            slab.active.iter().map(|w| w.count_ones()).sum::<u32>() as usize,
            slab.len()
        );
    }

    #[test]
    fn sharded_step_matches_sequential_bitwise() {
        let dt = Seconds::new(1.0);
        let mut seq = slab_of(333);
        let mut sharded = seq.clone();
        for round in 0..30 {
            if round == 10 {
                // Dirty a previously-quiescent server mid-run.
                seq.view_mut(100).set_dc_cap(Watts::new(180.0));
                sharded.view_mut(100).set_dc_cap(Watts::new(180.0));
            }
            step_seq(&mut seq, dt);
            sharded.begin_step(dt);
            for shard in &mut sharded.shards_mut(4) {
                shard.step(dt);
            }
            for i in 0..seq.len() {
                assert_eq!(
                    seq.view(i).achieved_ac().as_f64().to_bits(),
                    sharded.view(i).achieved_ac().as_f64().to_bits()
                );
            }
            assert_eq!(seq.active, sharded.active);
        }
    }

    #[test]
    fn cached_sense_matches_fresh_sense() {
        let mut slab = slab_of(67);
        let dt = Seconds::new(1.0);
        slab.begin_step(dt);
        slab.begin_refresh();
        for shard in &mut slab.shards_mut(2) {
            shard.step(dt);
            shard.refresh();
        }
        for i in 0..slab.len() {
            let cached = slab.view(i).sense();
            // Recompute from scratch through the Server reference path.
            let mut server = Server::new(slab.view(i).config().clone());
            server.set_offered_demand(slab.view(i).offered_demand());
            server.settle();
            // Only compare structure here; exact equality is covered by
            // the step-identity test plus shared sense arithmetic.
            assert_eq!(cached.supply_ac.len(), server.sense().supply_ac.len());
            assert_eq!(
                cached.total_ac.as_f64().to_bits(),
                slab.view(i).achieved_ac().as_f64().to_bits()
            );
        }
    }
}
