//! Server power substrate for CapMaestro.
//!
//! Models everything the CapMaestro controllers observe and actuate on a
//! physical server (paper §2.2, §3.1, §5):
//!
//! - [`PowerSupply`] / [`PsuBank`] — redundant power supplies with an
//!   *intrinsic, unequal* load split (the paper measures up to 15 % mismatch
//!   between the two supplies of a dual-corded server), AC↔DC conversion
//!   efficiency, standby mode, and failure states;
//! - [`ServerPowerModel`] — the idle/Pcap_min/Pcap_max power envelope and
//!   the Fan et al. utilization→power curve the paper's simulations use;
//! - [`NodeManager`] — an Intel-Node-Manager-like actuator that enforces a
//!   DC power cap by voltage/frequency throttling, settling within ~6 s,
//!   and reports its *power-cap throttling level*;
//! - [`Server`] — the assembled device: workload demand in, per-supply AC
//!   sensor readings and throttle telemetry out.
//!
//! # Example
//!
//! ```
//! use capmaestro_server::{Server, ServerConfig};
//! use capmaestro_units::{Seconds, Watts};
//!
//! let mut server = Server::new(ServerConfig::paper_default());
//! server.set_offered_demand(Watts::new(430.0));
//! server.set_dc_cap(Watts::new(300.0) * server.config().efficiency());
//! for _ in 0..30 {
//!     server.step(Seconds::new(1.0));
//! }
//! let snap = server.sense();
//! // The cap binds: total AC power is pinned near 300 W, below demand.
//! assert!(snap.total_ac < Watts::new(310.0));
//! assert!(snap.throttle.as_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod node_manager;
pub mod partitions;
pub mod power_model;
pub mod psu;
mod server;
#[deny(clippy::large_stack_arrays, clippy::needless_collect)]
pub mod slab;
pub mod telemetry;

pub use node_manager::NodeManager;
pub use partitions::{PartitionSet, VirtualPartition};
pub use power_model::{PowerCurve, ServerPowerModel};
pub use psu::{PowerSupply, PsuBank, SupplyState};
pub use server::{SensorSnapshot, Server, ServerConfig};
pub use slab::{ServerMut, ServerRef, ServerSlab, SlabShard};
pub use telemetry::{CleanSensePath, SenseInterposer};
