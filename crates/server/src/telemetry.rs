//! The sense-path interposition hook.
//!
//! CapMaestro's safety argument (paper §4.2–§4.3) assumes the control
//! plane reacts correctly when sensing misbehaves: IPMI reads get dropped,
//! sensors stick or go noisy, controller VMs crash. Everything the control
//! plane *sees* flows through [`Server::sense`](crate::Server::sense) —
//! so a fault-injection layer only needs one seam: a [`SenseInterposer`]
//! sits between the raw sensor reading and its delivery to the consumer,
//! and may pass it through, corrupt it, or suppress it entirely.
//!
//! The physics is never touched: an interposer corrupts what the control
//! plane believes, not what the wires carry. The simulation crate's
//! `faults` module provides the fault-injecting implementation; this crate
//! only defines the seam (plus [`CleanSensePath`], the identity
//! interposer) so that the server crate stays dependency-free.

use capmaestro_topology::ServerId;
use capmaestro_units::Watts;

use crate::server::SensorSnapshot;

/// Interposes on the path between a server's sensors and whoever reads
/// them. Implementations may return the reading unchanged, return a
/// corrupted copy, or return `None` to model a dropped reading (the
/// consumer sees nothing this second).
pub trait SenseInterposer {
    /// Filters one sensor reading taken at simulation second `now_s`.
    fn intercept(
        &mut self,
        now_s: u64,
        server: ServerId,
        raw: SensorSnapshot,
    ) -> Option<SensorSnapshot>;
}

/// The identity interposer: every reading is delivered unchanged. Useful
/// as a default and for differential tests that prove an empty fault layer
/// is a true no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanSensePath;

impl SenseInterposer for CleanSensePath {
    fn intercept(
        &mut self,
        _now_s: u64,
        _server: ServerId,
        raw: SensorSnapshot,
    ) -> Option<SensorSnapshot> {
        Some(raw)
    }
}

impl SensorSnapshot {
    /// A copy of this reading with every power field scaled by `factor`
    /// (throttle is left alone — it is a ratio, not a power). The building
    /// block for spike and gain faults.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> SensorSnapshot {
        SensorSnapshot {
            supply_ac: self.supply_ac.iter().map(|&w| w * factor).collect(),
            total_ac: self.total_ac * factor,
            dc_power: self.dc_power * factor,
            throttle: self.throttle,
        }
    }

    /// A copy of this reading with `delta` watts added to every power
    /// field (the per-supply values each absorb a share-proportional part
    /// so the reading stays internally consistent). The building block for
    /// additive Gaussian sensor noise.
    #[must_use]
    pub fn offset(&self, delta: Watts) -> SensorSnapshot {
        let total = self.total_ac.as_f64();
        let supply_ac = if total.abs() > f64::EPSILON {
            self.supply_ac
                .iter()
                .map(|&w| w + delta * (w.as_f64() / total))
                .collect()
        } else {
            self.supply_ac.clone()
        };
        SensorSnapshot {
            supply_ac,
            total_ac: self.total_ac + delta,
            dc_power: self.dc_power + delta,
            throttle: self.throttle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ServerConfig};

    #[test]
    fn clean_path_is_identity() {
        let mut server = Server::new(ServerConfig::paper_default());
        server.set_offered_demand(Watts::new(430.0));
        server.settle();
        let raw = server.sense();
        let mut clean = CleanSensePath;
        let delivered = clean.intercept(0, ServerId(0), raw.clone()).unwrap();
        assert_eq!(delivered, raw);
    }

    #[test]
    fn scaled_multiplies_all_power_fields() {
        let mut server = Server::new(ServerConfig::paper_default().with_split(0.6));
        server.set_offered_demand(Watts::new(400.0));
        server.settle();
        let raw = server.sense();
        let spiked = raw.scaled(2.0);
        assert!((spiked.total_ac.as_f64() - 2.0 * raw.total_ac.as_f64()).abs() < 1e-9);
        for (s, r) in spiked.supply_ac.iter().zip(&raw.supply_ac) {
            assert!((s.as_f64() - 2.0 * r.as_f64()).abs() < 1e-9);
        }
        assert_eq!(spiked.throttle, raw.throttle);
    }

    #[test]
    fn offset_preserves_supply_consistency() {
        let mut server = Server::new(ServerConfig::paper_default().with_split(0.6));
        server.set_offered_demand(Watts::new(400.0));
        server.settle();
        let raw = server.sense();
        let noisy = raw.offset(Watts::new(10.0));
        assert!((noisy.total_ac.as_f64() - raw.total_ac.as_f64() - 10.0).abs() < 1e-9);
        let supply_sum: f64 = noisy.supply_ac.iter().map(|w| w.as_f64()).sum();
        assert!(
            (supply_sum - noisy.total_ac.as_f64()).abs() < 1e-9,
            "per-supply readings must still sum to the total"
        );
    }
}
