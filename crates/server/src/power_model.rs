//! The server power envelope and utilization→power curves.
//!
//! Table 4 fixes the envelope the paper simulates: idle 160 W,
//! `Pcap_min` 270 W, `Pcap_max` 490 W. Power demand as a function of CPU
//! utilization follows the Fan et al. model the paper cites (\[2\]):
//! `P(u) = P_idle + (P_busy − P_idle) · (2u − u^1.4)`.
//!
//! All powers here are **AC at the wall** — the quantity budgets are
//! written in. Conversion to the DC domain the node manager caps happens in
//! [`crate::PsuBank`].

use core::fmt;

use capmaestro_units::{Ratio, Watts};

/// Which utilization→power curve to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerCurve {
    /// Fan et al. \[2\]: `P = idle + (busy − idle)(2u − u^1.4)`. Slightly
    /// super-linear at low utilization, the empirical fit for warehouse
    /// servers. The paper's §6.4 methodology uses this.
    #[default]
    FanEtAl,
    /// Plain linear interpolation `P = idle + (busy − idle)·u`.
    Linear,
}

/// Default DVFS exponent: dynamic power ∝ f·V² with V ∝ f gives a cubic
/// relation between frequency (≈ application performance) and dynamic
/// power. The paper relies on this ("power consumption is linear or
/// superlinear with performance", §6.4): capping dynamic power by 42 %
/// costs only ~18 % throughput, the Fig. 6a measurement.
pub const DEFAULT_PERF_EXPONENT: f64 = 3.0;

/// The power envelope and demand curve of a server model.
///
/// # Examples
///
/// ```
/// use capmaestro_server::ServerPowerModel;
/// use capmaestro_units::{Ratio, Watts};
///
/// let m = ServerPowerModel::paper_default();
/// assert_eq!(m.power_at_utilization(Ratio::ZERO), Watts::new(160.0));
/// assert_eq!(m.power_at_utilization(Ratio::ONE), Watts::new(490.0));
/// assert!(m.power_at_utilization(Ratio::new(0.3)) > Watts::new(160.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerModel {
    idle: Watts,
    cap_min: Watts,
    cap_max: Watts,
    curve: PowerCurve,
    perf_exponent: f64,
}

impl ServerPowerModel {
    /// Creates a model from its envelope.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < idle ≤ cap_min ≤ cap_max`.
    pub fn new(idle: Watts, cap_min: Watts, cap_max: Watts) -> Self {
        assert!(idle > Watts::ZERO, "idle power must be positive");
        assert!(
            idle <= cap_min,
            "idle power {idle} must not exceed Pcap_min {cap_min}"
        );
        assert!(
            cap_min <= cap_max,
            "Pcap_min {cap_min} must not exceed Pcap_max {cap_max}"
        );
        ServerPowerModel {
            idle,
            cap_min,
            cap_max,
            curve: PowerCurve::FanEtAl,
            perf_exponent: DEFAULT_PERF_EXPONENT,
        }
    }

    /// The Table 4 server: idle 160 W, Pcap_min 270 W, Pcap_max 490 W.
    pub fn paper_default() -> Self {
        ServerPowerModel::new(Watts::new(160.0), Watts::new(270.0), Watts::new(490.0))
    }

    /// Selects the utilization→power curve (builder-style).
    #[must_use]
    pub fn with_curve(mut self, curve: PowerCurve) -> Self {
        self.curve = curve;
        self
    }

    /// Sets the DVFS performance exponent (builder-style): dynamic power ∝
    /// performance^exponent. `1.0` makes performance track dynamic power
    /// linearly; the default [`DEFAULT_PERF_EXPONENT`] models cubic f·V²
    /// scaling.
    ///
    /// # Panics
    ///
    /// Panics unless the exponent is ≥ 1 and finite.
    #[must_use]
    pub fn with_perf_exponent(mut self, exponent: f64) -> Self {
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "DVFS exponent must be finite and >= 1, got {exponent}"
        );
        self.perf_exponent = exponent;
        self
    }

    /// The DVFS performance exponent.
    pub fn perf_exponent(self) -> f64 {
        self.perf_exponent
    }

    /// Application performance delivered when throttling leaves `ratio` of
    /// the demanded *dynamic* power: `ratio^(1/exponent)`.
    ///
    /// ```
    /// use capmaestro_server::ServerPowerModel;
    /// use capmaestro_units::Ratio;
    ///
    /// let m = ServerPowerModel::paper_default();
    /// // 58 % of dynamic power still delivers ~83 % throughput (Fig. 6a).
    /// let perf = m.performance_at_dynamic_ratio(Ratio::new(0.577));
    /// assert!((perf.as_f64() - 0.832).abs() < 0.005);
    /// ```
    pub fn performance_at_dynamic_ratio(self, ratio: Ratio) -> Ratio {
        let r = ratio.clamp_fraction().as_f64();
        Ratio::new(r.powf(1.0 / self.perf_exponent))
    }

    /// Power drawn with the CPU idle.
    pub fn idle(self) -> Watts {
        self.idle
    }

    /// The lowest enforceable power cap (`Pcap_min`): power at the lowest
    /// performance state under the most demanding workload.
    pub fn cap_min(self) -> Watts {
        self.cap_min
    }

    /// The highest useful power cap (`Pcap_max`): power at the highest
    /// performance state; budget above this is wasted.
    pub fn cap_max(self) -> Watts {
        self.cap_max
    }

    /// The configured curve.
    pub fn curve(self) -> PowerCurve {
        self.curve
    }

    /// The dynamic range `Pcap_max − idle` that capping can modulate.
    pub fn dynamic_range(self) -> Watts {
        self.cap_max - self.idle
    }

    /// Power demanded at CPU utilization `u` (uncapped, full performance).
    ///
    /// `u` is clamped into `[0, 1]`.
    pub fn power_at_utilization(self, u: Ratio) -> Watts {
        let u = u.clamp_fraction().as_f64();
        let frac = match self.curve {
            PowerCurve::FanEtAl => 2.0 * u - u.powf(1.4),
            PowerCurve::Linear => u,
        };
        self.idle + self.dynamic_range() * frac.clamp(0.0, 1.0)
    }

    /// Inverse of [`ServerPowerModel::power_at_utilization`]: the highest
    /// utilization sustainable at power `p`. Clamps to `[0, 1]` outside the
    /// envelope.
    ///
    /// The Fan et al. curve is strictly increasing on `[0, 1]`, so a short
    /// bisection suffices.
    pub fn utilization_at_power(self, p: Watts) -> Ratio {
        if p <= self.idle {
            return Ratio::ZERO;
        }
        if p >= self.cap_max {
            return Ratio::ONE;
        }
        match self.curve {
            PowerCurve::Linear => Ratio::new((p - self.idle) / self.dynamic_range()),
            PowerCurve::FanEtAl => {
                let (mut lo, mut hi) = (0.0f64, 1.0f64);
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if self.power_at_utilization(Ratio::new(mid)) < p {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                Ratio::new(0.5 * (lo + hi))
            }
        }
    }

    /// The *cap ratio* metric of §6.4: the fraction of dynamic power demand
    /// removed by a budget,
    /// `(demand − budget) / (demand − idle)`, clamped to `[0, 1]`; zero
    /// when the budget covers the demand or there is no dynamic demand.
    pub fn cap_ratio(self, demand: Watts, budget: Watts) -> Ratio {
        let dynamic = demand - self.idle;
        if dynamic <= Watts::ZERO {
            return Ratio::ZERO;
        }
        let shortfall = demand.saturating_sub(budget);
        Ratio::new_clamped(shortfall / dynamic)
    }
}

impl fmt::Display for ServerPowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "server model [idle {:.0}, cap {:.0}–{:.0}]",
            self.idle, self.cap_min, self.cap_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_endpoints() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.idle(), Watts::new(160.0));
        assert_eq!(m.cap_min(), Watts::new(270.0));
        assert_eq!(m.cap_max(), Watts::new(490.0));
        assert_eq!(m.dynamic_range(), Watts::new(330.0));
        assert_eq!(m.power_at_utilization(Ratio::ZERO), Watts::new(160.0));
        assert_eq!(m.power_at_utilization(Ratio::ONE), Watts::new(490.0));
    }

    #[test]
    fn fan_curve_is_monotonic_and_superlinear_low() {
        let m = ServerPowerModel::paper_default();
        let mut prev = Watts::ZERO;
        for i in 0..=100 {
            let p = m.power_at_utilization(Ratio::new(i as f64 / 100.0));
            assert!(p >= prev, "power must be non-decreasing in utilization");
            prev = p;
        }
        // 2u − u^1.4 > u for u in (0,1): the curve sits above linear.
        let linear = ServerPowerModel::paper_default().with_curve(PowerCurve::Linear);
        let u = Ratio::new(0.3);
        assert!(m.power_at_utilization(u) > linear.power_at_utilization(u));
    }

    #[test]
    fn utilization_clamps_out_of_range() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.power_at_utilization(Ratio::new(1.5)), Watts::new(490.0));
        assert_eq!(m.power_at_utilization(Ratio::new(-0.5)), Watts::new(160.0));
    }

    #[test]
    fn inverse_roundtrip_fan() {
        let m = ServerPowerModel::paper_default();
        for i in 1..10 {
            let u = Ratio::new(i as f64 / 10.0);
            let p = m.power_at_utilization(u);
            let back = m.utilization_at_power(p);
            assert!(
                (back.as_f64() - u.as_f64()).abs() < 1e-9,
                "roundtrip failed at u={u}"
            );
        }
    }

    #[test]
    fn inverse_roundtrip_linear() {
        let m = ServerPowerModel::paper_default().with_curve(PowerCurve::Linear);
        let p = m.power_at_utilization(Ratio::new(0.4));
        assert_eq!(p, Watts::new(160.0 + 0.4 * 330.0));
        assert!((m.utilization_at_power(p).as_f64() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn inverse_clamps_envelope() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.utilization_at_power(Watts::new(100.0)), Ratio::ZERO);
        assert_eq!(m.utilization_at_power(Watts::new(600.0)), Ratio::ONE);
    }

    #[test]
    fn cap_ratio_matches_paper_definition() {
        let m = ServerPowerModel::paper_default();
        // Demand 490, budget 325 ⇒ (490−325)/(490−160) = 0.5.
        assert!(
            (m.cap_ratio(Watts::new(490.0), Watts::new(325.0)).as_f64() - 0.5).abs() < 1e-12
        );
        // Budget covers demand ⇒ 0.
        assert_eq!(
            m.cap_ratio(Watts::new(300.0), Watts::new(350.0)),
            Ratio::ZERO
        );
        // No dynamic demand ⇒ 0 even with a tiny budget.
        assert_eq!(
            m.cap_ratio(Watts::new(160.0), Watts::new(0.0)),
            Ratio::ZERO
        );
        // Budget below idle clamps to 1.
        assert_eq!(
            m.cap_ratio(Watts::new(490.0), Watts::new(100.0)),
            Ratio::ONE
        );
    }

    #[test]
    #[should_panic(expected = "Pcap_min")]
    fn inverted_envelope_rejected() {
        let _ = ServerPowerModel::new(Watts::new(200.0), Watts::new(150.0), Watts::new(490.0));
    }

    #[test]
    fn display() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.to_string(), "server model [idle 160 W, cap 270 W–490 W]");
    }
}
