//! Redundant power supplies and their unequal load split.
//!
//! The paper's first key observation (§3.1) is that a server does **not**
//! split its load equally between its power supplies: the split is an
//! intrinsic property of the unit (up to a 65/35 split was measured) and
//! cannot be adjusted at runtime. Budgets must therefore be enforced per
//! supply, and the mismatch is what strands power (§4.4).

use core::fmt;

use capmaestro_units::{Ratio, Watts};

/// Operating state of one power supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupplyState {
    /// Sharing the server load normally.
    #[default]
    Active,
    /// In cold-standby (drawing no power) for efficiency (§3.1, \[34\]).
    Standby,
    /// Failed, or its upstream feed is dead.
    Failed,
}

impl SupplyState {
    /// Whether the supply currently carries load.
    pub fn carries_load(self) -> bool {
        matches!(self, SupplyState::Active)
    }

    /// Whether the supply is working (could carry load if activated).
    pub fn is_working(self) -> bool {
        !matches!(self, SupplyState::Failed)
    }
}

impl fmt::Display for SupplyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupplyState::Active => write!(f, "active"),
            SupplyState::Standby => write!(f, "standby"),
            SupplyState::Failed => write!(f, "failed"),
        }
    }
}

/// One server power supply.
///
/// `weight` encodes the supply's intrinsic share of the server load
/// relative to its siblings: a two-supply bank with weights 0.65/0.35
/// reproduces the worst split mismatch the paper reports. Weights are
/// renormalized over the supplies that currently carry load, which models
/// the load shifting to the survivors when a supply fails or stands by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSupply {
    weight: f64,
    efficiency: Ratio,
    state: SupplyState,
}

impl PowerSupply {
    /// Creates an active supply with the given intrinsic load weight and
    /// AC→DC conversion efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive/finite or `efficiency` is outside
    /// `(0, 1]`.
    pub fn new(weight: f64, efficiency: Ratio) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "supply weight must be positive and finite, got {weight}"
        );
        assert!(
            efficiency > Ratio::ZERO && efficiency <= Ratio::ONE,
            "supply efficiency must be in (0, 1], got {efficiency}"
        );
        PowerSupply {
            weight,
            efficiency,
            state: SupplyState::Active,
        }
    }

    /// The intrinsic load weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The AC→DC conversion efficiency `k` (DC out / AC in).
    pub fn efficiency(&self) -> Ratio {
        self.efficiency
    }

    /// The operating state.
    pub fn state(&self) -> SupplyState {
        self.state
    }
}

/// The bank of power supplies installed in one server.
///
/// # Examples
///
/// ```
/// use capmaestro_server::PsuBank;
/// use capmaestro_units::{Ratio, Watts};
///
/// // The paper's measured worst case: a 65/35 split.
/// let bank = PsuBank::dual(0.65, Ratio::new(0.94));
/// let loads = bank.ac_loads(Watts::new(470.0)); // 470 W AC at the wall
/// assert!((loads[0].as_f64() - 305.5).abs() < 1e-9);
/// assert!((loads[1].as_f64() - 164.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PsuBank {
    supplies: Vec<PowerSupply>,
}

impl PsuBank {
    /// Creates a bank from explicit supplies.
    ///
    /// # Panics
    ///
    /// Panics if the bank is empty.
    pub fn new(supplies: Vec<PowerSupply>) -> Self {
        assert!(!supplies.is_empty(), "a server needs at least one supply");
        PsuBank { supplies }
    }

    /// A dual-supply bank where the first supply carries `first_share` of
    /// the load (e.g. `0.65`) and both convert at `efficiency`.
    ///
    /// # Panics
    ///
    /// Panics if `first_share` is outside `(0, 1)`.
    pub fn dual(first_share: f64, efficiency: Ratio) -> Self {
        assert!(
            first_share > 0.0 && first_share < 1.0,
            "first supply share must be in (0, 1), got {first_share}"
        );
        PsuBank::new(vec![
            PowerSupply::new(first_share, efficiency),
            PowerSupply::new(1.0 - first_share, efficiency),
        ])
    }

    /// A bank of `n` identical supplies sharing the load equally.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn balanced(n: usize, efficiency: Ratio) -> Self {
        assert!(n > 0, "a server needs at least one supply");
        PsuBank::new(vec![PowerSupply::new(1.0, efficiency); n])
    }

    /// The number of installed supplies.
    pub fn len(&self) -> usize {
        self.supplies.len()
    }

    /// Whether the bank is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.supplies.is_empty()
    }

    /// Borrow a supply.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn supply(&self, idx: usize) -> &PowerSupply {
        &self.supplies[idx]
    }

    /// All supplies.
    pub fn supplies(&self) -> &[PowerSupply] {
        &self.supplies
    }

    /// Number of *working* (non-failed) supplies — the `M` in the paper's
    /// capping controller (§4.2).
    pub fn working_count(&self) -> usize {
        self.supplies
            .iter()
            .filter(|s| s.state().is_working())
            .count()
    }

    /// Marks a supply failed (e.g. its feed died).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or this would fail the last working
    /// supply (the server would lose power — model that at the engine level
    /// by removing the server instead).
    pub fn fail_supply(&mut self, idx: usize) {
        assert!(
            self.working_count() > 1 || !self.supplies[idx].state.is_working(),
            "cannot fail the last working supply of a server"
        );
        self.supplies[idx].state = SupplyState::Failed;
    }

    /// Puts a supply in (or out of) cold standby.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, the supply has failed, or this
    /// would leave no load-carrying supply.
    pub fn set_standby(&mut self, idx: usize, standby: bool) {
        assert!(
            self.supplies[idx].state != SupplyState::Failed,
            "a failed supply cannot change standby state"
        );
        if standby {
            let carrying = self
                .supplies
                .iter()
                .filter(|s| s.state().carries_load())
                .count();
            assert!(
                carrying > 1 || !self.supplies[idx].state.carries_load(),
                "cannot stand by the last load-carrying supply"
            );
            self.supplies[idx].state = SupplyState::Standby;
        } else {
            self.supplies[idx].state = SupplyState::Active;
        }
    }

    /// Restores a failed supply to active service.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn repair_supply(&mut self, idx: usize) {
        self.supplies[idx].state = SupplyState::Active;
    }

    /// The effective load share of each supply: intrinsic weights
    /// renormalized over the supplies currently carrying load. Failed and
    /// standby supplies get share 0.
    ///
    /// This is the `r` of the paper's capping-controller metrics ("we
    /// adjust it in practice based on how the load is actually split").
    pub fn effective_shares(&self) -> Vec<Ratio> {
        let total: f64 = self
            .supplies
            .iter()
            .filter(|s| s.state().carries_load())
            .map(|s| s.weight())
            .sum();
        self.supplies
            .iter()
            .map(|s| {
                if s.state().carries_load() && total > 0.0 {
                    Ratio::new(s.weight() / total)
                } else {
                    Ratio::ZERO
                }
            })
            .collect()
    }

    /// Iterates the effective load shares in supply order without
    /// allocating — same values as [`PsuBank::effective_shares`], for
    /// callers on the per-round hot path.
    pub fn effective_shares_iter(&self) -> impl Iterator<Item = Ratio> + '_ {
        let total: f64 = self
            .supplies
            .iter()
            .filter(|s| s.state().carries_load())
            .map(|s| s.weight())
            .sum();
        self.supplies.iter().map(move |s| {
            if s.state().carries_load() && total > 0.0 {
                Ratio::new(s.weight() / total)
            } else {
                Ratio::ZERO
            }
        })
    }

    /// The effective load share of one supply (see
    /// [`PsuBank::effective_shares`]); [`Ratio::ZERO`] when `idx` is out of
    /// range.
    pub fn effective_share(&self, idx: usize) -> Ratio {
        self.effective_shares_iter()
            .nth(idx)
            .unwrap_or(Ratio::ZERO)
    }

    /// Per-supply AC input power when the server draws `total_ac` at the
    /// wall.
    pub fn ac_loads(&self, total_ac: Watts) -> Vec<Watts> {
        self.effective_shares()
            .into_iter()
            .map(|r| total_ac * r)
            .collect()
    }

    /// Writes the per-supply AC input powers into `out` without allocating
    /// (beyond growing `out` to the bank size once) — same values as
    /// [`PsuBank::ac_loads`], for callers on the per-second hot path.
    pub fn ac_loads_into(&self, total_ac: Watts, out: &mut Vec<Watts>) {
        out.clear();
        out.extend(self.effective_shares_iter().map(|r| total_ac * r));
    }

    /// The bank-level AC→DC efficiency: the load-share-weighted mean of the
    /// carrying supplies' efficiencies (equals the common `k` when supplies
    /// are identical).
    pub fn efficiency(&self) -> Ratio {
        let k: f64 = self
            .supplies
            .iter()
            .zip(self.effective_shares_iter())
            .map(|(s, r)| s.efficiency().as_f64() * r.as_f64())
            .sum();
        if k > 0.0 {
            Ratio::new(k)
        } else {
            // No carrying supply: fall back to the first working one.
            self.supplies
                .iter()
                .find(|s| s.state().is_working())
                .map(|s| s.efficiency())
                .unwrap_or(Ratio::ONE)
        }
    }

    /// Total AC drawn at the wall for a given DC load.
    pub fn total_ac_for_dc(&self, dc: Watts) -> Watts {
        dc / self.efficiency()
    }

    /// Total DC delivered for a given wall AC draw.
    pub fn dc_for_total_ac(&self, ac: Watts) -> Watts {
        ac * self.efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: Ratio = Ratio::new(0.94);

    #[test]
    fn dual_bank_shares() {
        let bank = PsuBank::dual(0.65, K);
        let shares = bank.effective_shares();
        assert!((shares[0].as_f64() - 0.65).abs() < 1e-12);
        assert!((shares[1].as_f64() - 0.35).abs() < 1e-12);
        assert_eq!(bank.working_count(), 2);
    }

    #[test]
    fn balanced_bank_shares() {
        let bank = PsuBank::balanced(3, K);
        for share in bank.effective_shares() {
            assert!((share.as_f64() - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn failure_shifts_load_to_survivor() {
        let mut bank = PsuBank::dual(0.65, K);
        bank.fail_supply(0);
        let shares = bank.effective_shares();
        assert_eq!(shares[0], Ratio::ZERO);
        assert_eq!(shares[1], Ratio::ONE);
        assert_eq!(bank.working_count(), 1);
    }

    #[test]
    #[should_panic(expected = "last working supply")]
    fn cannot_fail_all_supplies() {
        let mut bank = PsuBank::dual(0.5, K);
        bank.fail_supply(0);
        bank.fail_supply(1);
    }

    #[test]
    fn standby_and_reactivate() {
        let mut bank = PsuBank::dual(0.65, K);
        bank.set_standby(1, true);
        assert_eq!(bank.effective_shares(), vec![Ratio::ONE, Ratio::ZERO]);
        // Standby supply still counts as working (it could be re-engaged).
        assert_eq!(bank.working_count(), 2);
        bank.set_standby(1, false);
        assert!((bank.effective_shares()[1].as_f64() - 0.35).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "last load-carrying supply")]
    fn cannot_stand_by_last_carrier() {
        let mut bank = PsuBank::dual(0.5, K);
        bank.set_standby(0, true);
        bank.set_standby(1, true);
    }

    #[test]
    fn repair_restores_split() {
        let mut bank = PsuBank::dual(0.65, K);
        bank.fail_supply(1);
        bank.repair_supply(1);
        assert!((bank.effective_shares()[1].as_f64() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn ac_loads_split_total() {
        let bank = PsuBank::dual(0.6, K);
        let loads = bank.ac_loads(Watts::new(500.0));
        assert!((loads[0].as_f64() - 300.0).abs() < 1e-9);
        assert!((loads[1].as_f64() - 200.0).abs() < 1e-9);
        let sum: Watts = loads.iter().sum();
        assert!(sum.approx_eq(Watts::new(500.0), Watts::new(1e-9)));
    }

    #[test]
    fn ac_dc_roundtrip() {
        let bank = PsuBank::dual(0.65, K);
        let dc = Watts::new(400.0);
        let ac = bank.total_ac_for_dc(dc);
        assert!(ac > dc); // conversion losses
        let dc_back = bank.dc_for_total_ac(ac);
        assert!(dc_back.approx_eq(dc, Watts::new(1e-9)));
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = PowerSupply::new(1.0, Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn non_positive_weight_rejected() {
        let _ = PowerSupply::new(0.0, K);
    }

    #[test]
    fn state_display_and_predicates() {
        assert_eq!(SupplyState::Active.to_string(), "active");
        assert_eq!(SupplyState::Standby.to_string(), "standby");
        assert_eq!(SupplyState::Failed.to_string(), "failed");
        assert!(SupplyState::Active.carries_load());
        assert!(!SupplyState::Standby.carries_load());
        assert!(SupplyState::Standby.is_working());
        assert!(!SupplyState::Failed.is_working());
    }
}
