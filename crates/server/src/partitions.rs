//! Virtual power partitions: per-VM capping inside one server.
//!
//! The paper's §7 observes that existing mechanisms "cap power per server",
//! which forces schedulers to co-locate jobs of similar priority — unless
//! someone builds "a new mechanism that can cap power for individual
//! 'virtual partitions' of a server, where … each virtual partition can be
//! assigned its own power budget". This module is that mechanism, at the
//! model level: a [`PartitionSet`] divides a server's *dynamic* power
//! budget across its resident VMs with the same strict-priority waterfall
//! CapMaestro uses between servers, so a co-located low-priority VM
//! absorbs the cap before a high-priority neighbour slows down.
//!
//! The server's own priority, as reported to the control plane, is the
//! maximum of its partitions' priorities ([`PartitionSet::max_priority`]) —
//! the wiring a job scheduler would use with
//! `ControlPlane::set_priority`.

use core::fmt;

use capmaestro_topology::Priority;
use capmaestro_units::{Ratio, Watts};

/// One virtual partition (VM/container) resident on a server.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualPartition {
    name: String,
    priority: Priority,
    /// Dynamic power the partition would draw at full performance.
    demand: Watts,
}

impl VirtualPartition {
    /// Creates a partition.
    ///
    /// # Panics
    ///
    /// Panics if `demand` is negative.
    pub fn new(name: impl Into<String>, priority: Priority, demand: Watts) -> Self {
        assert!(
            demand >= Watts::ZERO,
            "partition demand must be non-negative, got {demand}"
        );
        VirtualPartition {
            name: name.into(),
            priority,
            demand,
        }
    }

    /// The partition's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition's priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The partition's full-performance dynamic power demand.
    pub fn demand(&self) -> Watts {
        self.demand
    }
}

/// The set of partitions sharing one server's dynamic power budget.
///
/// # Examples
///
/// ```
/// use capmaestro_server::{PartitionSet, VirtualPartition};
/// use capmaestro_topology::Priority;
/// use capmaestro_units::Watts;
///
/// let set = PartitionSet::new(vec![
///     VirtualPartition::new("db", Priority::HIGH, Watts::new(150.0)),
///     VirtualPartition::new("batch", Priority::LOW, Watts::new(150.0)),
/// ]);
/// // Only 200 W of dynamic budget: the DB VM is served first.
/// let budgets = set.split_dynamic_budget(Watts::new(200.0));
/// assert_eq!(budgets[0], Watts::new(150.0));
/// assert_eq!(budgets[1], Watts::new(50.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionSet {
    partitions: Vec<VirtualPartition>,
}

impl PartitionSet {
    /// Creates a set from partitions (order is preserved; budgets are
    /// returned in the same order).
    pub fn new(partitions: Vec<VirtualPartition>) -> Self {
        PartitionSet { partitions }
    }

    /// The partitions, in construction order.
    pub fn partitions(&self) -> &[VirtualPartition] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Adds a partition (e.g. a job arrival).
    pub fn push(&mut self, partition: VirtualPartition) {
        self.partitions.push(partition);
    }

    /// Removes a partition by name (job departure); returns it if present.
    pub fn remove(&mut self, name: &str) -> Option<VirtualPartition> {
        let idx = self.partitions.iter().position(|p| p.name() == name)?;
        Some(self.partitions.remove(idx))
    }

    /// Total dynamic power demand across partitions.
    pub fn total_demand(&self) -> Watts {
        self.partitions.iter().map(|p| p.demand()).sum()
    }

    /// The highest priority present — what the server should report to the
    /// control plane.
    pub fn max_priority(&self) -> Option<Priority> {
        self.partitions.iter().map(|p| p.priority()).max()
    }

    /// Splits a dynamic power budget across the partitions with a strict
    /// priority waterfall: descending priority, each level's demands are
    /// served in full while the budget lasts; the first level that does
    /// not fit shares the remainder proportionally to demand; lower levels
    /// get nothing.
    ///
    /// Returns per-partition budgets in construction order; their sum is
    /// `min(budget, total_demand)`.
    pub fn split_dynamic_budget(&self, budget: Watts) -> Vec<Watts> {
        let n = self.partitions.len();
        let mut budgets = vec![Watts::ZERO; n];
        if n == 0 {
            return budgets;
        }
        let mut levels: Vec<Priority> =
            self.partitions.iter().map(|p| p.priority()).collect();
        levels.sort_unstable_by(|a, b| b.cmp(a));
        levels.dedup();

        let mut remaining = budget.clamp_non_negative();
        for level in levels {
            let members: Vec<usize> = (0..n)
                .filter(|&i| self.partitions[i].priority() == level)
                .collect();
            let level_demand: Watts =
                members.iter().map(|&i| self.partitions[i].demand()).sum();
            if level_demand <= Watts::ZERO {
                continue;
            }
            if remaining >= level_demand {
                for &i in &members {
                    budgets[i] = self.partitions[i].demand();
                }
                remaining -= level_demand;
            } else {
                let scale = remaining / level_demand;
                for &i in &members {
                    budgets[i] = self.partitions[i].demand() * scale;
                }
                break;
            }
        }
        budgets
    }

    /// Per-partition achieved performance under a dynamic budget, applying
    /// the DVFS relation `perf = (budget/demand)^(1/exponent)` per
    /// partition (1.0 for idle partitions).
    pub fn performance_fractions(&self, budget: Watts, perf_exponent: f64) -> Vec<Ratio> {
        assert!(
            perf_exponent.is_finite() && perf_exponent >= 1.0,
            "DVFS exponent must be finite and >= 1"
        );
        self.split_dynamic_budget(budget)
            .iter()
            .zip(&self.partitions)
            .map(|(b, p)| {
                if p.demand() <= Watts::ZERO {
                    Ratio::ONE
                } else {
                    let ratio = (*b / p.demand()).clamp(0.0, 1.0);
                    Ratio::new(ratio.powf(1.0 / perf_exponent))
                }
            })
            .collect()
    }
}

impl fmt::Display for PartitionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partitions [")?;
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} ({}, {:.0})", p.name(), p.priority(), p.demand())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier_set() -> PartitionSet {
        PartitionSet::new(vec![
            VirtualPartition::new("batch", Priority(0), Watts::new(100.0)),
            VirtualPartition::new("web", Priority(1), Watts::new(120.0)),
            VirtualPartition::new("db", Priority(2), Watts::new(80.0)),
        ])
    }

    #[test]
    fn full_budget_serves_everyone() {
        let set = three_tier_set();
        let budgets = set.split_dynamic_budget(Watts::new(300.0));
        assert_eq!(
            budgets,
            vec![Watts::new(100.0), Watts::new(120.0), Watts::new(80.0)]
        );
    }

    #[test]
    fn waterfall_order_is_priority_descending() {
        let set = three_tier_set();
        // 150 W: db (80) then web gets 70 of 120; batch gets nothing.
        let budgets = set.split_dynamic_budget(Watts::new(150.0));
        assert_eq!(budgets[2], Watts::new(80.0));
        assert!(budgets[1].approx_eq(Watts::new(70.0), Watts::new(1e-9)));
        assert_eq!(budgets[0], Watts::ZERO);
    }

    #[test]
    fn equal_priority_shares_proportionally() {
        let set = PartitionSet::new(vec![
            VirtualPartition::new("a", Priority(1), Watts::new(100.0)),
            VirtualPartition::new("b", Priority(1), Watts::new(300.0)),
        ]);
        let budgets = set.split_dynamic_budget(Watts::new(200.0));
        assert!(budgets[0].approx_eq(Watts::new(50.0), Watts::new(1e-9)));
        assert!(budgets[1].approx_eq(Watts::new(150.0), Watts::new(1e-9)));
    }

    #[test]
    fn conservation() {
        let set = three_tier_set();
        for b in [0.0, 50.0, 150.0, 250.0, 400.0] {
            let budgets = set.split_dynamic_budget(Watts::new(b));
            let total: Watts = budgets.iter().sum();
            let expected = Watts::new(b).min(set.total_demand());
            assert!(
                total.approx_eq(expected, Watts::new(1e-9)),
                "budget {b}: split to {total}"
            );
        }
    }

    #[test]
    fn max_priority_reports_to_plane() {
        let mut set = three_tier_set();
        assert_eq!(set.max_priority(), Some(Priority(2)));
        set.remove("db").unwrap();
        assert_eq!(set.max_priority(), Some(Priority(1)));
        assert_eq!(set.remove("db"), None);
        set.remove("web").unwrap();
        set.remove("batch").unwrap();
        assert_eq!(set.max_priority(), None);
        assert!(set.is_empty());
    }

    #[test]
    fn arrivals_and_departures() {
        let mut set = PartitionSet::default();
        set.push(VirtualPartition::new("j1", Priority(0), Watts::new(60.0)));
        set.push(VirtualPartition::new("j2", Priority(3), Watts::new(90.0)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_demand(), Watts::new(150.0));
        let gone = set.remove("j1").unwrap();
        assert_eq!(gone.demand(), Watts::new(60.0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn performance_fractions_respect_priority() {
        let set = three_tier_set();
        let perfs = set.performance_fractions(Watts::new(150.0), 3.0);
        // db fully served; web at (70/120)^(1/3); batch dead.
        assert_eq!(perfs[2], Ratio::ONE);
        let expected = (70.0f64 / 120.0).powf(1.0 / 3.0);
        assert!((perfs[1].as_f64() - expected).abs() < 1e-9);
        assert_eq!(perfs[0], Ratio::ZERO);
    }

    #[test]
    fn zero_demand_partition_is_unaffected() {
        let set = PartitionSet::new(vec![VirtualPartition::new(
            "idle",
            Priority(0),
            Watts::ZERO,
        )]);
        assert_eq!(set.split_dynamic_budget(Watts::new(10.0)), vec![Watts::ZERO]);
        assert_eq!(set.performance_fractions(Watts::ZERO, 3.0), vec![Ratio::ONE]);
    }

    #[test]
    fn display() {
        let set = three_tier_set();
        let s = set.to_string();
        assert!(s.contains("db (P2, 80 W)"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_rejected() {
        let _ = VirtualPartition::new("bad", Priority(0), Watts::new(-1.0));
    }
}
