//! The assembled server: workload demand in, sensor telemetry out.

use core::fmt;

use capmaestro_units::{Ratio, Seconds, Watts};

use crate::node_manager::NodeManager;
use crate::power_model::ServerPowerModel;
use crate::psu::PsuBank;

/// Static configuration of a simulated server.
///
/// # Examples
///
/// ```
/// use capmaestro_server::{ServerConfig, PsuBank};
/// use capmaestro_units::Ratio;
///
/// // A Table 4 server whose first supply carries 65 % of the load —
/// // the paper's worst measured split mismatch.
/// let cfg = ServerConfig::paper_default().with_split(0.65);
/// assert_eq!(cfg.bank().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    model: ServerPowerModel,
    bank: PsuBank,
    node_manager: NodeManager,
}

impl ServerConfig {
    /// Creates a configuration.
    pub fn new(model: ServerPowerModel, bank: PsuBank) -> Self {
        ServerConfig {
            model,
            bank,
            node_manager: NodeManager::new(),
        }
    }

    /// The Table 4 server: paper power envelope, two equal supplies at
    /// 94 % efficiency, default node-manager dynamics.
    pub fn paper_default() -> Self {
        ServerConfig::new(
            ServerPowerModel::paper_default(),
            PsuBank::dual(0.5, Ratio::new(0.94)),
        )
    }

    /// Replaces the PSU bank with a dual bank splitting `first_share` /
    /// `1 − first_share` (builder-style).
    #[must_use]
    pub fn with_split(mut self, first_share: f64) -> Self {
        let efficiency = self.bank.supply(0).efficiency();
        self.bank = PsuBank::dual(first_share, efficiency);
        self
    }

    /// Replaces the PSU bank with a single supply (builder-style) — a
    /// single-corded server, as in the paper's §6.2 rig where one feed
    /// emulates a failure scenario.
    #[must_use]
    pub fn single_corded(mut self) -> Self {
        let efficiency = self.bank.supply(0).efficiency();
        self.bank = PsuBank::balanced(1, efficiency);
        self
    }

    /// Replaces the power model (builder-style).
    #[must_use]
    pub fn with_model(mut self, model: ServerPowerModel) -> Self {
        self.model = model;
        self
    }

    /// Replaces the PSU bank (builder-style).
    #[must_use]
    pub fn with_bank(mut self, bank: PsuBank) -> Self {
        self.bank = bank;
        self
    }

    /// Replaces the node manager (builder-style).
    #[must_use]
    pub fn with_node_manager(mut self, node_manager: NodeManager) -> Self {
        self.node_manager = node_manager;
        self
    }

    /// The power model.
    pub fn model(&self) -> ServerPowerModel {
        self.model
    }

    /// The PSU bank template.
    pub fn bank(&self) -> &PsuBank {
        &self.bank
    }

    /// The bank-level AC→DC efficiency.
    pub fn efficiency(&self) -> Ratio {
        self.bank.efficiency()
    }
}

/// One IPMI-equivalent sensor reading (paper §5: per-second reads of the
/// per-supply AC power monitors and the power-cap throttling level).
#[derive(Debug, PartialEq)]
pub struct SensorSnapshot {
    /// AC input power of each supply, indexed like the bank.
    pub supply_ac: Vec<Watts>,
    /// Total AC power at the wall.
    pub total_ac: Watts,
    /// DC power delivered to the planars.
    pub dc_power: Watts,
    /// Power-cap throttling level: 0 = full performance, 1 = maximally
    /// throttled.
    pub throttle: Ratio,
}

impl SensorSnapshot {
    /// An all-zero reading with no per-supply entries — the placeholder the
    /// slab cache starts from before the first refresh.
    pub(crate) fn empty() -> Self {
        SensorSnapshot {
            supply_ac: Vec::new(),
            total_ac: Watts::ZERO,
            dc_power: Watts::ZERO,
            throttle: Ratio::ZERO,
        }
    }
}

// Manual impl so `clone_from` reuses the `supply_ac` allocation — the
// derived impl would fall back to a fresh clone, breaking the zero-alloc
// steady-state discipline of the sense scratch buffers.
impl Clone for SensorSnapshot {
    fn clone(&self) -> Self {
        SensorSnapshot {
            supply_ac: self.supply_ac.clone(),
            total_ac: self.total_ac,
            dc_power: self.dc_power,
            throttle: self.throttle,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.supply_ac.clone_from(&source.supply_ac);
        self.total_ac = source.total_ac;
        self.dc_power = source.dc_power;
        self.throttle = source.throttle;
    }
}

/// Per-server physics shared between [`Server`] and the SoA slab
/// ([`crate::slab`]). Keeping a single copy of the arithmetic is what makes
/// the slab stepping path bitwise-identical to the reference path by
/// construction.
pub(crate) mod physics {
    use super::{NodeManager, PsuBank, Ratio, SensorSnapshot, ServerPowerModel, Watts};

    /// Clamps an offered demand into the model envelope `[idle, Pcap_max]`.
    pub(crate) fn clamp_demand(model: ServerPowerModel, demand: Watts) -> Watts {
        demand.clamp(model.idle(), model.cap_max())
    }

    /// The lowest AC power throttling can reach for a given offered demand.
    pub(crate) fn min_achievable_ac(model: ServerPowerModel, demand: Watts) -> Watts {
        let dyn_demand = (demand - model.idle()).clamp_non_negative();
        let floor_scale =
            (model.cap_min() - model.idle()) / (model.cap_max() - model.idle());
        model.idle() + dyn_demand * floor_scale
    }

    /// The AC power the node manager steers toward under the current cap
    /// and demand.
    pub(crate) fn target_ac(
        model: ServerPowerModel,
        node_manager: &NodeManager,
        bank: &PsuBank,
        offered_ac: Watts,
    ) -> Watts {
        match node_manager.ac_cap(bank.efficiency()) {
            None => offered_ac,
            Some(cap_ac) => {
                if offered_ac <= cap_ac {
                    offered_ac
                } else {
                    // The cap binds; it cannot push below the throttling
                    // floor for this workload.
                    cap_ac.max(min_achievable_ac(model, offered_ac))
                }
            }
        }
    }

    /// The power-cap throttling level for an offered/achieved pair.
    pub(crate) fn throttle(
        model: ServerPowerModel,
        offered_ac: Watts,
        achieved_ac: Watts,
    ) -> Ratio {
        let idle = model.idle();
        let dyn_demand = (offered_ac - idle).clamp_non_negative();
        if dyn_demand <= Watts::ZERO {
            return Ratio::ZERO;
        }
        let dyn_achieved = (achieved_ac - idle).clamp_non_negative();
        Ratio::new_clamped(1.0 - dyn_achieved / dyn_demand)
    }

    /// Refreshes `snap` in place from the server's current state, reusing
    /// the snapshot's `supply_ac` allocation. Values are bitwise-identical
    /// to [`super::Server::sense`].
    pub(crate) fn sense_into(
        model: ServerPowerModel,
        bank: &PsuBank,
        offered_ac: Watts,
        achieved_ac: Watts,
        snap: &mut SensorSnapshot,
    ) {
        bank.ac_loads_into(achieved_ac, &mut snap.supply_ac);
        snap.total_ac = achieved_ac;
        snap.dc_power = bank.dc_for_total_ac(achieved_ac);
        snap.throttle = throttle(model, offered_ac, achieved_ac);
    }
}

/// A simulated server under node-manager power capping.
///
/// Drive it by setting the offered (uncapped) power demand with
/// [`Server::set_offered_demand`] — or utilization via
/// [`Server::set_utilization`] — optionally command a DC cap, and advance
/// time with [`Server::step`]. Read telemetry with [`Server::sense`].
#[derive(Debug, Clone)]
pub struct Server {
    config: ServerConfig,
    bank: PsuBank,
    node_manager: NodeManager,
    /// Offered AC power demand at full performance.
    offered_ac: Watts,
    /// Smoothed achieved AC power at the wall.
    achieved_ac: Watts,
    /// Whether the server has input power at all (false after its last
    /// working supply's feed died).
    powered: bool,
}

impl Server {
    /// Creates an idle server.
    pub fn new(config: ServerConfig) -> Self {
        let bank = config.bank().clone();
        let node_manager = config.node_manager;
        let idle = config.model().idle();
        Server {
            config,
            bank,
            node_manager,
            offered_ac: idle,
            achieved_ac: idle,
            powered: true,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The live PSU bank (supplies may have failed or stood by since
    /// construction).
    pub fn bank(&self) -> &PsuBank {
        &self.bank
    }

    /// Mutable access to the PSU bank for failure injection.
    pub fn bank_mut(&mut self) -> &mut PsuBank {
        &mut self.bank
    }

    /// Sets the offered AC power demand (what the workload would draw at
    /// full performance). Clamped into the model envelope
    /// `[idle, Pcap_max]`.
    pub fn set_offered_demand(&mut self, demand: Watts) {
        self.offered_ac = physics::clamp_demand(self.config.model(), demand);
    }

    /// Sets the offered demand from a CPU utilization via the power curve.
    pub fn set_utilization(&mut self, u: Ratio) {
        self.offered_ac = self.config.model().power_at_utilization(u);
    }

    /// The current offered AC demand.
    pub fn offered_demand(&self) -> Watts {
        self.offered_ac
    }

    /// Commands a DC power cap (what a capping controller sends over IPMI).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive.
    pub fn set_dc_cap(&mut self, cap: Watts) {
        self.node_manager.set_dc_cap(cap);
    }

    /// Removes the DC cap.
    pub fn clear_dc_cap(&mut self) {
        self.node_manager.clear_cap();
    }

    /// The commanded DC cap, if any.
    pub fn dc_cap(&self) -> Option<Watts> {
        self.node_manager.dc_cap()
    }

    /// The lowest AC power throttling can reach for a given offered demand.
    ///
    /// Throttling scales *dynamic* power by at most the model's
    /// `(Pcap_min − idle) / (Pcap_max − idle)`; lighter workloads bottom
    /// out proportionally higher than `Pcap_min` only in dynamic terms.
    pub fn min_achievable_ac(&self, demand: Watts) -> Watts {
        physics::min_achievable_ac(self.config.model(), demand)
    }

    /// The AC power the node manager steers toward under the current cap
    /// and demand.
    fn target_ac(&self) -> Watts {
        physics::target_ac(
            self.config.model(),
            &self.node_manager,
            &self.bank,
            self.offered_ac,
        )
    }

    /// Whether the server currently has input power.
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Connects or disconnects input power entirely. Losing power is
    /// instantaneous (no settling) — the server simply goes dark, as when
    /// the feed behind its last working supply dies.
    pub fn set_powered(&mut self, powered: bool) {
        self.powered = powered;
        if !powered {
            self.achieved_ac = Watts::ZERO;
        } else if self.achieved_ac < self.config.model().idle() {
            self.achieved_ac = self.config.model().idle();
        }
    }

    /// Advances the server by `dt`: the node manager moves actual power
    /// toward its target with first-order settling. Returns the new total
    /// AC power.
    pub fn step(&mut self, dt: Seconds) -> Watts {
        if !self.powered {
            self.achieved_ac = Watts::ZERO;
            return Watts::ZERO;
        }
        let target = self.target_ac();
        self.achieved_ac = self.node_manager.approach(self.achieved_ac, target, dt);
        self.achieved_ac
    }

    /// Reads the sensors (per-supply AC power, throttling level).
    pub fn sense(&self) -> SensorSnapshot {
        SensorSnapshot {
            supply_ac: self.bank.ac_loads(self.achieved_ac),
            total_ac: self.achieved_ac,
            dc_power: self.bank.dc_for_total_ac(self.achieved_ac),
            throttle: self.throttle(),
        }
    }

    /// The power-cap throttling level: the fraction of dynamic power
    /// removed relative to the offered demand.
    pub fn throttle(&self) -> Ratio {
        physics::throttle(self.config.model(), self.offered_ac, self.achieved_ac)
    }

    /// Achieved application performance as a fraction of uncapped
    /// performance — the quantity the paper's normalized-throughput plots
    /// report. Under DVFS, removing dynamic power costs less than
    /// proportional performance (the model's
    /// [`ServerPowerModel::perf_exponent`], cubic by default).
    ///
    /// [`ServerPowerModel::perf_exponent`]: crate::ServerPowerModel::perf_exponent
    pub fn performance_fraction(&self) -> Ratio {
        self.config
            .model()
            .performance_at_dynamic_ratio(self.throttle().complement())
    }

    /// Instantly settles the server at its target power (skips transients —
    /// used by steady-state experiments and the Monte-Carlo planner).
    pub fn settle(&mut self) {
        self.achieved_ac = if self.powered {
            self.target_ac()
        } else {
            Watts::ZERO
        };
    }

    /// Decomposes the server into its state lanes for slab storage
    /// (`config`, live `bank`, live `node_manager`, `offered_ac`,
    /// `achieved_ac`, `powered`).
    pub(crate) fn into_parts(
        self,
    ) -> (ServerConfig, PsuBank, NodeManager, Watts, Watts, bool) {
        (
            self.config,
            self.bank,
            self.node_manager,
            self.offered_ac,
            self.achieved_ac,
            self.powered,
        )
    }
}

impl fmt::Display for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "server [demand {:.0}, power {:.0}, throttle {}]",
            self.offered_ac,
            self.achieved_ac,
            self.throttle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_split(split: f64) -> Server {
        Server::new(ServerConfig::paper_default().with_split(split))
    }

    #[test]
    fn starts_idle_and_uncapped() {
        let s = server_with_split(0.5);
        assert_eq!(s.offered_demand(), Watts::new(160.0));
        assert_eq!(s.sense().total_ac, Watts::new(160.0));
        assert_eq!(s.dc_cap(), None);
        assert_eq!(s.throttle(), Ratio::ZERO);
    }

    #[test]
    fn uncapped_server_follows_demand() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(430.0));
        for _ in 0..20 {
            s.step(Seconds::new(1.0));
        }
        assert!(s.sense().total_ac.approx_eq(Watts::new(430.0), Watts::new(1.0)));
        assert!(s.throttle().as_f64() < 0.01);
    }

    #[test]
    fn cap_binds_and_throttles() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(430.0));
        // Cap at 300 W AC: DC cap = 300 × k.
        let k = s.config().efficiency();
        s.set_dc_cap(Watts::new(300.0) * k);
        for _ in 0..30 {
            s.step(Seconds::new(1.0));
        }
        let snap = s.sense();
        assert!(snap.total_ac.approx_eq(Watts::new(300.0), Watts::new(2.0)));
        // throttle = 1 − (300−160)/(430−160) ≈ 0.481
        assert!((snap.throttle.as_f64() - 0.481).abs() < 0.02);
        assert!(s.performance_fraction().as_f64() > 0.5);
    }

    #[test]
    fn settles_within_six_seconds_like_node_manager() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(490.0));
        s.settle();
        let k = s.config().efficiency();
        s.set_dc_cap(Watts::new(300.0) * k);
        for _ in 0..6 {
            s.step(Seconds::new(1.0));
        }
        let gap = (s.sense().total_ac - Watts::new(300.0)).as_f64();
        assert!(gap.abs() < 0.05 * 190.0, "gap {gap} too large after 6 s");
    }

    #[test]
    fn cap_cannot_push_below_floor() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(490.0));
        s.set_dc_cap(Watts::new(50.0)); // far below Pcap_min
        s.settle();
        // Floor for a full-power workload is Pcap_min = 270 W AC.
        assert!(s.sense().total_ac.approx_eq(Watts::new(270.0), Watts::new(1e-6)));
    }

    #[test]
    fn min_achievable_scales_with_demand() {
        let s = server_with_split(0.5);
        // Full-power workload floors at Pcap_min.
        assert!(s
            .min_achievable_ac(Watts::new(490.0))
            .approx_eq(Watts::new(270.0), Watts::new(1e-9)));
        // A workload demanding 325 W (half dynamic range) floors halfway
        // between idle and Pcap_min.
        assert!(s
            .min_achievable_ac(Watts::new(325.0))
            .approx_eq(Watts::new(215.0), Watts::new(1e-9)));
        // An idle server floors at idle.
        assert!(s
            .min_achievable_ac(Watts::new(160.0))
            .approx_eq(Watts::new(160.0), Watts::new(1e-9)));
    }

    #[test]
    fn demand_clamped_to_envelope() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(1000.0));
        assert_eq!(s.offered_demand(), Watts::new(490.0));
        s.set_offered_demand(Watts::new(10.0));
        assert_eq!(s.offered_demand(), Watts::new(160.0));
    }

    #[test]
    fn utilization_demand() {
        let mut s = server_with_split(0.5);
        s.set_utilization(Ratio::ONE);
        assert_eq!(s.offered_demand(), Watts::new(490.0));
        s.set_utilization(Ratio::ZERO);
        assert_eq!(s.offered_demand(), Watts::new(160.0));
    }

    #[test]
    fn unequal_split_reflected_in_sensors() {
        let mut s = server_with_split(0.65);
        s.set_offered_demand(Watts::new(400.0));
        s.settle();
        let snap = s.sense();
        assert!((snap.supply_ac[0].as_f64() - 260.0).abs() < 1e-9);
        assert!((snap.supply_ac[1].as_f64() - 140.0).abs() < 1e-9);
        assert!(snap.dc_power < snap.total_ac); // conversion losses
    }

    #[test]
    fn supply_failure_shifts_sensed_load() {
        let mut s = server_with_split(0.65);
        s.set_offered_demand(Watts::new(400.0));
        s.settle();
        s.bank_mut().fail_supply(0);
        let snap = s.sense();
        assert_eq!(snap.supply_ac[0], Watts::ZERO);
        assert!(snap.supply_ac[1].approx_eq(Watts::new(400.0), Watts::new(1e-9)));
    }

    #[test]
    fn clear_cap_restores_performance() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(450.0));
        let k = s.config().efficiency();
        s.set_dc_cap(Watts::new(280.0) * k);
        s.settle();
        assert!(s.throttle().as_f64() > 0.3);
        s.clear_dc_cap();
        s.settle();
        assert_eq!(s.throttle(), Ratio::ZERO);
        assert!(s.sense().total_ac.approx_eq(Watts::new(450.0), Watts::new(1e-9)));
    }

    #[test]
    fn display() {
        let mut s = server_with_split(0.5);
        s.set_offered_demand(Watts::new(430.0));
        s.settle();
        assert_eq!(s.to_string(), "server [demand 430 W, power 430 W, throttle 0.0%]");
    }
}
