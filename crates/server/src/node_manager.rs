//! The node-manager actuator: DC power capping with realistic settling.
//!
//! Intel Node Manager (paper \[7\]) accepts a **DC** power cap and adjusts
//! processor voltage/frequency until the server complies, within about six
//! seconds (§5: "the node manager then ensures that the server power is
//! within the cap in 6 seconds"). [`NodeManager`] models that interface: a
//! commanded cap plus a first-order settling filter whose default time
//! constant makes the output ~98 % settled after six seconds.

use core::fmt;

use capmaestro_units::{Ratio, Seconds, Watts};

/// Default settling time constant. With τ = 1.5 s, a step is 98 % settled
/// after 6 s — matching the node-manager behaviour the paper measures.
pub const DEFAULT_TAU: Seconds = Seconds::new(1.5);

/// An Intel-Node-Manager-like DC power-cap actuator.
///
/// # Examples
///
/// ```
/// use capmaestro_server::NodeManager;
/// use capmaestro_units::Watts;
///
/// let mut nm = NodeManager::new();
/// assert_eq!(nm.dc_cap(), None);
/// nm.set_dc_cap(Watts::new(350.0));
/// assert_eq!(nm.dc_cap(), Some(Watts::new(350.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeManager {
    dc_cap: Option<Watts>,
    tau: Seconds,
}

impl NodeManager {
    /// Creates an uncapped node manager with the default settling constant.
    pub fn new() -> Self {
        NodeManager {
            dc_cap: None,
            tau: DEFAULT_TAU,
        }
    }

    /// Overrides the settling time constant (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not positive.
    #[must_use]
    pub fn with_tau(mut self, tau: Seconds) -> Self {
        assert!(
            tau > Seconds::ZERO,
            "node manager time constant must be positive"
        );
        self.tau = tau;
        self
    }

    /// The current DC cap, if one is set.
    pub fn dc_cap(&self) -> Option<Watts> {
        self.dc_cap
    }

    /// The settling time constant.
    pub fn tau(&self) -> Seconds {
        self.tau
    }

    /// Commands a DC power cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive (a zero cap cannot be enforced; use
    /// [`NodeManager::clear_cap`] to uncap).
    pub fn set_dc_cap(&mut self, cap: Watts) {
        assert!(cap > Watts::ZERO, "DC cap must be positive, got {cap}");
        self.dc_cap = Some(cap);
    }

    /// Removes the cap (full performance).
    pub fn clear_cap(&mut self) {
        self.dc_cap = None;
    }

    /// The cap translated to the AC domain given the PSU bank efficiency
    /// `k` (AC = DC / k).
    pub fn ac_cap(&self, efficiency: Ratio) -> Option<Watts> {
        self.dc_cap.map(|c| c / efficiency)
    }

    /// First-order approach of `current` toward `target` over `dt`: the
    /// settling dynamic shared by capping and uncapping transients.
    pub fn approach(&self, current: Watts, target: Watts, dt: Seconds) -> Watts {
        let alpha = 1.0 - (-dt.as_f64() / self.tau.as_f64()).exp();
        current + (target - current) * alpha
    }
}

impl Default for NodeManager {
    fn default() -> Self {
        NodeManager::new()
    }
}

impl fmt::Display for NodeManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dc_cap {
            Some(cap) => write!(f, "node manager [DC cap {cap:.0}]"),
            None => write!(f, "node manager [uncapped]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_lifecycle() {
        let mut nm = NodeManager::new();
        assert_eq!(nm.dc_cap(), None);
        nm.set_dc_cap(Watts::new(400.0));
        assert_eq!(nm.dc_cap(), Some(Watts::new(400.0)));
        nm.clear_cap();
        assert_eq!(nm.dc_cap(), None);
    }

    #[test]
    fn ac_cap_conversion() {
        let mut nm = NodeManager::new();
        nm.set_dc_cap(Watts::new(376.0));
        let ac = nm.ac_cap(Ratio::new(0.94)).unwrap();
        assert!((ac.as_f64() - 400.0).abs() < 1e-9);
        assert_eq!(NodeManager::new().ac_cap(Ratio::new(0.94)), None);
    }

    #[test]
    fn settles_within_six_seconds() {
        let nm = NodeManager::new();
        let target = Watts::new(300.0);
        let mut p = Watts::new(500.0);
        for _ in 0..6 {
            p = nm.approach(p, target, Seconds::new(1.0));
        }
        // Within 2 % of the 200 W step after 6 s.
        assert!((p - target).as_f64().abs() < 0.02 * 200.0);
    }

    #[test]
    fn approach_converges_monotonically() {
        let nm = NodeManager::new();
        let target = Watts::new(250.0);
        let mut p = Watts::new(450.0);
        let mut prev_gap = (p - target).as_f64().abs();
        for _ in 0..20 {
            p = nm.approach(p, target, Seconds::new(1.0));
            let gap = (p - target).as_f64().abs();
            assert!(gap < prev_gap);
            prev_gap = gap;
        }
    }

    #[test]
    #[should_panic(expected = "DC cap must be positive")]
    fn zero_cap_rejected() {
        NodeManager::new().set_dc_cap(Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "time constant")]
    fn zero_tau_rejected() {
        let _ = NodeManager::new().with_tau(Seconds::ZERO);
    }

    #[test]
    fn display() {
        let mut nm = NodeManager::new();
        assert_eq!(nm.to_string(), "node manager [uncapped]");
        nm.set_dc_cap(Watts::new(350.0));
        assert_eq!(nm.to_string(), "node manager [DC cap 350 W]");
    }
}
