//! Property-based tests for the server power substrate.

use proptest::prelude::*;

use capmaestro_server::{PsuBank, Server, ServerConfig, ServerPowerModel};
use capmaestro_units::{Ratio, Seconds, Watts};

proptest! {
    /// Effective shares of a bank always sum to one while any supply
    /// carries load.
    #[test]
    fn shares_sum_to_one(weights in prop::collection::vec(0.1f64..10.0, 1..5)) {
        let bank = PsuBank::new(
            weights
                .iter()
                .map(|&w| capmaestro_server::PowerSupply::new(w, Ratio::new(0.94)))
                .collect(),
        );
        let total: f64 = bank.effective_shares().iter().map(|r| r.as_f64()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// AC loads split the wall power exactly.
    #[test]
    fn ac_loads_partition_total(split in 0.05f64..0.95, total in 0.0f64..2_000.0) {
        let bank = PsuBank::dual(split, Ratio::new(0.94));
        let loads = bank.ac_loads(Watts::new(total));
        let sum: Watts = loads.iter().sum();
        prop_assert!(sum.approx_eq(Watts::new(total), Watts::new(1e-6)));
    }

    /// AC↔DC conversion roundtrips through the bank efficiency.
    #[test]
    fn ac_dc_roundtrip(dc in 1.0f64..2_000.0, eff in 0.5f64..1.0) {
        let bank = PsuBank::dual(0.6, Ratio::new(eff));
        let ac = bank.total_ac_for_dc(Watts::new(dc));
        prop_assert!(ac >= Watts::new(dc)); // losses
        let back = bank.dc_for_total_ac(ac);
        prop_assert!(back.approx_eq(Watts::new(dc), Watts::new(1e-6)));
    }

    /// The Fan et al. curve is monotone and stays inside the envelope.
    #[test]
    fn power_curve_monotone(u1 in 0.0f64..1.0, du in 0.0f64..1.0) {
        let m = ServerPowerModel::paper_default();
        let u2 = (u1 + du).min(1.0);
        let p1 = m.power_at_utilization(Ratio::new(u1));
        let p2 = m.power_at_utilization(Ratio::new(u2));
        prop_assert!(p2 >= p1 - Watts::new(1e-9));
        prop_assert!(p1 >= m.idle() && p1 <= m.cap_max());
    }

    /// utilization_at_power inverts power_at_utilization.
    #[test]
    fn power_inverse_roundtrip(u in 0.0f64..1.0) {
        let m = ServerPowerModel::paper_default();
        let p = m.power_at_utilization(Ratio::new(u));
        let back = m.utilization_at_power(p);
        prop_assert!((back.as_f64() - u).abs() < 1e-6, "u={u} back={}", back.as_f64());
    }

    /// Cap ratio is always a fraction, zero when uncapped.
    #[test]
    fn cap_ratio_bounds(demand in 160.0f64..490.0, budget in 0.0f64..600.0) {
        let m = ServerPowerModel::paper_default();
        let r = m.cap_ratio(Watts::new(demand), Watts::new(budget));
        prop_assert!(r >= Ratio::ZERO && r <= Ratio::ONE);
        if budget >= demand {
            prop_assert_eq!(r, Ratio::ZERO);
        }
    }

    /// DVFS performance never falls below the dynamic-power ratio and both
    /// are fractions.
    #[test]
    fn perf_exponent_softens_capping(ratio in 0.0f64..1.0) {
        let m = ServerPowerModel::paper_default();
        let perf = m.performance_at_dynamic_ratio(Ratio::new(ratio));
        prop_assert!(perf.as_f64() >= ratio - 1e-12);
        prop_assert!(perf >= Ratio::ZERO && perf <= Ratio::ONE);
    }

    /// Wherever the cap and demand land, a stepped server's power converges
    /// into the envelope and under the enforceable target.
    #[test]
    fn server_converges_to_enforceable_power(
        demand in 160.0f64..490.0,
        cap_dc in 50.0f64..600.0,
    ) {
        let mut server = Server::new(ServerConfig::paper_default());
        server.set_offered_demand(Watts::new(demand));
        server.set_dc_cap(Watts::new(cap_dc));
        for _ in 0..60 {
            server.step(Seconds::new(1.0));
        }
        let power = server.sense().total_ac;
        let m = server.config().model();
        prop_assert!(power >= m.idle() - Watts::new(1e-6));
        prop_assert!(power <= m.cap_max() + Watts::new(1e-6));
        // Power never exceeds demand.
        prop_assert!(power <= Watts::new(demand) + Watts::new(0.5));
        // If the cap binds, power tracks the enforceable target within 2 %.
        let cap_ac = Watts::new(cap_dc) / server.bank().efficiency();
        let target = if Watts::new(demand) <= cap_ac {
            Watts::new(demand)
        } else {
            cap_ac.max(server.min_achievable_ac(Watts::new(demand)))
        };
        prop_assert!(
            power.approx_eq(target, Watts::new(0.02 * 490.0)),
            "power {power} vs target {target}"
        );
    }

    /// Throttle telemetry and achieved power are consistent:
    /// power = idle + (demand − idle) × (1 − throttle).
    #[test]
    fn throttle_power_identity(demand in 170.0f64..490.0, cap_dc in 100.0f64..500.0) {
        let mut server = Server::new(ServerConfig::paper_default());
        server.set_offered_demand(Watts::new(demand));
        server.set_dc_cap(Watts::new(cap_dc));
        server.settle();
        let snap = server.sense();
        let m = server.config().model();
        let reconstructed = m.idle()
            + (Watts::new(demand) - m.idle()) * snap.throttle.complement();
        prop_assert!(
            snap.total_ac.approx_eq(reconstructed, Watts::new(1e-6)),
            "power {} vs reconstructed {reconstructed}",
            snap.total_ac
        );
    }
}
