//! A small threaded HTTP server over `std::net::TcpListener`.
//!
//! Shape: one accept thread feeds accepted connections into an mpsc
//! channel drained by a fixed pool of worker threads. Each worker reads
//! one request (bounded, with a read deadline), hands it to the
//! [`Handler`], writes the response, and closes the connection.
//!
//! Shutdown ordering (also enforced on `Drop`):
//!
//! 1. the [`ShutdownHandle`] flag flips — the accept thread stops
//!    accepting and exits, dropping the listener and the channel sender;
//! 2. workers drain connections already queued or in flight — the closed
//!    channel is their exit signal, so no accepted connection is dropped
//!    without a response;
//! 3. worker threads are joined, then the caller may drop the engine.
//!
//! The accept thread also supervises the pool: a worker killed by a
//! panicking handler is respawned (counted in
//! `capmaestro_serve_worker_respawns_total`), mirroring the
//! `WorkerDeployment` respawn ladder in `capmaestro-core`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use capmaestro_core::obs::{self, names, Recorder};

use crate::http::{parse_request, HttpError, HttpLimits, Request, Response};

/// A request handler. Implementations must be shareable across worker
/// threads; panics are tolerated (the worker is respawned) but cost the
/// in-flight connection its response.
pub trait Handler: Send + Sync + 'static {
    /// Produce the response for one parsed request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Configuration for [`HttpServer::bind`].
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Request-size bounds.
    pub limits: HttpLimits,
    /// Sink for server metrics (requests, client errors, respawns).
    pub recorder: Arc<dyn Recorder>,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: HttpLimits::default(),
            recorder: obs::null_recorder(),
        }
    }
}

impl HttpConfig {
    /// Set the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set both per-connection I/O deadlines.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self.write_timeout = timeout;
        self
    }

    /// Set the request-size bounds.
    pub fn with_limits(mut self, limits: HttpLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the metrics recorder.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }
}

/// Cloneable handle that requests a graceful server shutdown.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the server to stop accepting and drain.
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How long the accept loop sleeps when the listener has nothing for us.
const ACCEPT_IDLE: Duration = Duration::from_millis(2);

/// A running HTTP server; dropping it performs a graceful shutdown.
#[derive(Debug)]
pub struct HttpServer {
    /// The bound local address (useful with ephemeral ports).
    local_addr: SocketAddr,
    /// Shared shutdown flag.
    shutdown: ShutdownHandle,
    /// The accept/supervisor thread, present until shutdown.
    accept_thread: Option<JoinHandle<()>>,
    /// Worker pool handles are owned by the accept thread; this receiver
    /// yields them back at shutdown so they can be joined. (Wrapped in a
    /// `Mutex` only to keep `HttpServer: Sync`; it is drained once.)
    worker_handles: Option<Mutex<Receiver<JoinHandle<()>>>>,
}

/// Everything a worker thread needs to serve connections.
struct WorkerContext {
    /// Shared end of the connection queue.
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    /// The request handler.
    handler: Arc<dyn Handler>,
    /// Per-connection read deadline.
    read_timeout: Duration,
    /// Per-connection write deadline.
    write_timeout: Duration,
    /// Request-size bounds.
    limits: HttpLimits,
    /// Metrics sink.
    recorder: Arc<dyn Recorder>,
}

impl HttpServer {
    /// Bind `config.addr` and start serving `handler`.
    pub fn bind(config: HttpConfig, handler: Arc<dyn Handler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = ShutdownHandle::default();

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = config.workers.max(1);
        // Sized so the accept thread can park every handle (initial pool
        // plus any respawns) without blocking at shutdown.
        let (handle_tx, handle_rx) = mpsc::sync_channel::<JoinHandle<()>>(workers * 64);

        let mut pool: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| spawn_worker(&config, &conn_rx, &handler))
            .collect();

        let accept_shutdown = shutdown.clone();
        let accept_config = config.clone();
        let accept_handler = handler;
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                accept_loop(
                    listener,
                    conn_tx,
                    &accept_shutdown,
                    &accept_config,
                    &conn_rx,
                    &accept_handler,
                    &mut pool,
                );
                // Hand the (possibly respawned) pool back for joining.
                for handle in pool {
                    let _ = handle_tx.send(handle);
                }
            })
            .expect("spawn serve-accept thread");

        Ok(HttpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            worker_handles: Some(Mutex::new(handle_rx)),
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Gracefully stop: stop accepting, drain queued and in-flight
    /// connections, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.request();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        if let Some(handles) = self.worker_handles.take() {
            // The accept thread has exited, so the sender is dropped and
            // this drains without blocking.
            let handles = handles.into_inner().unwrap_or_else(|p| p.into_inner());
            for handle in handles.iter() {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections until shutdown, supervising the worker pool.
fn accept_loop(
    listener: TcpListener,
    conn_tx: Sender<TcpStream>,
    shutdown: &ShutdownHandle,
    config: &HttpConfig,
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
    handler: &Arc<dyn Handler>,
    pool: &mut [JoinHandle<()>],
) {
    let mut dead: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.is_requested() {
            break;
        }
        // Respawn workers killed by panicking handlers.
        for slot in pool.iter_mut() {
            if slot.is_finished() {
                let fresh = spawn_worker(config, conn_rx, handler);
                let old = std::mem::replace(slot, fresh);
                dead.push(old);
                config
                    .recorder
                    .counter_add(names::SERVE_WORKER_RESPAWNS_TOTAL, 1);
            }
        }
        for old in dead.drain(..) {
            let _ = old.join();
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Workers only exit once this sender is dropped, so a
                // send can only fail after shutdown; drop the connection
                // unanswered in that case.
                let _ = conn_tx.send(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => {
                // Transient accept errors (e.g. aborted handshakes);
                // back off briefly and keep serving.
                std::thread::sleep(ACCEPT_IDLE);
            }
        }
    }
    // Dropping conn_tx here closes the channel: workers finish whatever
    // is queued or in flight, then exit.
}

/// Spawn one worker thread over the shared connection queue.
fn spawn_worker(
    config: &HttpConfig,
    conn_rx: &Arc<Mutex<Receiver<TcpStream>>>,
    handler: &Arc<dyn Handler>,
) -> JoinHandle<()> {
    let ctx = WorkerContext {
        rx: Arc::clone(conn_rx),
        handler: Arc::clone(handler),
        read_timeout: config.read_timeout,
        write_timeout: config.write_timeout,
        limits: config.limits,
        recorder: Arc::clone(&config.recorder),
    };
    std::thread::Builder::new()
        .name("serve-worker".to_string())
        .spawn(move || worker_loop(&ctx))
        .expect("spawn serve-worker thread")
}

/// Serve connections from the queue until the channel closes.
fn worker_loop(ctx: &WorkerContext) {
    loop {
        // A poisoned lock only means a sibling worker panicked while
        // holding it; the receiver itself is still sound.
        let next = {
            let guard = match ctx.rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(stream) = next else {
            // Channel closed: accept loop exited, queue drained.
            return;
        };
        handle_connection(ctx, stream);
    }
}

/// Read one request, dispatch it, write the response.
fn handle_connection(ctx: &WorkerContext, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_write_timeout(Some(ctx.write_timeout));

    let response = match read_request(ctx, &mut stream) {
        Ok(Some(request)) => {
            ctx.recorder.counter_add(names::SERVE_REQUESTS_TOTAL, 1);
            ctx.handler.handle(&request)
        }
        Ok(None) => return, // clean close before any bytes — nothing to answer
        Err(error) => {
            ctx.recorder.counter_add(names::SERVE_REQUESTS_TOTAL, 1);
            ctx.recorder
                .counter_add(names::SERVE_CLIENT_ERRORS_TOTAL, 1);
            error.to_response()
        }
    };
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.flush();
}

/// Read until one complete request, a protocol error, or the deadline.
///
/// Returns `Ok(None)` when the peer closes the connection before sending
/// any bytes (a health-check connect-and-drop, not an error).
fn read_request(ctx: &WorkerContext, stream: &mut TcpStream) -> Result<Option<Request>, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + ctx.read_timeout;
    loop {
        match parse_request(&buf, &ctx.limits) {
            crate::http::ParseOutcome::Complete { request, .. } => {
                return Ok(Some(request));
            }
            crate::http::ParseOutcome::Error(error) => return Err(error),
            crate::http::ParseOutcome::Incomplete => {}
        }
        if Instant::now() >= deadline {
            return Err(HttpError::bad_request("request read timed out"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request("truncated request"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::bad_request("request read timed out"));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HttpError::bad_request("connection error while reading")),
        }
    }
}
