//! `capmaestrod` — the CapMaestro serving daemon.
//!
//! Runs the paper's Table 2 priority rig behind the in-tree HTTP
//! observability endpoint (`/metrics`, `/healthz`, `/report`,
//! `POST /budget`). See `capmaestrod --help` and DESIGN.md "Serving
//! mode".

use std::process::ExitCode;

use capmaestro_serve::daemon::{self, DaemonCommand};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match daemon::parse_args(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match command {
        DaemonCommand::Run(config) => match daemon::run(&config) {
            Ok(steps) => {
                println!("capmaestrod: stopped after {steps} simulated seconds");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("capmaestrod: {message}");
                ExitCode::FAILURE
            }
        },
        DaemonCommand::Probe(addr) => match daemon::probe(&addr) {
            Ok(transcript) => {
                print!("{transcript}");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("capmaestrod probe: {message}");
                ExitCode::FAILURE
            }
        },
    }
}
