//! `capmaestro-agent` — one rack worker as an OS process.
//!
//! Connects outbound to a room controller (a `SocketTransport`
//! listener), claims a worker index, and runs the rack loop: gather →
//! metrics, budgets → enforce, advance → step its owned slice of the
//! world. See `capmaestro_serve::agent` for the protocol.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use capmaestro_core::obs::{names, MetricsRegistry};
use capmaestro_serve::agent::{run_agent, AgentConfig};
use capmaestro_serve::rig::RigSpec;

const USAGE: &str = "\
capmaestro-agent — CapMaestro rack agent process

USAGE:
    capmaestro-agent --connect HOST:PORT --worker N --workers-total M
                     [--rig fig2|racks:R:S] [--demand-seed SEED]
                     [--heartbeat-ms N] [--max-connect-attempts N]

OPTIONS:
    --connect HOST:PORT        room controller address (required)
    --worker N                 this agent's worker index (required)
    --workers-total M          fleet size; must match the controller (required)
    --rig SPEC                 rig to build: fig2 (default) or racks:R:S
    --demand-seed SEED         apply the seeded demand schedule while advancing
    --heartbeat-ms N           liveness probe period (default 100)
    --max-connect-attempts N   give up after N failed connects (default: never)
";

struct Args {
    config: AgentConfig,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut connect: Option<String> = None;
    let mut worker: Option<usize> = None;
    let mut workers_total: Option<usize> = None;
    let mut rig = RigSpec::Fig2;
    let mut demand_seed: Option<u64> = None;
    let mut heartbeat = Duration::from_millis(100);
    let mut max_attempts: Option<u64> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--connect" => connect = Some(value_for("--connect")?),
            "--worker" => {
                worker = Some(
                    value_for("--worker")?
                        .parse()
                        .map_err(|_| "--worker needs a non-negative integer".to_string())?,
                );
            }
            "--workers-total" => {
                workers_total = Some(
                    value_for("--workers-total")?
                        .parse()
                        .map_err(|_| "--workers-total needs a positive integer".to_string())?,
                );
            }
            "--rig" => rig = RigSpec::parse(&value_for("--rig")?)?,
            "--demand-seed" => {
                demand_seed = Some(
                    value_for("--demand-seed")?
                        .parse()
                        .map_err(|_| "--demand-seed needs a non-negative integer".to_string())?,
                );
            }
            "--heartbeat-ms" => {
                let ms: u64 = value_for("--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms needs a positive integer".to_string())?;
                if ms == 0 {
                    return Err("--heartbeat-ms must be positive".to_string());
                }
                heartbeat = Duration::from_millis(ms);
            }
            "--max-connect-attempts" => {
                max_attempts = Some(
                    value_for("--max-connect-attempts")?
                        .parse()
                        .map_err(|_| "--max-connect-attempts needs a positive integer".to_string())?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }

    let connect = connect.ok_or("--connect is required")?;
    let worker = worker.ok_or("--worker is required")?;
    let workers_total = workers_total.ok_or("--workers-total is required")?;
    let mut config = AgentConfig::new(connect, worker, workers_total, rig);
    config.heartbeat_interval = heartbeat;
    config.demand_seed = demand_seed;
    config.max_connect_attempts = max_attempts;
    Ok(Args { config })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let registry = Arc::new(MetricsRegistry::new());
    args.config.recorder = registry.clone();

    match run_agent(&args.config) {
        Ok(report) => {
            // One parseable exit line: the partition bench and the ci
            // smoke read these counters.
            let snapshot = registry.snapshot();
            let rtt_count = snapshot
                .histograms
                .iter()
                .find(|h| h.name == names::AGENT_HEARTBEAT_RTT_SECONDS)
                .map(|h| h.count)
                .unwrap_or(0);
            println!(
                "capmaestro-agent: worker={} rounds_enforced={} advances={} \
                 violations_total={} reconnects={} heartbeats_acked={}",
                args.config.worker,
                report.rounds_enforced,
                report.advances,
                report.violations_total,
                report.reconnects,
                rtt_count,
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("capmaestro-agent: {msg}");
            ExitCode::FAILURE
        }
    }
}
