//! The endpoint table mapping parsed requests onto [`ServeState`].
//!
//! | Endpoint        | Method | Body                                         |
//! |-----------------|--------|----------------------------------------------|
//! | `/metrics`      | GET    | Prometheus text exposition of the registry   |
//! | `/healthz`      | GET    | JSON liveness (200 ok / 503 unhealthy)       |
//! | `/report`       | GET    | JSON snapshot of the latest `RoundReport`    |
//! | `/budget`       | POST   | JSON array of per-tree root budgets in watts |
//!
//! Known paths with the wrong method answer `405`; unknown paths `404`.
//! Every 4xx bumps `capmaestro_serve_client_errors_total`.

use std::sync::Arc;

use capmaestro_core::obs::{json, names, prometheus, Recorder};

use crate::http::{Request, Response};
use crate::server::Handler;
use crate::state::ServeState;

/// The daemon's [`Handler`]: routes requests onto shared serve state.
#[derive(Debug, Clone)]
pub struct Router {
    /// State published by the engine thread.
    state: Arc<ServeState>,
    /// Metrics sink for request/error counters.
    recorder: Arc<dyn Recorder>,
}

impl Router {
    /// A router over `state`, counting into `recorder`.
    pub fn new(state: Arc<ServeState>, recorder: Arc<dyn Recorder>) -> Self {
        Router { state, recorder }
    }

    /// The shared state this router serves.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Count a client error and return the response unchanged.
    fn client_error(&self, response: Response) -> Response {
        self.recorder
            .counter_add(names::SERVE_CLIENT_ERRORS_TOTAL, 1);
        response
    }

    /// `GET /metrics`.
    fn metrics(&self) -> Response {
        Response::new(200, prometheus::CONTENT_TYPE, self.state.metrics_page())
    }

    /// `GET /healthz`.
    fn healthz(&self) -> Response {
        let health = self.state.health();
        let status = if health.healthy { 200 } else { 503 };
        Response::new(status, json::CONTENT_TYPE, health.to_json())
    }

    /// `GET /report`.
    fn report(&self) -> Response {
        match self.state.report_json() {
            Some(body) => Response::new(200, json::CONTENT_TYPE, body),
            None => Response::text(503, "no control round has completed yet\n"),
        }
    }

    /// `POST /budget`.
    fn budget(&self, request: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return self.client_error(Response::text(400, "budget body is not valid utf-8\n"));
        };
        let Some(budgets) = parse_budgets(body) else {
            return self.client_error(Response::text(
                400,
                "expected a json array of watts, e.g. [700, 700]\n",
            ));
        };
        match self.state.stage_budgets(&budgets) {
            Ok(count) => {
                self.recorder
                    .counter_add(names::SERVE_BUDGET_UPDATES_TOTAL, 1);
                Response::new(
                    200,
                    json::CONTENT_TYPE,
                    format!("{{\"status\":\"staged\",\"budgets\":{count}}}\n"),
                )
            }
            Err(error) => self.client_error(Response::text(400, format!("{error}\n"))),
        }
    }
}

impl Handler for Router {
    fn handle(&self, request: &Request) -> Response {
        self.recorder.counter_add(names::SERVE_REQUESTS_TOTAL, 1);
        match (request.method.as_str(), request.path()) {
            ("GET", "/metrics") => self.metrics(),
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/report") => self.report(),
            ("POST", "/budget") => self.budget(request),
            (_, "/metrics" | "/healthz" | "/report" | "/budget") => self.client_error(
                Response::text(405, "method not allowed on this endpoint\n"),
            ),
            _ => self.client_error(Response::text(404, "no such endpoint\n")),
        }
    }
}

/// Parse a `POST /budget` body: a JSON array of numbers (`[700, 700]`)
/// or, as a convenience for single-tree rigs, one bare number (`1240`).
fn parse_budgets(body: &str) -> Option<Vec<f64>> {
    let trimmed = body.trim();
    if let Some(inner) = trimmed
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
    {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(Vec::new());
        }
        inner
            .split(',')
            .map(|part| part.trim().parse::<f64>().ok())
            .collect()
    } else {
        trimmed.parse::<f64>().ok().map(|w| vec![w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budget_bodies() {
        assert_eq!(parse_budgets("[700, 700]"), Some(vec![700.0, 700.0]));
        assert_eq!(parse_budgets(" [1240.5] "), Some(vec![1240.5]));
        assert_eq!(parse_budgets("1240"), Some(vec![1240.0]));
        assert_eq!(parse_budgets("[]"), Some(Vec::new()));
        assert_eq!(parse_budgets("[700, seven]"), None);
        assert_eq!(parse_budgets("{\"watts\": 700}"), None);
        assert_eq!(parse_budgets(""), None);
    }
}
