//! The endpoint table mapping parsed requests onto [`ServeState`].
//!
//! The versioned `/v1` surface:
//!
//! | Endpoint                          | Method | Body                                    |
//! |-----------------------------------|--------|-----------------------------------------|
//! | `/v1/metrics`                     | GET    | Prometheus text exposition               |
//! | `/v1/healthz`                     | GET    | JSON liveness (200 ok / 503 unhealthy)   |
//! | `/v1/report`                      | GET    | JSON snapshot of the latest round        |
//! | `/v1/events?since=SEQ`            | GET    | operator events with `seq > SEQ`         |
//! | `/v1/trace?last_s=N`              | GET    | Perfetto JSON trace (optionally trailing N s) |
//! | `/v1/budget`                      | POST   | JSON array of per-tree root watts        |
//! | `/v1/trees/{id}/budget`           | PUT    | `{"watts": W}` or a bare number          |
//! | `/v1/groups/{tree}.{node}/priority` | PATCH | `{"priority": P}` or `{"priority": null}` |
//! | `/v1/servers/{id}:drain`          | POST   | none                                     |
//! | `/v1/servers/{id}:undrain`        | POST   | none                                     |
//! | `/v1/allocator`                   | PUT    | `{"policy": "waterfall"}` or bare name   |
//!
//! Mutations accept an `Idempotency-Key` header: retrying with the same
//! key and the same body answers the original event's sequence number
//! without appending; the same key with a *different* body is a `409`.
//!
//! The unversioned paths (`/metrics`, `/healthz`, `/report`, `/budget`)
//! remain as aliases answering with a `Deprecation: true` header. Known
//! paths with the wrong method answer `405` with an `Allow` header
//! naming the accepted method; unknown paths `404`. Every
//! error body is the one JSON envelope
//! `{"error":{"code":...,"message":...}}` ([`ApiError`]), and every 4xx
//! bumps `capmaestro_serve_client_errors_total`.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use capmaestro_core::obs::trace::TraceRecorder;
use capmaestro_core::obs::{json, names, prometheus, Recorder};
use capmaestro_core::AllocatorKind;
use capmaestro_topology::ServerId;

use crate::http::{Request, Response};
use crate::server::Handler;
use crate::state::{OpRejection, ServeState};

/// A structured API failure: the HTTP status, a stable machine-readable
/// code, and a human-readable message. Rendered as the single error
/// envelope every handler answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status code.
    pub status: u16,
    /// A stable machine-readable code (`"bad_request"`, `"not_found"`,
    /// `"idempotency_conflict"`, …).
    pub code: &'static str,
    /// What went wrong, for humans.
    pub message: String,
}

impl ApiError {
    /// An error with an explicit status and code.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code,
            message: message.into(),
        }
    }

    /// `400 bad_request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(400, "bad_request", message)
    }

    /// `404 not_found`.
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError::new(404, "not_found", message)
    }

    /// `405 method_not_allowed`.
    pub fn method_not_allowed() -> Self {
        ApiError::new(
            405,
            "method_not_allowed",
            "method not allowed on this endpoint",
        )
    }

    /// `503 unavailable`.
    pub fn unavailable(message: impl Into<String>) -> Self {
        ApiError::new(503, "unavailable", message)
    }

    /// The JSON `{"error":{...}}` envelope body.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.message.len());
        out.push_str("{\"error\":{\"code\":\"");
        out.push_str(self.code);
        out.push_str("\",\"message\":");
        escape_json_str(&mut out, &self.message);
        out.push_str("}}\n");
        out
    }

    /// The HTTP response announcing this error.
    pub fn to_response(&self) -> Response {
        Response::new(self.status, json::CONTENT_TYPE, self.to_json())
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "api {} {}: {}", self.status, self.code, self.message)
    }
}

impl Error for ApiError {}

impl From<&OpRejection> for ApiError {
    fn from(rejection: &OpRejection) -> Self {
        let message = rejection.to_string();
        match rejection {
            OpRejection::Budget(_) => ApiError::new(400, "bad_budget", message),
            OpRejection::UnknownTree { .. }
            | OpRejection::UnknownGroup { .. }
            | OpRejection::UnknownServer(_) => ApiError::new(404, "not_found", message),
            OpRejection::Unsupported(_) => ApiError::new(501, "not_implemented", message),
            OpRejection::Conflict { .. } => {
                ApiError::new(409, "idempotency_conflict", message)
            }
            OpRejection::KeyTooLong { .. } => ApiError::new(400, "bad_request", message),
            OpRejection::Internal(_) => ApiError::new(500, "internal", message),
        }
    }
}

/// Append `s` as a JSON string literal with the mandatory escapes.
fn escape_json_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The daemon's [`Handler`]: routes requests onto shared serve state.
#[derive(Debug, Clone)]
pub struct Router {
    /// State published by the engine thread.
    state: Arc<ServeState>,
    /// Metrics sink for request/error counters.
    recorder: Arc<dyn Recorder>,
    /// Timeline exporter behind `GET /v1/trace`; `None` answers 503
    /// (tracing not enabled in this deployment).
    trace: Option<Arc<TraceRecorder>>,
}

impl Router {
    /// A router over `state`, counting into `recorder`.
    pub fn new(state: Arc<ServeState>, recorder: Arc<dyn Recorder>) -> Self {
        Router {
            state,
            recorder,
            trace: None,
        }
    }

    /// Serve `GET /v1/trace` from this trace recorder (builder style).
    pub fn with_trace(mut self, trace: Arc<TraceRecorder>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The shared state this router serves.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Render an [`ApiError`], counting 4xx into the client-error
    /// counter.
    fn error(&self, error: ApiError) -> Response {
        if (400..500).contains(&error.status) {
            self.recorder
                .counter_add(names::SERVE_CLIENT_ERRORS_TOTAL, 1);
        }
        error.to_response()
    }

    /// `GET /v1/metrics`.
    fn metrics(&self) -> Response {
        Response::new(200, prometheus::CONTENT_TYPE, self.state.metrics_page())
    }

    /// `GET /v1/healthz`.
    fn healthz(&self) -> Response {
        let health = self.state.health();
        let status = if health.healthy { 200 } else { 503 };
        Response::new(status, json::CONTENT_TYPE, health.to_json())
    }

    /// `GET /v1/report`.
    fn report(&self) -> Response {
        match self.state.report_json() {
            Some(body) => Response::new(200, json::CONTENT_TYPE, body),
            None => ApiError::unavailable("no control round has completed yet").to_response(),
        }
    }

    /// `GET /v1/events?since=SEQ`.
    fn events(&self, request: &Request) -> Response {
        let since = match request.query_param("since") {
            None => 0,
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    return self.error(ApiError::bad_request(
                        "since must be a non-negative integer sequence number",
                    ))
                }
            },
        };
        Response::new(200, json::CONTENT_TYPE, self.state.events_json(since))
    }

    /// `GET /v1/trace?last_s=N`: the retained timeline as a Perfetto
    /// JSON trace document, optionally cut to the trailing `N` simulated
    /// seconds. Non-destructive, so repeated downloads are idempotent.
    fn trace(&self, request: &Request) -> Response {
        let Some(trace) = &self.trace else {
            return self.error(ApiError::unavailable(
                "trace export is not enabled in this deployment",
            ));
        };
        let last_s = match request.query_param("last_s") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) => Some(n),
                Err(_) => {
                    return self.error(ApiError::bad_request(
                        "last_s must be a non-negative integer number of seconds",
                    ))
                }
            },
        };
        Response::new(
            200,
            capmaestro_core::obs::trace::CONTENT_TYPE,
            trace.render(last_s),
        )
    }

    /// A `405` carrying the `Allow` header RFC 9110 requires.
    fn method_not_allowed(&self, allow: &'static str) -> Response {
        self.error(ApiError::method_not_allowed())
            .with_header("Allow", allow)
    }

    /// A successful mutation: the event's sequence number and whether it
    /// was an idempotent replay.
    fn staged(&self, outcome: capmaestro_core::oplog::AppendOutcome) -> Response {
        self.recorder
            .counter_add(names::SERVE_BUDGET_UPDATES_TOTAL, 1);
        Response::new(
            200,
            json::CONTENT_TYPE,
            format!(
                "{{\"status\":\"staged\",\"seq\":{},\"replayed\":{}}}\n",
                outcome.seq(),
                outcome.replayed()
            ),
        )
    }

    /// `POST /v1/budget` (and the legacy `/budget` alias): a full
    /// per-tree root-budget vector.
    fn budget(&self, request: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return self.error(ApiError::bad_request("budget body is not valid utf-8"));
        };
        let Some(budgets) = parse_budgets(body) else {
            return self.error(ApiError::bad_request(
                "expected a json array of watts, e.g. [700, 700]",
            ));
        };
        match self.state.stage_budgets(&budgets, idempotency_key(request)) {
            Ok(outcome) => self.staged(outcome),
            Err(rejection) => self.error(ApiError::from(&rejection)),
        }
    }

    /// `PUT /v1/trees/{id}/budget`.
    fn tree_budget(&self, request: &Request, tree: &str) -> Response {
        let Ok(tree) = tree.parse::<u32>() else {
            return self.error(ApiError::bad_request("tree id must be an integer index"));
        };
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return self.error(ApiError::bad_request("budget body is not valid utf-8"));
        };
        let Some(watts) = parse_number_body(body, "watts") else {
            return self.error(ApiError::bad_request(
                "expected {\"watts\": W} or a bare number",
            ));
        };
        match self
            .state
            .stage_tree_budget(tree, watts, idempotency_key(request))
        {
            Ok(outcome) => self.staged(outcome),
            Err(rejection) => self.error(ApiError::from(&rejection)),
        }
    }

    /// `PATCH /v1/groups/{tree}.{node}/priority`.
    fn group_priority(&self, request: &Request, group: &str) -> Response {
        let parsed = group.split_once('.').and_then(|(tree, node)| {
            Some((tree.parse::<u32>().ok()?, node.parse::<u32>().ok()?))
        });
        let Some((tree, node)) = parsed else {
            return self.error(ApiError::bad_request(
                "group id must be {tree}.{node}, e.g. 0.2",
            ));
        };
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return self.error(ApiError::bad_request("priority body is not valid utf-8"));
        };
        let priority = match parse_priority_body(body) {
            Some(p) => p,
            None => {
                return self.error(ApiError::bad_request(
                    "expected {\"priority\": P} with P in 0..=255, or {\"priority\": null} to clear",
                ))
            }
        };
        match self
            .state
            .stage_group_priority(tree, node, priority, idempotency_key(request))
        {
            Ok(outcome) => self.staged(outcome),
            Err(rejection) => self.error(ApiError::from(&rejection)),
        }
    }

    /// `POST /v1/servers/{id}:drain` / `:undrain`.
    fn server_enabled(&self, request: &Request, server: &str, enabled: bool) -> Response {
        let Ok(server) = server.parse::<u32>() else {
            return self.error(ApiError::bad_request("server id must be an integer"));
        };
        match self.state.stage_server_enabled(
            ServerId(server),
            enabled,
            idempotency_key(request),
        ) {
            Ok(outcome) => self.staged(outcome),
            Err(rejection) => self.error(ApiError::from(&rejection)),
        }
    }

    /// `PUT /v1/allocator`.
    fn allocator(&self, request: &Request) -> Response {
        let Ok(body) = std::str::from_utf8(&request.body) else {
            return self.error(ApiError::bad_request("allocator body is not valid utf-8"));
        };
        let Some(name) = parse_string_body(body, "policy") else {
            return self.error(ApiError::bad_request(
                "expected {\"policy\": \"waterfall\"} or a bare policy name",
            ));
        };
        let Ok(kind) = name.parse::<AllocatorKind>() else {
            return self.error(ApiError::bad_request(format!(
                "unknown policy {name:?}; valid policies: waterfall, waterfilling, fair_share"
            )));
        };
        match self.state.stage_allocator(kind, idempotency_key(request)) {
            Ok(outcome) => self.staged(outcome),
            Err(rejection) => self.error(ApiError::from(&rejection)),
        }
    }

    /// Routes under `/v1/` after the static table, or an error.
    fn route_v1_dynamic(&self, request: &Request, path: &str) -> Response {
        if let Some(rest) = path.strip_prefix("/v1/trees/") {
            if let Some(tree) = rest.strip_suffix("/budget") {
                if request.method != "PUT" {
                    return self.method_not_allowed("PUT");
                }
                return self.tree_budget(request, tree);
            }
        }
        if let Some(rest) = path.strip_prefix("/v1/groups/") {
            if let Some(group) = rest.strip_suffix("/priority") {
                if request.method != "PATCH" {
                    return self.method_not_allowed("PATCH");
                }
                return self.group_priority(request, group);
            }
        }
        if let Some(rest) = path.strip_prefix("/v1/servers/") {
            let action = rest
                .strip_suffix(":drain")
                .map(|server| (server, false))
                .or_else(|| rest.strip_suffix(":undrain").map(|server| (server, true)));
            if let Some((server, enabled)) = action {
                if request.method != "POST" {
                    return self.method_not_allowed("POST");
                }
                return self.server_enabled(request, server, enabled);
            }
        }
        self.error(ApiError::not_found("no such endpoint"))
    }
}

/// The first non-empty `Idempotency-Key` header value, if any.
fn idempotency_key(request: &Request) -> Option<&str> {
    request
        .header("idempotency-key")
        .map(str::trim)
        .filter(|key| !key.is_empty())
}

impl Handler for Router {
    fn handle(&self, request: &Request) -> Response {
        self.recorder.counter_add(names::SERVE_REQUESTS_TOTAL, 1);
        let path = request.path();
        match (request.method.as_str(), path) {
            // The versioned surface.
            ("GET", "/v1/metrics") => self.metrics(),
            ("GET", "/v1/healthz") => self.healthz(),
            ("GET", "/v1/report") => self.report(),
            ("GET", "/v1/events") => self.events(request),
            ("GET", "/v1/trace") => self.trace(request),
            ("POST", "/v1/budget") => self.budget(request),
            ("PUT", "/v1/allocator") => self.allocator(request),
            // Legacy aliases: same behavior, plus a deprecation marker.
            ("GET", "/metrics") => self.metrics().with_header("Deprecation", "true"),
            ("GET", "/healthz") => self.healthz().with_header("Deprecation", "true"),
            ("GET", "/report") => self.report().with_header("Deprecation", "true"),
            ("POST", "/budget") => self.budget(request).with_header("Deprecation", "true"),
            // Known paths, wrong method: 405 + the accepted method.
            (
                _,
                "/v1/metrics" | "/v1/healthz" | "/v1/report" | "/v1/events" | "/v1/trace"
                | "/metrics" | "/healthz" | "/report",
            ) => self.method_not_allowed("GET"),
            (_, "/v1/budget" | "/budget") => self.method_not_allowed("POST"),
            (_, "/v1/allocator") => self.method_not_allowed("PUT"),
            _ if path.starts_with("/v1/") => self.route_v1_dynamic(request, path),
            _ => self.error(ApiError::not_found("no such endpoint")),
        }
    }
}

/// Parse a budget-vector body: a JSON array of numbers (`[700, 700]`)
/// or, as a convenience for single-tree rigs, one bare number (`1240`).
fn parse_budgets(body: &str) -> Option<Vec<f64>> {
    let trimmed = body.trim();
    if let Some(inner) = trimmed
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
    {
        let inner = inner.trim();
        if inner.is_empty() {
            return Some(Vec::new());
        }
        inner
            .split(',')
            .map(|part| part.trim().parse::<f64>().ok())
            .collect()
    } else {
        trimmed.parse::<f64>().ok().map(|w| vec![w])
    }
}

/// The value of single-field object bodies: `{"field": <raw>}` yields
/// the raw value text, and a bare non-object body yields itself — the
/// two shapes the `/v1` mutation endpoints accept.
fn single_field_raw<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    let trimmed = body.trim();
    let Some(inner) = trimmed
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
    else {
        return Some(trimmed);
    };
    let (name, value) = inner.split_once(':')?;
    let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
    (name == field).then(|| value.trim())
}

/// Parse `{"field": N}` or a bare number.
fn parse_number_body(body: &str, field: &str) -> Option<f64> {
    single_field_raw(body, field)?.parse::<f64>().ok()
}

/// Parse `{"field": "s"}`, a bare quoted string, or a bare word.
fn parse_string_body<'a>(body: &'a str, field: &str) -> Option<&'a str> {
    let raw = single_field_raw(body, field)?;
    let unquoted = raw
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or(raw);
    (!unquoted.is_empty()).then_some(unquoted)
}

/// Parse a priority body: `{"priority": P}` sets, `{"priority": null}`
/// (or bare `null`) clears. Returns `Some(Some(p))`, `Some(None)`, or
/// `None` on a malformed body.
fn parse_priority_body(body: &str) -> Option<Option<u8>> {
    let raw = single_field_raw(body, "priority")?;
    if raw == "null" {
        return Some(None);
    }
    raw.parse::<u8>().ok().map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budget_bodies() {
        assert_eq!(parse_budgets("[700, 700]"), Some(vec![700.0, 700.0]));
        assert_eq!(parse_budgets(" [1240.5] "), Some(vec![1240.5]));
        assert_eq!(parse_budgets("1240"), Some(vec![1240.0]));
        assert_eq!(parse_budgets("[]"), Some(Vec::new()));
        assert_eq!(parse_budgets("[700, seven]"), None);
        assert_eq!(parse_budgets("{\"watts\": 700}"), None);
        assert_eq!(parse_budgets(""), None);
    }

    #[test]
    fn parses_single_field_bodies() {
        assert_eq!(parse_number_body("{\"watts\": 1240}", "watts"), Some(1240.0));
        assert_eq!(parse_number_body(" 1240.5 ", "watts"), Some(1240.5));
        assert_eq!(parse_number_body("{\"other\": 1}", "watts"), None);
        assert_eq!(parse_number_body("{\"watts\": x}", "watts"), None);
        assert_eq!(
            parse_string_body("{\"policy\": \"fair_share\"}", "policy"),
            Some("fair_share")
        );
        assert_eq!(parse_string_body("waterfall", "policy"), Some("waterfall"));
        assert_eq!(parse_string_body("", "policy"), None);
        assert_eq!(parse_priority_body("{\"priority\": 3}"), Some(Some(3)));
        assert_eq!(parse_priority_body("{\"priority\": null}"), Some(None));
        assert_eq!(parse_priority_body("null"), Some(None));
        assert_eq!(parse_priority_body("{\"priority\": 300}"), None);
    }

    #[test]
    fn api_error_envelope_is_well_formed_json() {
        let error = ApiError::bad_request("a \"quoted\" reason\nwith newline");
        let body = error.to_json();
        assert!(body.starts_with("{\"error\":{\"code\":\"bad_request\""));
        assert!(body.contains("\\\"quoted\\\""));
        assert!(body.contains("\\n"));
        assert_eq!(ApiError::method_not_allowed().status, 405);
        assert_eq!(ApiError::not_found("x").status, 404);
    }
}
