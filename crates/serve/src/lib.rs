//! Long-running serving mode for CapMaestro.
//!
//! The `obs` exporters (`prometheus::render`, `json::snapshot`) render on
//! demand; this crate makes them *scrapeable while a run is in flight* —
//! the serving mode the paper's §4.3 control plane implies (a persistent
//! daemon in the data center, not a batch job). Everything is built on
//! `std::net` — no new dependencies, matching the workspace's offline
//! constraint.
//!
//! Layers, bottom up:
//!
//! - [`http`] — a minimal HTTP/1.1 request parser (bounded head and body,
//!   strict grammar, fuzzed) and response writer. One request per
//!   connection, `Connection: close` always.
//! - [`server`] — [`server::HttpServer`]: a `TcpListener` accept loop, a
//!   small worker-thread pool with panic respawn, per-connection
//!   read/write timeouts, and a graceful [`server::ShutdownHandle`]
//!   (stop accepting → drain in-flight → join).
//! - [`state`] — [`state::ServeState`]: the shared-state seam between the
//!   engine thread and HTTP workers. Handlers only ever read pre-published
//!   state or append validated events to the operator log; they never
//!   touch the engine. The engine thread drains the log at each round
//!   boundary ([`state::ServeState::reconcile`]) and converges the live
//!   plane onto the declared [`capmaestro_core::oplog::DesiredState`].
//! - [`router`] — the versioned `/v1` endpoint table: `GET /v1/metrics`
//!   (Prometheus text exposition of the live registry), `GET /v1/healthz`
//!   (round liveness + degradation-ladder state + oplog watermarks),
//!   `GET /v1/report` (JSON snapshot of the latest `RoundReport`),
//!   `GET /v1/events?since=seq` (the operator event log), and the
//!   mutation surface — `POST /v1/budget`, `PUT /v1/trees/{id}/budget`,
//!   `PATCH /v1/groups/{tree}.{node}/priority`,
//!   `POST /v1/servers/{id}:drain` / `:undrain`, `PUT /v1/allocator` —
//!   all idempotency-keyed appends to the log, applied at the next round
//!   boundary. Legacy unversioned paths stay as aliases that answer with
//!   a `Deprecation: true` header. Failures share one JSON error
//!   envelope ([`router::ApiError`]).
//! - [`daemon`] — the `capmaestrod` run loop: a seeded [`capmaestro_sim`]
//!   scenario stepped in real or accelerated time behind the server, plus
//!   the `--probe` smoke client ci.sh uses.
//! - [`client`] — a tiny blocking HTTP client for tests and the probe;
//!   its response parser doubles as the well-formedness oracle for the
//!   parser fuzz suite.
//!
//! The distributed control plane rides the same TCP stack:
//!
//! - [`frame`] — deadline-bounded length-prefixed frame I/O over
//!   `TcpStream`, wrapping the versioned codec in `capmaestro_core::wire`.
//! - [`rig`] — the deterministic rig vocabulary controller and agents
//!   build independently (no topology ever crosses the wire).
//! - [`socket`] — [`socket::SocketTransport`]: the room controller's
//!   listener-side `Transport` implementation (outbound agents,
//!   heartbeat liveness, reconnect-as-respawn).
//! - [`agent`] — the rack agent loop behind the `capmaestro-agent`
//!   binary: one worker index, a local farm of owned servers, jittered
//!   reconnect backoff.
//!
//! See DESIGN.md "Serving mode" for the endpoint table, health semantics,
//! and the shutdown protocol, and "Distributed control plane" for the
//! wire format and partition semantics.

pub mod agent;
pub mod client;
pub mod daemon;
pub mod frame;
pub mod http;
pub mod rig;
pub mod router;
pub mod server;
pub mod socket;
pub mod state;

pub use agent::{run_agent, AgentConfig, AgentReport};
pub use frame::{write_frame, FrameReader};
pub use http::{HttpError, HttpLimits, Request, Response};
pub use rig::{build_owned_farm, build_rig, rig_assignments, DistRig, RigSpec};
pub use router::{ApiError, Router};
pub use server::{Handler, HttpConfig, HttpServer, ShutdownHandle};
pub use socket::{SocketTransport, SocketTransportConfig};
pub use state::{BudgetError, HealthSnapshot, OpRejection, ServeState};
