//! The shared-state seam between the engine thread and HTTP workers.
//!
//! HTTP handlers never touch the engine. Reads go through state the
//! engine thread copies out after every step ([`ServeState::publish`]);
//! mutations go through the operator event log: a handler validates the
//! request against the published capability view, appends an
//! [`Op`] to the [`OpLog`] (idempotency-keyed, file-backed when the
//! daemon runs with `--oplog`), and answers with the event's sequence
//! number. The engine thread — the single writer — drains new events at
//! each round boundary ([`ServeState::reconcile`]), folds them into the
//! [`DesiredState`], diffs declared against live, and converges the
//! plane through `Engine::apply_reconcile_plan`. A quiescent log yields
//! an empty plan, so scraped-vs-unscraped runs stay bit-identical.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use capmaestro_core::obs::{json, names, prometheus, MetricsRegistry, Recorder};
use capmaestro_core::oplog::{
    plan, AppendOutcome, DesiredState, Envelope, Op, OpLog, OplogError,
};
use capmaestro_sim::Engine;
use capmaestro_topology::ServerId;
use capmaestro_units::Watts;

/// Mutable health fields, updated by the engine thread on every step.
#[derive(Debug, Default)]
struct HealthInner {
    /// Wall-clock instant of the last completed control round.
    last_round: Option<Instant>,
    /// Control rounds completed since the daemon started.
    rounds_total: u64,
    /// Simulated seconds elapsed.
    sim_seconds: u64,
    /// Servers currently degraded to last-known-good telemetry.
    stale_servers: usize,
    /// Rack workers currently budgeted from fail-safe metrics
    /// (distributed deployments only; always 0 for an in-process engine).
    stale_racks: usize,
    /// Number of control trees (the expected budget arity).
    trees: usize,
    /// Sequence number of the newest oplog event.
    oplog_head: u64,
    /// Sequence number up to which the reconciler has converged the
    /// live plane.
    applied_seq: u64,
}

/// Point-in-time health as served by `GET /v1/healthz`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Whether a round completed within the staleness window.
    pub healthy: bool,
    /// Whether any server is running on last-known-good telemetry
    /// (the fail-safe degradation ladder is engaged).
    pub degraded: bool,
    /// Control rounds completed since the daemon started.
    pub rounds_total: u64,
    /// Simulated seconds elapsed.
    pub sim_seconds: u64,
    /// Wall-clock seconds since the last round, if any round ran.
    pub last_round_age_s: Option<f64>,
    /// The configured control period, for scrapers to contextualize age.
    pub control_period_s: u64,
    /// Count of servers on stale telemetry.
    pub stale_servers: usize,
    /// Count of rack workers riding fail-safe budgets (partitioned or
    /// silent agents in a distributed deployment).
    pub stale_racks: usize,
    /// Number of control trees.
    pub trees: usize,
    /// Sequence number of the newest operator event.
    pub oplog_head: u64,
    /// Sequence number the reconciler has converged up to; lagging
    /// `oplog_head` means events await the next round boundary.
    pub applied_seq: u64,
}

impl HealthSnapshot {
    /// Render as the `/v1/healthz` JSON body.
    pub fn to_json(&self) -> String {
        let status = if self.healthy { "ok" } else { "unhealthy" };
        let age = match self.last_round_age_s {
            Some(age) => format!("{age:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"status\":\"{status}\",\"degraded\":{},\"rounds_total\":{},\"sim_seconds\":{},\"last_round_age_s\":{age},\"control_period_s\":{},\"stale_servers\":{},\"stale_racks\":{},\"trees\":{},\"oplog_head\":{},\"applied_seq\":{}}}\n",
            self.degraded,
            self.rounds_total,
            self.sim_seconds,
            self.control_period_s,
            self.stale_servers,
            self.stale_racks,
            self.trees,
            self.oplog_head,
            self.applied_seq,
        )
    }
}

/// Why a budget payload was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The payload had the wrong number of budgets for the tree count.
    WrongArity {
        /// Budgets supplied.
        got: usize,
        /// Trees in the control plane.
        want: usize,
    },
    /// A budget was NaN or infinite.
    NotFinite,
    /// A budget fell outside the configured bounds.
    OutOfBounds {
        /// The offending value in watts.
        value: f64,
        /// Inclusive lower bound in watts.
        min: f64,
        /// Inclusive upper bound in watts.
        max: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::WrongArity { got, want } => {
                write!(f, "expected {want} budgets (one per tree), got {got}")
            }
            BudgetError::NotFinite => write!(f, "budgets must be finite numbers"),
            BudgetError::OutOfBounds { value, min, max } => {
                write!(f, "budget {value} W outside allowed range [{min}, {max}] W")
            }
        }
    }
}

impl Error for BudgetError {}

/// Why an operator mutation was refused before reaching the log.
#[derive(Debug)]
pub enum OpRejection {
    /// A budget failed bounds or arity validation.
    Budget(
        /// The specific budget failure.
        BudgetError,
    ),
    /// The tree index does not exist in the live plane.
    UnknownTree {
        /// The requested tree index.
        tree: u32,
        /// How many trees the plane has.
        trees: usize,
    },
    /// The group node index does not exist in that tree's arena.
    UnknownGroup {
        /// The requested tree index.
        tree: u32,
        /// The requested node index.
        node: u32,
    },
    /// The server id is not in the farm.
    UnknownServer(
        /// The requested server.
        ServerId,
    ),
    /// This deployment cannot serve the op (room-controller mode only
    /// manages budgets — servers live in out-of-process agents).
    Unsupported(
        /// What is unsupported, for the error message.
        &'static str,
    ),
    /// The idempotency key was used before with a different op.
    Conflict {
        /// Sequence number of the original event under that key.
        existing_seq: u64,
    },
    /// The idempotency key is longer than the log accepts.
    KeyTooLong {
        /// The offending key's byte length.
        len: usize,
    },
    /// The append itself failed (backing-file I/O).
    Internal(
        /// The failure, rendered.
        String,
    ),
}

impl fmt::Display for OpRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpRejection::Budget(e) => write!(f, "{e}"),
            OpRejection::UnknownTree { tree, trees } => {
                write!(f, "no tree {tree}: the plane has {trees} trees")
            }
            OpRejection::UnknownGroup { tree, node } => {
                write!(f, "tree {tree} has no group node {node}")
            }
            OpRejection::UnknownServer(id) => write!(f, "no server {}", id.0),
            OpRejection::Unsupported(what) => {
                write!(f, "{what} is not supported by this deployment")
            }
            OpRejection::Conflict { existing_seq } => write!(
                f,
                "idempotency key already used by event {existing_seq} with a different op"
            ),
            OpRejection::KeyTooLong { len } => {
                write!(f, "idempotency key of {len} bytes is too long")
            }
            OpRejection::Internal(what) => write!(f, "append failed: {what}"),
        }
    }
}

impl Error for OpRejection {}

/// What the live deployment can reconcile, published by the engine
/// thread so handlers can reject impossible mutations synchronously.
#[derive(Debug, Default)]
struct OperatorCaps {
    /// Per-tree arena node counts (group addressing bounds).
    group_nodes: Vec<usize>,
    /// Sorted server ids in the farm (drain addressing).
    servers: Vec<ServerId>,
    /// Budgets-only deployments (the distributed room controller) reject
    /// priority, drain, and allocator ops.
    budgets_only: bool,
}

/// Shared state published by the engine thread and read by handlers.
#[derive(Debug)]
pub struct ServeState {
    /// The live registry the engine's recorder writes into; `/v1/metrics`
    /// renders a snapshot of it.
    registry: Arc<MetricsRegistry>,
    /// The engine's control period (seconds of simulated time).
    control_period_s: u64,
    /// `/v1/healthz` flips unhealthy when no round completed within this
    /// wall-clock window.
    unhealthy_after: Duration,
    /// Inclusive per-tree budget bounds accepted by budget mutations.
    budget_min: Watts,
    /// See `budget_min`.
    budget_max: Watts,
    /// The active budget-split allocator's name; rendered as the
    /// `"policy"` field of `/v1/report`. Behind a lock because a
    /// `SetAllocator` event changes it at a round boundary.
    policy_label: Mutex<Option<&'static str>>,
    /// Pre-rendered JSON of the latest `RoundReport`'s metrics snapshot.
    report_json: RwLock<Option<String>>,
    /// Health fields behind one short-lived lock.
    health: Mutex<HealthInner>,
    /// The append-only operator event log.
    oplog: Mutex<OpLog>,
    /// The reconciler's declared-state fold, owned by the engine thread
    /// (the mutex satisfies `Sync`; there is never contention).
    desired: Mutex<DesiredState>,
    /// The capability view mutations are validated against.
    caps: RwLock<OperatorCaps>,
}

impl ServeState {
    /// New state for an engine with the given registry and control
    /// period. Defaults: unhealthy after 3 control periods (but at least
    /// 3 wall-clock seconds, so accelerated runs aren't flappy), budgets
    /// accepted in `[1, 10_000_000]` W, and an in-memory event log.
    pub fn new(registry: Arc<MetricsRegistry>, control_period_s: u64) -> Self {
        let window_s = (3 * control_period_s).max(3);
        ServeState {
            registry,
            control_period_s,
            unhealthy_after: Duration::from_secs(window_s),
            budget_min: Watts::new(1.0),
            budget_max: Watts::new(10_000_000.0),
            policy_label: Mutex::new(None),
            report_json: RwLock::new(None),
            health: Mutex::new(HealthInner::default()),
            oplog: Mutex::new(OpLog::in_memory()),
            desired: Mutex::new(DesiredState::default()),
            caps: RwLock::new(OperatorCaps::default()),
        }
    }

    /// Override the staleness window for `/v1/healthz`.
    pub fn with_unhealthy_after(mut self, window: Duration) -> Self {
        self.unhealthy_after = window;
        self
    }

    /// Label `/v1/report` payloads with the active budget-split
    /// allocator, as a proper top-level `"policy"` JSON field.
    pub fn with_policy_label(self, name: &'static str) -> Self {
        *self.policy_label.lock().unwrap_or_else(|p| p.into_inner()) = Some(name);
        self
    }

    /// Override the inclusive bounds accepted by budget mutations.
    pub fn with_budget_bounds(mut self, min: Watts, max: Watts) -> Self {
        self.budget_min = min;
        self.budget_max = max;
        self
    }

    /// Use this event log (e.g. one opened file-backed from `--oplog`)
    /// instead of a fresh in-memory log. Events already in the log are
    /// replayed into the declared state by the first
    /// [`reconcile`](Self::reconcile).
    pub fn with_oplog(self, log: OpLog) -> Self {
        {
            let mut health = self.health.lock().unwrap_or_else(|p| p.into_inner());
            health.oplog_head = log.head_seq();
        }
        *self.oplog.lock().unwrap_or_else(|p| p.into_inner()) = log;
        self
    }

    /// Restrict the operator surface to budget mutations (the
    /// distributed room controller: servers live in out-of-process
    /// agents, so drains, priorities, and allocator switches have
    /// nothing to act on).
    pub fn with_budgets_only(self) -> Self {
        self.caps
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .budgets_only = true;
        self
    }

    /// The registry `/v1/metrics` renders from.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn health_lock(&self) -> MutexGuard<'_, HealthInner> {
        self.health.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Publish the engine's current state. Called by the engine thread
    /// after every step; `round_ran` marks steps that fired a control
    /// round (those also refresh the `/v1/report` payload, the health
    /// round clock, and the operator capability view).
    pub fn publish(&self, engine: &Engine, round_ran: bool) {
        {
            let mut health = self.health_lock();
            health.sim_seconds = engine.now_s();
            health.stale_servers = engine.plane().stale_servers().len();
            health.trees = engine.plane().trees().len();
            if round_ran {
                health.rounds_total += 1;
                health.last_round = Some(Instant::now());
            }
        }
        if round_ran {
            {
                let mut caps = self.caps.write().unwrap_or_else(|p| p.into_inner());
                let trees = engine.plane().trees();
                if caps.group_nodes.len() != trees.len()
                    || caps
                        .group_nodes
                        .iter()
                        .zip(trees)
                        .any(|(&n, t)| n != t.arena().len())
                {
                    caps.group_nodes = trees.iter().map(|t| t.arena().len()).collect();
                }
                // Farm membership is fixed after construction.
                if caps.servers.len() != engine.farm().ids().len() {
                    caps.servers = engine.farm().ids().to_vec();
                }
            }
            if let Some(report) = engine.last_round_report() {
                let rendered = self.render_report(&report.metrics_snapshot());
                let mut slot = self.report_json.write().unwrap_or_else(|p| p.into_inner());
                *slot = Some(rendered);
            }
        }
    }

    /// Render a report snapshot, folding the active policy label in as a
    /// real top-level `"policy"` field.
    fn render_report(&self, snap: &capmaestro_core::obs::MetricsSnapshot) -> String {
        let label = *self.policy_label.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        match label {
            Some(name) => json::snapshot_with_fields_into(&mut out, &[("policy", name)], snap),
            None => json::snapshot_into(&mut out, snap),
        }
        out
    }

    /// Publish one distributed-deployment round: the room-controller
    /// counterpart of [`publish`](Self::publish), for daemons whose world
    /// lives in out-of-process rack agents rather than an engine.
    /// `stale_racks` is the number of workers whose cuts were budgeted
    /// from fail-safe metrics this round; `/v1/report` renders the live
    /// registry snapshot (the deployment's recorder writes into it).
    pub fn publish_distributed(&self, sim_seconds: u64, trees: usize, stale_racks: usize) {
        {
            let mut health = self.health_lock();
            health.sim_seconds = sim_seconds;
            health.stale_racks = stale_racks;
            health.trees = trees;
            health.rounds_total += 1;
            health.last_round = Some(Instant::now());
        }
        let rendered = self.render_report(&self.registry.snapshot());
        let mut slot = self.report_json.write().unwrap_or_else(|p| p.into_inner());
        *slot = Some(rendered);
    }

    /// The current health view, as `GET /v1/healthz` reports it.
    pub fn health(&self) -> HealthSnapshot {
        let health = self.health_lock();
        let last_round_age = health.last_round.map(|at| at.elapsed());
        HealthSnapshot {
            healthy: last_round_age.is_some_and(|age| age <= self.unhealthy_after),
            degraded: health.stale_servers > 0 || health.stale_racks > 0,
            rounds_total: health.rounds_total,
            sim_seconds: health.sim_seconds,
            last_round_age_s: last_round_age.map(|age| age.as_secs_f64()),
            control_period_s: self.control_period_s,
            stale_servers: health.stale_servers,
            stale_racks: health.stale_racks,
            trees: health.trees,
            oplog_head: health.oplog_head,
            applied_seq: health.applied_seq,
        }
    }

    /// The latest `/v1/report` JSON payload, if any round has completed.
    pub fn report_json(&self) -> Option<String> {
        self.report_json
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Render the `/v1/metrics` Prometheus page from the live registry.
    pub fn metrics_page(&self) -> String {
        prometheus::render(&self.registry.snapshot())
    }

    /// Validate budget values against the configured bounds.
    fn check_budget_bounds(&self, budgets: &[f64]) -> Result<(), OpRejection> {
        for &w in budgets {
            if !w.is_finite() {
                return Err(OpRejection::Budget(BudgetError::NotFinite));
            }
            if w < self.budget_min.as_f64() || w > self.budget_max.as_f64() {
                return Err(OpRejection::Budget(BudgetError::OutOfBounds {
                    value: w,
                    min: self.budget_min.as_f64(),
                    max: self.budget_max.as_f64(),
                }));
            }
        }
        Ok(())
    }

    /// Validate and append a full root-budget vector (the legacy
    /// `POST /budget` shape: raw watts, one per tree). The event is
    /// applied by the reconciler at the next round boundary.
    pub fn stage_budgets(
        &self,
        budgets: &[f64],
        key: Option<&str>,
    ) -> Result<AppendOutcome, OpRejection> {
        let trees = self.health_lock().trees;
        if budgets.len() != trees {
            return Err(OpRejection::Budget(BudgetError::WrongArity {
                got: budgets.len(),
                want: trees,
            }));
        }
        self.check_budget_bounds(budgets)?;
        let op = Op::SetRootBudgets(budgets.iter().map(|&w| Watts::new(w)).collect());
        self.append_validated(key, op)
    }

    /// Validate and append one tree's declared root budget
    /// (`PUT /v1/trees/{id}/budget`).
    pub fn stage_tree_budget(
        &self,
        tree: u32,
        watts: f64,
        key: Option<&str>,
    ) -> Result<AppendOutcome, OpRejection> {
        let trees = self.health_lock().trees;
        if tree as usize >= trees {
            return Err(OpRejection::UnknownTree { tree, trees });
        }
        self.check_budget_bounds(&[watts])?;
        self.append_validated(
            key,
            Op::SetTreeBudget {
                tree,
                watts: Watts::new(watts),
            },
        )
    }

    /// Validate and append a group priority band — `Some` declares it,
    /// `None` withdraws it (`PATCH /v1/groups/{tree}.{node}/priority`).
    pub fn stage_group_priority(
        &self,
        tree: u32,
        node: u32,
        priority: Option<u8>,
        key: Option<&str>,
    ) -> Result<AppendOutcome, OpRejection> {
        {
            let caps = self.caps.read().unwrap_or_else(|p| p.into_inner());
            if caps.budgets_only {
                return Err(OpRejection::Unsupported("group priority"));
            }
            if tree as usize >= caps.group_nodes.len() {
                return Err(OpRejection::UnknownTree {
                    tree,
                    trees: caps.group_nodes.len(),
                });
            }
            if node as usize >= caps.group_nodes[tree as usize] {
                return Err(OpRejection::UnknownGroup { tree, node });
            }
        }
        let op = match priority {
            Some(p) => Op::SetGroupPriority {
                tree,
                node,
                priority: capmaestro_topology::Priority(p),
            },
            None => Op::ClearGroupPriority { tree, node },
        };
        self.append_validated(key, op)
    }

    /// Validate and append a server drain (`enabled: false`) or return
    /// to service (`POST /v1/servers/{id}:drain` / `:undrain`).
    pub fn stage_server_enabled(
        &self,
        server: ServerId,
        enabled: bool,
        key: Option<&str>,
    ) -> Result<AppendOutcome, OpRejection> {
        {
            let caps = self.caps.read().unwrap_or_else(|p| p.into_inner());
            if caps.budgets_only {
                return Err(OpRejection::Unsupported("server drain"));
            }
            if caps.servers.binary_search(&server).is_err() {
                return Err(OpRejection::UnknownServer(server));
            }
        }
        self.append_validated(key, Op::SetServerEnabled { server, enabled })
    }

    /// Validate and append an allocator selection (`PUT /v1/allocator`).
    pub fn stage_allocator(
        &self,
        kind: capmaestro_core::AllocatorKind,
        key: Option<&str>,
    ) -> Result<AppendOutcome, OpRejection> {
        {
            let caps = self.caps.read().unwrap_or_else(|p| p.into_inner());
            if caps.budgets_only {
                return Err(OpRejection::Unsupported("allocator selection"));
            }
        }
        self.append_validated(key, Op::SetAllocator(kind))
    }

    /// Append a pre-validated op, mapping log-level failures.
    fn append_validated(
        &self,
        key: Option<&str>,
        op: Op,
    ) -> Result<AppendOutcome, OpRejection> {
        let at_s = self.health_lock().sim_seconds;
        let outcome = {
            let mut log = self.oplog.lock().unwrap_or_else(|p| p.into_inner());
            log.append(at_s, key, op).map_err(|e| match e {
                OplogError::IdempotencyConflict { existing_seq } => {
                    OpRejection::Conflict { existing_seq }
                }
                OplogError::KeyTooLong { len } => OpRejection::KeyTooLong { len },
                other => OpRejection::Internal(other.to_string()),
            })?
        };
        if let AppendOutcome::Appended(seq) = outcome {
            self.health_lock().oplog_head = seq;
            self.registry.counter_add(names::SERVE_OPLOG_APPENDS_TOTAL, 1);
        }
        Ok(outcome)
    }

    /// The newest event sequence number.
    pub fn oplog_head(&self) -> u64 {
        self.oplog
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .head_seq()
    }

    /// Render `GET /v1/events?since=seq`: every event with a sequence
    /// number greater than `since`, oldest first, plus the head.
    pub fn events_json(&self, since: u64) -> String {
        let log = self.oplog.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::new();
        let _ = write!(out, "{{\"head\":{},\"events\":[", log.head_seq());
        for (i, envelope) in log.since(since).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            envelope_json(&mut out, envelope);
        }
        out.push_str("]}\n");
        out
    }

    /// Converge the live engine onto the declared state. Called by the
    /// engine thread immediately before a round-boundary step: drains
    /// new events into the declared-state fold, diffs declared vs live,
    /// and applies the plan (budgets stage into the imminent round;
    /// priorities, drains, and allocator switches apply directly).
    /// Returns the number of actions applied. With an empty log this is
    /// an exact no-op.
    pub fn reconcile(&self, engine: &mut Engine) -> usize {
        let mut desired = self.desired.lock().unwrap_or_else(|p| p.into_inner());
        {
            let log = self.oplog.lock().unwrap_or_else(|p| p.into_inner());
            for envelope in log.since(desired.seq) {
                desired.apply(envelope);
            }
        }
        if desired.seq == 0 {
            return 0; // nothing ever declared: bit-identical no-op
        }
        let step = plan(&desired, engine.plane(), engine.farm());
        let applied = engine.apply_reconcile_plan(&step);
        if let Some(kind) = step.allocator {
            *self.policy_label.lock().unwrap_or_else(|p| p.into_inner()) = Some(kind.name());
        }
        if applied > 0 {
            self.registry
                .counter_add(names::SERVE_RECONCILE_ACTIONS_TOTAL, applied as u64);
        }
        self.health_lock().applied_seq = desired.seq;
        applied
    }

    /// The distributed counterpart of [`reconcile`](Self::reconcile):
    /// room controllers only manage root budgets (their servers live in
    /// out-of-process agents), so this folds new events and returns the
    /// composed budget vector when it differs bitwise from `live`, for
    /// the caller to push into its `WorkerDeployment`.
    pub fn reconcile_distributed(&self, live: &[Watts]) -> Option<Vec<Watts>> {
        let mut desired = self.desired.lock().unwrap_or_else(|p| p.into_inner());
        {
            let log = self.oplog.lock().unwrap_or_else(|p| p.into_inner());
            for envelope in log.since(desired.seq) {
                desired.apply(envelope);
            }
        }
        if desired.seq == 0 {
            return None;
        }
        self.health_lock().applied_seq = desired.seq;
        let mut target = live.to_vec();
        for (&tree, &watts) in &desired.tree_budgets {
            if let Some(slot) = target.get_mut(tree as usize) {
                *slot = watts;
            }
        }
        let differs = live
            .iter()
            .zip(&target)
            .any(|(a, b)| a.as_f64().to_bits() != b.as_f64().to_bits());
        if differs {
            self.registry
                .counter_add(names::SERVE_RECONCILE_ACTIONS_TOTAL, 1);
            Some(target)
        } else {
            None
        }
    }
}

/// Append one envelope as a JSON object.
fn envelope_json(out: &mut String, envelope: &Envelope) {
    let _ = write!(out, "{{\"seq\":{},\"at_s\":{}", envelope.seq, envelope.at_s);
    out.push_str(",\"key\":");
    match &envelope.key {
        Some(key) => escape_json_str(out, key),
        None => out.push_str("null"),
    }
    out.push_str(",\"op\":");
    match &envelope.op {
        Op::SetTreeBudget { tree, watts } => {
            let _ = write!(
                out,
                "{{\"type\":\"set_tree_budget\",\"tree\":{tree},\"watts\":{}}}",
                watts.as_f64()
            );
        }
        Op::SetRootBudgets(budgets) => {
            out.push_str("{\"type\":\"set_root_budgets\",\"watts\":[");
            for (i, w) in budgets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", w.as_f64());
            }
            out.push_str("]}");
        }
        Op::SetGroupPriority {
            tree,
            node,
            priority,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"set_group_priority\",\"tree\":{tree},\"node\":{node},\"priority\":{}}}",
                priority.0
            );
        }
        Op::ClearGroupPriority { tree, node } => {
            let _ = write!(
                out,
                "{{\"type\":\"clear_group_priority\",\"tree\":{tree},\"node\":{node}}}"
            );
        }
        Op::SetServerEnabled { server, enabled } => {
            let _ = write!(
                out,
                "{{\"type\":\"set_server_enabled\",\"server\":{},\"enabled\":{enabled}}}",
                server.0
            );
        }
        Op::SetAllocator(kind) => {
            let _ = write!(out, "{{\"type\":\"set_allocator\",\"policy\":\"{}\"}}", kind.name());
        }
    }
    out.push('}');
}

/// Append `s` as a JSON string literal with the mandatory escapes.
fn escape_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
