//! The shared-state seam between the engine thread and HTTP workers.
//!
//! HTTP handlers never touch the engine. Instead the engine thread calls
//! [`ServeState::publish`] after every step, copying the handful of
//! fields the endpoints need behind short-lived locks; handlers read
//! those copies. Likewise `POST /budget` never mutates the control
//! plane — it stages a bounds-checked budget vector that the engine
//! thread picks up with [`ServeState::take_pending_budgets`] and applies
//! at the next round boundary (via `Engine::stage_root_budgets`), so the
//! round pipeline keeps its single-writer discipline.

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use capmaestro_core::obs::{json, prometheus, MetricsRegistry};
use capmaestro_sim::Engine;
use capmaestro_units::Watts;

/// Mutable health fields, updated by the engine thread on every step.
#[derive(Debug, Default)]
struct HealthInner {
    /// Wall-clock instant of the last completed control round.
    last_round: Option<Instant>,
    /// Control rounds completed since the daemon started.
    rounds_total: u64,
    /// Simulated seconds elapsed.
    sim_seconds: u64,
    /// Servers currently degraded to last-known-good telemetry.
    stale_servers: usize,
    /// Rack workers currently budgeted from fail-safe metrics
    /// (distributed deployments only; always 0 for an in-process engine).
    stale_racks: usize,
    /// Number of control trees (the expected `POST /budget` arity).
    trees: usize,
}

/// Point-in-time health as served by `GET /healthz`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Whether a round completed within the staleness window.
    pub healthy: bool,
    /// Whether any server is running on last-known-good telemetry
    /// (the fail-safe degradation ladder is engaged).
    pub degraded: bool,
    /// Control rounds completed since the daemon started.
    pub rounds_total: u64,
    /// Simulated seconds elapsed.
    pub sim_seconds: u64,
    /// Wall-clock seconds since the last round, if any round ran.
    pub last_round_age_s: Option<f64>,
    /// The configured control period, for scrapers to contextualize age.
    pub control_period_s: u64,
    /// Count of servers on stale telemetry.
    pub stale_servers: usize,
    /// Count of rack workers riding fail-safe budgets (partitioned or
    /// silent agents in a distributed deployment).
    pub stale_racks: usize,
    /// Number of control trees.
    pub trees: usize,
}

impl HealthSnapshot {
    /// Render as the `/healthz` JSON body.
    pub fn to_json(&self) -> String {
        let status = if self.healthy { "ok" } else { "unhealthy" };
        let age = match self.last_round_age_s {
            Some(age) => format!("{age:.3}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"status\":\"{status}\",\"degraded\":{},\"rounds_total\":{},\"sim_seconds\":{},\"last_round_age_s\":{age},\"control_period_s\":{},\"stale_servers\":{},\"stale_racks\":{},\"trees\":{}}}\n",
            self.degraded,
            self.rounds_total,
            self.sim_seconds,
            self.control_period_s,
            self.stale_servers,
            self.stale_racks,
            self.trees,
        )
    }
}

/// Why a `POST /budget` payload was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The payload had the wrong number of budgets for the tree count.
    WrongArity {
        /// Budgets supplied.
        got: usize,
        /// Trees in the control plane.
        want: usize,
    },
    /// A budget was NaN or infinite.
    NotFinite,
    /// A budget fell outside the configured bounds.
    OutOfBounds {
        /// The offending value in watts.
        value: f64,
        /// Inclusive lower bound in watts.
        min: f64,
        /// Inclusive upper bound in watts.
        max: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::WrongArity { got, want } => {
                write!(f, "expected {want} budgets (one per tree), got {got}")
            }
            BudgetError::NotFinite => write!(f, "budgets must be finite numbers"),
            BudgetError::OutOfBounds { value, min, max } => {
                write!(f, "budget {value} W outside allowed range [{min}, {max}] W")
            }
        }
    }
}

impl Error for BudgetError {}

/// Shared state published by the engine thread and read by handlers.
#[derive(Debug)]
pub struct ServeState {
    /// The live registry the engine's recorder writes into; `/metrics`
    /// renders a snapshot of it.
    registry: Arc<MetricsRegistry>,
    /// The engine's control period (seconds of simulated time).
    control_period_s: u64,
    /// `/healthz` flips unhealthy when no round completed within this
    /// wall-clock window.
    unhealthy_after: Duration,
    /// Inclusive per-tree budget bounds accepted by `POST /budget`.
    budget_min: Watts,
    /// See `budget_min`.
    budget_max: Watts,
    /// The active budget-split allocator's name; when set, `/report`
    /// payloads carry it as a top-level `"policy"` key.
    policy_label: Option<&'static str>,
    /// Pre-rendered JSON of the latest `RoundReport`'s metrics snapshot.
    report_json: RwLock<Option<String>>,
    /// Health fields behind one short-lived lock.
    health: Mutex<HealthInner>,
    /// Budgets staged by `POST /budget`, awaiting the engine thread.
    pending: Mutex<Option<Vec<Watts>>>,
}

impl ServeState {
    /// New state for an engine with the given registry and control
    /// period. Defaults: unhealthy after 3 control periods (but at least
    /// 3 wall-clock seconds, so accelerated runs aren't flappy) and
    /// budgets accepted in `[1, 10_000_000]` W.
    pub fn new(registry: Arc<MetricsRegistry>, control_period_s: u64) -> Self {
        let window_s = (3 * control_period_s).max(3);
        ServeState {
            registry,
            control_period_s,
            unhealthy_after: Duration::from_secs(window_s),
            budget_min: Watts::new(1.0),
            budget_max: Watts::new(10_000_000.0),
            policy_label: None,
            report_json: RwLock::new(None),
            health: Mutex::new(HealthInner::default()),
            pending: Mutex::new(None),
        }
    }

    /// Override the staleness window for `/healthz`.
    pub fn with_unhealthy_after(mut self, window: Duration) -> Self {
        self.unhealthy_after = window;
        self
    }

    /// Label `/report` payloads with the active budget-split allocator:
    /// a top-level `"policy"` key is prepended to every published
    /// snapshot. The snapshot parser tolerates the extra key, so probes
    /// of older daemons keep working.
    pub fn with_policy_label(mut self, name: &'static str) -> Self {
        self.policy_label = Some(name);
        self
    }

    /// Override the inclusive bounds accepted by `POST /budget`.
    pub fn with_budget_bounds(mut self, min: Watts, max: Watts) -> Self {
        self.budget_min = min;
        self.budget_max = max;
        self
    }

    /// The registry `/metrics` renders from.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Publish the engine's current state. Called by the engine thread
    /// after every step; `round_ran` marks steps that fired a control
    /// round (those also refresh the `/report` payload and the health
    /// round clock).
    pub fn publish(&self, engine: &Engine, round_ran: bool) {
        {
            let mut health = self.health.lock().unwrap_or_else(|p| p.into_inner());
            health.sim_seconds = engine.now_s();
            health.stale_servers = engine.plane().stale_servers().len();
            health.trees = engine.plane().trees().len();
            if round_ran {
                health.rounds_total += 1;
                health.last_round = Some(Instant::now());
            }
        }
        if round_ran {
            if let Some(report) = engine.last_round_report() {
                let rendered = self.label_report(json::snapshot(&report.metrics_snapshot()));
                let mut slot = self.report_json.write().unwrap_or_else(|p| p.into_inner());
                *slot = Some(rendered);
            }
        }
    }

    /// Prepend the `"policy"` key to a rendered snapshot when a label is
    /// configured (the snapshot opens with `{`, so one `replacen` puts
    /// the key first).
    fn label_report(&self, rendered: String) -> String {
        match self.policy_label {
            Some(name) => rendered.replacen('{', &format!("{{\n  \"policy\": \"{name}\","), 1),
            None => rendered,
        }
    }

    /// Publish one distributed-deployment round: the room-controller
    /// counterpart of [`publish`](Self::publish), for daemons whose world
    /// lives in out-of-process rack agents rather than an engine.
    /// `stale_racks` is the number of workers whose cuts were budgeted
    /// from fail-safe metrics this round; `/report` renders the live
    /// registry snapshot (the deployment's recorder writes into it).
    pub fn publish_distributed(&self, sim_seconds: u64, trees: usize, stale_racks: usize) {
        {
            let mut health = self.health.lock().unwrap_or_else(|p| p.into_inner());
            health.sim_seconds = sim_seconds;
            health.stale_racks = stale_racks;
            health.trees = trees;
            health.rounds_total += 1;
            health.last_round = Some(Instant::now());
        }
        let rendered = self.label_report(json::snapshot(&self.registry.snapshot()));
        let mut slot = self.report_json.write().unwrap_or_else(|p| p.into_inner());
        *slot = Some(rendered);
    }

    /// The current health view, as `GET /healthz` reports it.
    pub fn health(&self) -> HealthSnapshot {
        let health = self.health.lock().unwrap_or_else(|p| p.into_inner());
        let last_round_age = health.last_round.map(|at| at.elapsed());
        HealthSnapshot {
            healthy: last_round_age.is_some_and(|age| age <= self.unhealthy_after),
            degraded: health.stale_servers > 0 || health.stale_racks > 0,
            rounds_total: health.rounds_total,
            sim_seconds: health.sim_seconds,
            last_round_age_s: last_round_age.map(|age| age.as_secs_f64()),
            control_period_s: self.control_period_s,
            stale_servers: health.stale_servers,
            stale_racks: health.stale_racks,
            trees: health.trees,
        }
    }

    /// The latest `/report` JSON payload, if any round has completed.
    pub fn report_json(&self) -> Option<String> {
        self.report_json
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Render the `/metrics` Prometheus page from the live registry.
    pub fn metrics_page(&self) -> String {
        prometheus::render(&self.registry.snapshot())
    }

    /// Validate and stage a budget vector (raw watts, one per tree) for
    /// the next round boundary. Takes `f64`s rather than [`Watts`] so
    /// non-finite client input is rejected here instead of tripping
    /// `Watts::new`'s debug assertion. Returns the number staged.
    pub fn stage_budgets(&self, budgets: &[f64]) -> Result<usize, BudgetError> {
        let trees = {
            let health = self.health.lock().unwrap_or_else(|p| p.into_inner());
            health.trees
        };
        if budgets.len() != trees {
            return Err(BudgetError::WrongArity {
                got: budgets.len(),
                want: trees,
            });
        }
        for &w in budgets {
            if !w.is_finite() {
                return Err(BudgetError::NotFinite);
            }
            if w < self.budget_min.as_f64() || w > self.budget_max.as_f64() {
                return Err(BudgetError::OutOfBounds {
                    value: w,
                    min: self.budget_min.as_f64(),
                    max: self.budget_max.as_f64(),
                });
            }
        }
        let staged: Vec<Watts> = budgets.iter().map(|&w| Watts::new(w)).collect();
        let count = staged.len();
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        *pending = Some(staged);
        Ok(count)
    }

    /// Take any staged budgets (engine thread, once per step).
    pub fn take_pending_budgets(&self) -> Option<Vec<Watts>> {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).take()
    }
}
