//! A tiny blocking HTTP/1.1 client for tests, the `--probe` smoke mode,
//! and the parser fuzz suite (where [`parse_response`] is the
//! well-formedness oracle: every response the server writes must parse
//! here with an exact `Content-Length`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error naming the failure.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not utf-8: {e}"))
    }
}

/// Strictly parse a full response byte stream (as read to EOF from a
/// `Connection: close` server). Requires a `Content-Length` header whose
/// value equals the body length exactly — the server always sends one,
/// so any deviation is a server bug.
pub fn parse_response(bytes: &[u8]) -> Result<HttpResponse, String> {
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "no head terminator in response".to_string())?;
    let head = std::str::from_utf8(&bytes[..head_end])
        .map_err(|e| format!("response head is not utf-8: {e}"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(format!("bad response version in {status_line:?}"));
    }
    let status: u16 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad status code in {status_line:?}"))?;
    if parts.next().is_none() {
        return Err(format!("missing reason phrase in {status_line:?}"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed response header {line:?}"))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let body = bytes[head_end + 4..].to_vec();
    let declared: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .ok_or_else(|| "response has no content-length".to_string())?
        .1
        .parse()
        .map_err(|_| "malformed content-length in response".to_string())?;
    if declared != body.len() {
        return Err(format!(
            "content-length {declared} does not match body length {}",
            body.len()
        ));
    }

    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Default I/O timeout for [`get`]/[`post`]/[`send_raw`].
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Write `request_bytes` to `addr`, half-close, read to EOF, parse.
pub fn send_raw(addr: &str, request_bytes: &[u8]) -> Result<HttpResponse, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .and_then(|()| stream.set_write_timeout(Some(CLIENT_TIMEOUT)))
        .map_err(|e| format!("set timeouts: {e}"))?;
    stream
        .write_all(request_bytes)
        .map_err(|e| format!("write request: {e}"))?;
    stream
        .shutdown(std::net::Shutdown::Write)
        .map_err(|e| format!("half-close: {e}"))?;
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .map_err(|e| format!("read response: {e}"))?;
    if bytes.is_empty() {
        return Err("connection closed with no response bytes".to_string());
    }
    parse_response(&bytes)
}

/// Blocking `GET path` against `addr` (a `host:port` string).
pub fn get(addr: &str, path: &str) -> Result<HttpResponse, String> {
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    send_raw(addr, request.as_bytes())
}

/// Blocking `POST path` with a body against `addr`.
pub fn post(addr: &str, path: &str, body: &[u8]) -> Result<HttpResponse, String> {
    request(addr, "POST", path, &[], body)
}

/// Blocking request with an arbitrary method and extra headers (e.g.
/// `("Idempotency-Key", "retry-1")`) — the general form behind the `/v1`
/// mutation helpers.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    send_raw(addr, &bytes)
}

/// Blocking `PUT path` with a body and optional headers.
pub fn put(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    request(addr, "PUT", path, headers, body)
}

/// Blocking `PATCH path` with a body and optional headers.
pub fn patch(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<HttpResponse, String> {
    request(addr, "PATCH", path, headers, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let response = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok\n",
        )
        .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("content-type"), Some("text/plain"));
        assert_eq!(response.body, b"ok\n");
    }

    #[test]
    fn rejects_length_mismatch_and_missing_length() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nok").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n\r\nok").is_err());
        assert!(parse_response(b"garbage").is_err());
    }
}
