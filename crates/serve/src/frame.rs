//! Deadline-bounded frame I/O over a [`TcpStream`].
//!
//! Thin transport plumbing around the dependency-free wire codec in
//! [`capmaestro_core::wire`]: a [`FrameReader`] that accumulates bytes
//! until one length-prefixed frame is complete (tolerating arbitrary TCP
//! segmentation), and [`write_frame`] which writes one frame under a
//! write timeout. Both sides of the control plane — the room
//! controller's [`crate::socket::SocketTransport`] and the
//! [`crate::agent`] processes — speak through this module only.
//!
//! Error taxonomy, which the callers rely on:
//!
//! - `Ok(Some(payload))` — one complete frame.
//! - `Ok(None)` — the deadline passed without a complete frame; any
//!   partial bytes stay buffered and the next call resumes cleanly.
//! - `Err(UnexpectedEof)` — the peer closed (cleanly or mid-frame). A
//!   torn frame is indistinguishable from a crash and is treated the
//!   same: the connection is dead.
//! - `Err(InvalidData)` — the peer is speaking garbage (oversized or
//!   malformed length prefix). The connection must be torn down.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use capmaestro_core::wire::{frame, split_frame, WireError};

/// Granularity of the read poll: each blocking read waits at most this
/// long so deadline and shutdown checks stay responsive.
const READ_SLICE: Duration = Duration::from_millis(50);

/// Accumulates stream bytes and yields complete frames.
///
/// One reader per connection; it owns the partial-frame buffer, so a
/// frame split across TCP segments (or across calls) reassembles
/// transparently.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Pops a complete frame out of the internal buffer, if one is
    /// already there, without touching the stream.
    pub fn pop_buffered(&mut self) -> Result<Option<Vec<u8>>, io::Error> {
        match split_frame(&self.buf) {
            Ok(Some((payload, consumed))) => {
                let payload = payload.to_vec();
                self.buf.drain(..consumed);
                Ok(Some(payload))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(wire_to_io(e)),
        }
    }

    /// Reads from `stream` until one complete frame is available or
    /// `deadline` passes. See the module docs for the error taxonomy.
    pub fn read_frame(
        &mut self,
        stream: &mut TcpStream,
        deadline: Instant,
    ) -> io::Result<Option<Vec<u8>>> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(payload) = self.pop_buffered()? {
                return Ok(Some(payload));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let wait = (deadline - now).min(READ_SLICE).max(Duration::from_millis(1));
            stream.set_read_timeout(Some(wait))?;
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        if self.buf.is_empty() {
                            "peer closed the connection"
                        } else {
                            "peer closed mid-frame"
                        },
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Poll slice elapsed; loop to re-check the deadline.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Writes one frame around `payload` under `timeout`.
///
/// A short write, timeout, or I/O error all mean the connection can no
/// longer carry whole frames and must be torn down by the caller.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8], timeout: Duration) -> io::Result<()> {
    stream.set_write_timeout(Some(timeout.max(Duration::from_millis(1))))?;
    stream.write_all(&frame(payload))?;
    stream.flush()
}

/// Maps a codec-level framing error onto the I/O error the connection
/// handler tears down with.
fn wire_to_io(e: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn frame_round_trips_over_tcp() {
        let (mut a, mut b) = pair();
        write_frame(&mut a, b"hello", Duration::from_secs(1)).expect("write");
        let mut reader = FrameReader::new();
        let got = reader
            .read_frame(&mut b, Instant::now() + Duration::from_secs(1))
            .expect("read")
            .expect("frame");
        assert_eq!(got, b"hello");
    }

    #[test]
    fn deadline_returns_none_and_partial_bytes_survive() {
        let (mut a, mut b) = pair();
        // Write only half a frame.
        let full = frame(b"split");
        use std::io::Write as _;
        a.write_all(&full[..3]).expect("half write");
        a.flush().expect("flush");
        let mut reader = FrameReader::new();
        let got = reader
            .read_frame(&mut b, Instant::now() + Duration::from_millis(80))
            .expect("no error on deadline");
        assert!(got.is_none(), "half a frame is not a frame");
        // The rest arrives; the reader resumes from its buffer.
        a.write_all(&full[3..]).expect("rest");
        a.flush().expect("flush");
        let got = reader
            .read_frame(&mut b, Instant::now() + Duration::from_secs(1))
            .expect("read")
            .expect("frame");
        assert_eq!(got, b"split");
    }

    #[test]
    fn peer_close_is_unexpected_eof() {
        let (a, mut b) = pair();
        drop(a);
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut b, Instant::now() + Duration::from_secs(1))
            .expect_err("closed peer");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn torn_frame_is_unexpected_eof() {
        let (mut a, mut b) = pair();
        let full = frame(b"torn");
        use std::io::Write as _;
        a.write_all(&full[..5]).expect("partial");
        drop(a);
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut b, Instant::now() + Duration::from_secs(1))
            .expect_err("torn frame");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn hostile_length_prefix_is_invalid_data() {
        let (mut a, mut b) = pair();
        use std::io::Write as _;
        // 16 MiB claimed length: over MAX_FRAME_BYTES.
        a.write_all(&(16u32 << 20).to_le_bytes()).expect("prefix");
        a.flush().expect("flush");
        let mut reader = FrameReader::new();
        let err = reader
            .read_frame(&mut b, Instant::now() + Duration::from_secs(1))
            .expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
