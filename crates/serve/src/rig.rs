//! The shared rig vocabulary of the distributed control plane.
//!
//! A room controller and its out-of-process rack agents never exchange
//! topology: both sides independently build the *same* rig from the same
//! [`RigSpec`] (passed on the agent command line), derive the same
//! control trees, and compute the same [`rack_assignments`]. Everything
//! here is deterministic — same spec in, bit-identical rig out — which
//! is what makes the socket-vs-channel differential test meaningful.

use capmaestro_core::tree::ControlTree;
use capmaestro_core::workers::rack_assignments;
use capmaestro_core::Farm;
use capmaestro_server::{Server, ServerConfig};
use capmaestro_topology::presets::{figure2_feed, racks_feed};
use capmaestro_topology::{ServerId, Topology};
use capmaestro_units::Watts;

/// Offered demand every rig server starts with, matching the paper's
/// 420 W per-server load.
pub const RIG_DEMAND: Watts = Watts::new(420.0);

/// Which rig a distributed deployment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RigSpec {
    /// The paper's Fig. 2 four-server feed, 1240 W contractual budget.
    Fig2,
    /// [`racks_feed`]: `racks` rack breakers of `servers_per_rack`
    /// single-corded servers, budget of 320 W per server (oversubscribed
    /// against the 420 W demand, so priorities matter).
    Racks {
        /// Rack (= agent) count.
        racks: usize,
        /// Servers per rack.
        servers_per_rack: usize,
    },
}

impl RigSpec {
    /// Parses the command-line form: `fig2` or `racks:R:S`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "fig2" {
            return Ok(RigSpec::Fig2);
        }
        if let Some(rest) = s.strip_prefix("racks:") {
            let mut it = rest.split(':');
            let racks = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0);
            let servers = it
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0);
            if let (Some(racks), Some(servers), None) = (racks, servers, it.next()) {
                return Ok(RigSpec::Racks {
                    racks,
                    servers_per_rack: servers,
                });
            }
        }
        Err(format!("bad rig spec {s:?}: expected fig2 or racks:R:S"))
    }

    /// The command-line form [`parse`](Self::parse) accepts.
    pub fn to_arg(self) -> String {
        match self {
            RigSpec::Fig2 => "fig2".to_string(),
            RigSpec::Racks {
                racks,
                servers_per_rack,
            } => format!("racks:{racks}:{servers_per_rack}"),
        }
    }
}

/// A fully-derived rig: topology, control trees, and contractual root
/// budgets — everything except the servers themselves.
#[derive(Debug)]
pub struct DistRig {
    /// The power topology.
    pub topo: Topology,
    /// One control tree per feed×phase, in spec order.
    pub trees: Vec<ControlTree>,
    /// The contractual budget applied at each tree root.
    pub root_budgets: Vec<Watts>,
}

/// Builds the rig for `spec`. Deterministic: both sides of a socket
/// deployment call this independently and must agree.
pub fn build_rig(spec: RigSpec) -> DistRig {
    let (topo, per_server_budget) = match spec {
        RigSpec::Fig2 => (figure2_feed(), None),
        RigSpec::Racks {
            racks,
            servers_per_rack,
        } => (racks_feed(racks, servers_per_rack), Some(Watts::new(320.0))),
    };
    let trees: Vec<ControlTree> = topo
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let root_budgets: Vec<Watts> = trees
        .iter()
        .map(|t| match per_server_budget {
            // Fig. 2 uses the paper's 1240 W contractual budget.
            None => Watts::new(1240.0),
            Some(per) => Watts::new(per.as_f64() * t.spec().leaves().count() as f64),
        })
        .collect();
    DistRig {
        topo,
        trees,
        root_budgets,
    }
}

/// Builds the full farm for a rig: every server `paper_default`,
/// single-corded, offered [`RIG_DEMAND`], settled. The in-process
/// reference deployment simulates this farm; a socket room controller
/// builds it only to capture [`capmaestro_core::workers::leaf_statics`]
/// at spawn and then drops it.
pub fn build_farm(topo: &Topology) -> Farm {
    let mut farm = Farm::new();
    for (id, _) in topo.servers() {
        farm.insert(id, rig_server());
    }
    farm
}

/// Builds an agent's local farm: only the servers in `owned`, identical
/// construction to [`build_farm`] so the two worlds start bit-identical.
pub fn build_owned_farm(owned: &[ServerId]) -> Farm {
    let mut farm = Farm::new();
    for &id in owned {
        farm.insert(id, rig_server());
    }
    farm
}

fn rig_server() -> Server {
    let mut server = Server::new(ServerConfig::paper_default().single_corded());
    server.set_offered_demand(RIG_DEMAND);
    server.settle();
    server
}

/// The worker assignments both sides compute from a rig — a convenience
/// wrapper that asserts the server-disjointness the socket transport
/// depends on.
pub fn rig_assignments(
    rig: &DistRig,
    workers_total: usize,
) -> Vec<capmaestro_core::workers::RackAssignment> {
    let assignments = rack_assignments(&rig.trees, workers_total);
    debug_assert!(capmaestro_core::workers::assignments_server_disjoint(
        &assignments
    ));
    assignments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_parse() {
        for spec in [
            RigSpec::Fig2,
            RigSpec::Racks {
                racks: 4,
                servers_per_rack: 6,
            },
        ] {
            assert_eq!(RigSpec::parse(&spec.to_arg()), Ok(spec));
        }
        assert!(RigSpec::parse("racks:0:4").is_err());
        assert!(RigSpec::parse("racks:4").is_err());
        assert!(RigSpec::parse("racks:4:2:1").is_err());
        assert!(RigSpec::parse("mesh").is_err());
    }

    #[test]
    fn rig_is_deterministic() {
        let spec = RigSpec::Racks {
            racks: 4,
            servers_per_rack: 3,
        };
        let a = build_rig(spec);
        let b = build_rig(spec);
        assert_eq!(a.root_budgets, b.root_budgets);
        assert_eq!(a.topo.server_count(), b.topo.server_count());
        assert_eq!(rig_assignments(&a, 4), rig_assignments(&b, 4));
    }

    #[test]
    fn owned_farm_matches_full_farm_slice() {
        let rig = build_rig(RigSpec::Racks {
            racks: 2,
            servers_per_rack: 3,
        });
        let assignments = rig_assignments(&rig, 2);
        let full = build_farm(&rig.topo);
        for a in &assignments {
            let local = build_owned_farm(&a.owned);
            assert_eq!(local.len(), a.owned.len());
            for &id in &a.owned {
                let l = local.get(id).expect("owned server present");
                let f = full.get(id).expect("full farm has every server");
                assert_eq!(l.offered_demand(), f.offered_demand());
                assert_eq!(l.achieved_ac(), f.achieved_ac());
            }
        }
    }
}
