//! The `capmaestrod` run loop and its `--probe` smoke client.
//!
//! The daemon wires the paper's Table 2 priority rig (`priority_rig`)
//! into a long-running process: a seeded `sim::Engine` stepped in real
//! or accelerated time on the main thread, a [`MetricsRegistry`] wired
//! in as the control plane's recorder, and an [`HttpServer`] serving
//! [`Router`] over the published [`ServeState`]. One simulated second is
//! one engine step; at `--accel 1` a step also takes one wall-clock
//! second, at `--accel 0` the engine runs flat out (the mode ci.sh and
//! the probe use).
//!
//! Shutdown (handle, stdin quit, `--seconds`, or `--wall-limit-s`)
//! follows the protocol in DESIGN.md: stop accepting, drain in-flight
//! requests, join the server's threads, then drop the engine.

use std::io::BufRead;
use std::sync::Arc;
use std::time::{Duration, Instant};

use capmaestro_core::obs::trace::TraceRecorder;
use capmaestro_core::obs::{json, prometheus, MetricsRegistry, Recorder};
use capmaestro_core::oplog::OpLog;
use capmaestro_core::workers::leaf_statics;
use capmaestro_core::{AllocatorKind, DeploymentConfig, PolicyKind, WorkerDeployment};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_sim::Engine;

use crate::client;
use crate::rig::{build_farm, build_rig, rig_assignments, RigSpec};
use crate::router::Router;
use crate::server::{HttpConfig, HttpServer, ShutdownHandle};
use crate::socket::{SocketTransport, SocketTransportConfig};
use crate::state::ServeState;

/// Configuration for one daemon run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (announced on
    /// stdout).
    pub addr: String,
    /// Simulated seconds to run; 0 means run until told to stop.
    pub seconds: u64,
    /// Simulated seconds per wall-clock second; 0 runs flat out.
    pub accel: f64,
    /// HTTP worker threads.
    pub workers: usize,
    /// Whether the rig runs with supply-priority overdraw (SPO) on.
    pub spo: bool,
    /// The budget-split allocator the control plane races at every tree
    /// node (`--policy`; the paper's waterfall by default).
    pub allocator: AllocatorKind,
    /// Quit when stdin closes or delivers a `quit` line.
    pub quit_on_stdin: bool,
    /// Hard wall-clock stop, regardless of simulated progress.
    pub wall_limit: Option<Duration>,
    /// Room-controller mode: expect this many out-of-process rack agents
    /// over the socket transport instead of simulating in-process.
    /// 0 (the default) keeps the classic engine mode.
    pub agents: usize,
    /// Bind address for the agent control listener (room mode only);
    /// port 0 picks an ephemeral port, announced on stdout.
    pub agent_addr: String,
    /// The rig agents and controller independently build (room mode
    /// only). Defaults to `racks:<agents>:2`.
    pub rig: Option<RigSpec>,
    /// Persist the operator event log to this file; on startup the file
    /// is replayed so the declared state survives restarts. `None` keeps
    /// the log in memory only.
    pub oplog: Option<std::path::PathBuf>,
    /// Write the Perfetto JSON trace to this file at run boundaries
    /// (every [`TRACE_RESET_PERIOD`] steps and on shutdown). `None`
    /// keeps traces reachable via `GET /v1/trace` only.
    pub trace: Option<std::path::PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:8080".to_string(),
            seconds: 0,
            accel: 1.0,
            workers: 2,
            spo: true,
            allocator: AllocatorKind::Waterfall,
            quit_on_stdin: false,
            wall_limit: None,
            agents: 0,
            agent_addr: "127.0.0.1:0".to_string(),
            rig: None,
            oplog: None,
            trace: None,
        }
    }
}

/// What the command line asked for.
#[derive(Debug, Clone)]
pub enum DaemonCommand {
    /// Run the daemon.
    Run(DaemonConfig),
    /// Probe a running daemon at this address and exit.
    Probe(String),
}

/// Usage text for `capmaestrod --help`.
pub const USAGE: &str = "\
capmaestrod — CapMaestro serving daemon

USAGE:
    capmaestrod [--addr HOST:PORT | --port PORT] [--seconds N] [--accel F]
                [--workers N] [--no-spo] [--policy NAME] [--quit-on-stdin]
                [--wall-limit-s N] [--oplog PATH] [--trace PATH]
    capmaestrod --agents N [--agent-addr HOST:PORT] [--rig SPEC] [...]
    capmaestrod --probe HOST:PORT

OPTIONS:
    --addr HOST:PORT   bind address (default 127.0.0.1:8080; port 0 = ephemeral)
    --port PORT        shorthand for --addr 127.0.0.1:PORT
    --seconds N        simulated seconds to run (default 0 = unbounded)
    --accel F          simulated seconds per wall second (default 1; 0 = flat out)
    --workers N        http worker threads (default 2)
    --no-spo           disable supply-priority overdraw in the rig
    --policy NAME      budget-split allocator: waterfall (default),
                       waterfilling, or fair_share (engine mode only)
    --quit-on-stdin    exit when stdin closes or receives a 'quit' line
    --wall-limit-s N   hard wall-clock stop after N seconds
    --oplog PATH       persist the operator event log to PATH (replayed on
                       startup, so declared state survives restarts)
    --trace PATH       write the Perfetto JSON trace to PATH at run
                       boundaries and on shutdown (engine mode only)
    --agents N         room-controller mode: run the control plane over N
                       out-of-process capmaestro-agent rack workers
    --agent-addr ADDR  agent listener bind address (room mode; default
                       127.0.0.1:0, announced on stdout)
    --rig SPEC         rig both sides build: fig2 or racks:R:S (room mode;
                       default racks:<agents>:2)
    --probe ADDR       smoke-check a running daemon: scrape and validate
                       the /v1 surface and the deprecated aliases, then
                       drive an idempotent budget mutation through the
                       event log

ENDPOINTS (see also the deprecated unversioned aliases):
    GET   /v1/metrics               Prometheus text exposition
    GET   /v1/healthz               liveness + oplog head / applied seq
    GET   /v1/report                JSON snapshot of the latest round
    GET   /v1/events?since=SEQ      operator events after SEQ
    GET   /v1/trace?last_s=N        Perfetto JSON trace (trailing N s)
    POST  /v1/budget                declare all root budgets, e.g. [1240]
    PUT   /v1/trees/{id}/budget     declare one tree's root budget
    PATCH /v1/groups/{t}.{n}/priority  declare/clear a group priority band
    POST  /v1/servers/{id}:drain    drain (power off) a server
    POST  /v1/servers/{id}:undrain  return a server to service
    PUT   /v1/allocator             declare the budget-split policy
";

/// Parse command-line arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<DaemonCommand, String> {
    let mut config = DaemonConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_for("--addr")?,
            "--port" => {
                let port: u16 = value_for("--port")?
                    .parse()
                    .map_err(|_| "--port needs a number in 0..=65535".to_string())?;
                config.addr = format!("127.0.0.1:{port}");
            }
            "--seconds" => {
                config.seconds = value_for("--seconds")?
                    .parse()
                    .map_err(|_| "--seconds needs a non-negative integer".to_string())?;
            }
            "--accel" => {
                let accel: f64 = value_for("--accel")?
                    .parse()
                    .map_err(|_| "--accel needs a number".to_string())?;
                if !accel.is_finite() || accel < 0.0 {
                    return Err("--accel must be finite and >= 0".to_string());
                }
                config.accel = accel;
            }
            "--workers" => {
                config.workers = value_for("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
            }
            "--no-spo" => config.spo = false,
            "--policy" => {
                config.allocator = value_for("--policy")?
                    .parse::<AllocatorKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--quit-on-stdin" => config.quit_on_stdin = true,
            "--wall-limit-s" => {
                let secs: u64 = value_for("--wall-limit-s")?
                    .parse()
                    .map_err(|_| "--wall-limit-s needs a non-negative integer".to_string())?;
                config.wall_limit = Some(Duration::from_secs(secs));
            }
            "--agents" => {
                config.agents = value_for("--agents")?
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--agents needs a positive integer".to_string())?;
            }
            "--agent-addr" => config.agent_addr = value_for("--agent-addr")?,
            "--oplog" => config.oplog = Some(value_for("--oplog")?.into()),
            "--trace" => config.trace = Some(value_for("--trace")?.into()),
            "--rig" => config.rig = Some(RigSpec::parse(&value_for("--rig")?)?),
            "--probe" => return Ok(DaemonCommand::Probe(value_for("--probe")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(DaemonCommand::Run(config))
}

/// Steps the engine trace is reset at, bounding daemon memory: the
/// in-engine `Trace` grows per simulated second and nothing reads it in
/// serving mode.
const TRACE_RESET_PERIOD: u64 = 3600;

/// Advance the engine by one simulated second and publish the result.
///
/// Shared by the daemon loop and the endpoint tests so both reconcile
/// and publish identically. At each round boundary (pre-step clock a
/// period multiple) the operator reconciler runs first, so declared
/// budgets, priorities, drains, and allocator switches land in that
/// round. Returns whether this step fired a control round.
pub fn drive_second(engine: &mut Engine, state: &ServeState) -> bool {
    // Rounds fire when the pre-step clock is a period multiple.
    let round_ran = engine.now_s().is_multiple_of(engine.control_period_s());
    if round_ran {
        state.reconcile(engine);
    }
    engine.step();
    state.publish(engine, round_ran);
    round_ran
}

/// Run the daemon until a stop condition. Returns the number of
/// simulated seconds executed.
pub fn run(config: &DaemonConfig) -> Result<u64, String> {
    if config.agents > 0 {
        if config.allocator != AllocatorKind::Waterfall {
            return Err(format!(
                "--policy {} is not supported with --agents: the distributed \
                 rack workers run the paper's waterfall only",
                config.allocator
            ));
        }
        return run_room(config);
    }
    let rig = priority_rig(
        RigConfig::table2()
            .with_spo(config.spo)
            .with_allocator(config.allocator),
    );
    let registry = Arc::new(MetricsRegistry::new());
    // Engine mode always keeps the timeline: the ring is bounded, and
    // the trace recorder forwards every metric call to the registry so
    // /v1/metrics sees exactly what it always did.
    let trace = Arc::new(
        TraceRecorder::new().with_forward(registry.clone() as Arc<dyn Recorder>),
    );
    let mut engine = Engine::new(rig);
    engine.plane_mut().set_recorder(trace.clone());

    let mut state = ServeState::new(registry.clone(), engine.control_period_s())
        .with_policy_label(config.allocator.name());
    if let Some(path) = &config.oplog {
        let (log, recovery) = OpLog::open(path)
            .map_err(|e| format!("open oplog {}: {e}", path.display()))?;
        if recovery.truncated {
            eprintln!(
                "capmaestrod: oplog {}: dropped {} torn trailing bytes, recovered {} events",
                path.display(),
                recovery.dropped_bytes,
                recovery.recovered
            );
        }
        println!(
            "capmaestrod: oplog {} replayed {} events",
            path.display(),
            log.head_seq()
        );
        state = state.with_oplog(log);
    }
    let state = Arc::new(state);
    let router = Router::new(state.clone(), registry.clone()).with_trace(trace.clone());
    let http_config = HttpConfig::default()
        .with_addr(config.addr.clone())
        .with_workers(config.workers)
        .with_recorder(registry.clone());
    let mut server = HttpServer::bind(http_config, Arc::new(router))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;

    // ci.sh and the tests parse this line for the ephemeral port.
    println!("capmaestrod: listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let shutdown = server.shutdown_handle();
    if config.quit_on_stdin {
        spawn_stdin_watcher(shutdown.clone());
    }

    let started = Instant::now();
    let step_wall = if config.accel > 0.0 {
        Some(Duration::from_secs_f64(1.0 / config.accel))
    } else {
        None
    };
    let mut steps: u64 = 0;
    while !shutdown.is_requested() {
        if config.seconds > 0 && steps >= config.seconds {
            break;
        }
        if let Some(limit) = config.wall_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        drive_second(&mut engine, &state);
        steps += 1;
        if steps.is_multiple_of(TRACE_RESET_PERIOD) {
            engine.reset_trace();
            write_trace_file(config.trace.as_deref(), &trace);
        }
        if let Some(step_wall) = step_wall {
            pace(step_wall, &shutdown);
        }
    }

    // Shutdown protocol: stop accepting, drain in-flight, join threads —
    // only then is the engine (still borrowed by nobody, but the state
    // the handlers read) allowed to go away.
    server.shutdown();
    write_trace_file(config.trace.as_deref(), &trace);
    drop(engine);
    Ok(steps)
}

/// Run the daemon as a room controller over out-of-process rack agents.
///
/// The world lives in the agents: the controller builds the rig only to
/// derive trees, assignments and the fail-safe statics, then drives
/// [`WorkerDeployment`] rounds over a [`SocketTransport`] listener whose
/// address is announced on stdout (`capmaestrod: agents connect to ...`).
/// One loop iteration is one control round plus one simulated second of
/// agent-side world time. `/healthz` reports `degraded` with a non-zero
/// `stale_racks` count whenever any agent's cuts were budgeted from
/// fail-safe metrics this round — a partitioned, frozen, or dead agent
/// after the stale-hold window — and recovers when the agent reconnects.
fn run_room(config: &DaemonConfig) -> Result<u64, String> {
    let spec = config.rig.unwrap_or(RigSpec::Racks {
        racks: config.agents,
        servers_per_rack: 2,
    });
    let rig = build_rig(spec);
    let trees_total = rig.trees.len();
    let assignments = rig_assignments(&rig, config.agents);
    // The farm is built only to capture the per-leaf fail-safe statics;
    // the servers themselves live in the agents.
    let statics = {
        let farm = build_farm(&rig.topo);
        leaf_statics(&rig.trees, &assignments, &farm)
    };

    let registry = Arc::new(MetricsRegistry::new());
    let transport = SocketTransport::bind(
        SocketTransportConfig::new(config.agents).with_addr(config.agent_addr.clone()),
    )
    .map_err(|e| format!("bind agent listener {}: {e}", config.agent_addr))?;
    // ci.sh and the tests parse this line for the agent port.
    println!("capmaestrod: agents connect to {}", transport.local_addr());

    // The controller's view of the declared budgets, reconciled against
    // the oplog every round.
    let mut live_budgets = rig.root_budgets.clone();
    let mut deployment = WorkerDeployment::with_transport(
        rig.trees,
        rig.root_budgets,
        PolicyKind::GlobalPriority,
        assignments,
        &statics,
        Box::new(transport),
        DeploymentConfig::default().with_recorder(registry.clone()),
    );

    let mut state = ServeState::new(registry.clone(), 1)
        .with_policy_label(AllocatorKind::Waterfall.name())
        .with_budgets_only();
    if let Some(path) = &config.oplog {
        let (log, recovery) = OpLog::open(path)
            .map_err(|e| format!("open oplog {}: {e}", path.display()))?;
        if recovery.truncated {
            eprintln!(
                "capmaestrod: oplog {}: dropped {} torn trailing bytes, recovered {} events",
                path.display(),
                recovery.dropped_bytes,
                recovery.recovered
            );
        }
        state = state.with_oplog(log);
    }
    let state = Arc::new(state);
    let router = Router::new(state.clone(), registry.clone());
    let http_config = HttpConfig::default()
        .with_addr(config.addr.clone())
        .with_workers(config.workers)
        .with_recorder(registry.clone());
    let mut server = HttpServer::bind(http_config, Arc::new(router))
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    println!("capmaestrod: listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let shutdown = server.shutdown_handle();
    if config.quit_on_stdin {
        spawn_stdin_watcher(shutdown.clone());
    }

    let started = Instant::now();
    let step_wall = if config.accel > 0.0 {
        Some(Duration::from_secs_f64(1.0 / config.accel))
    } else {
        None
    };
    let mut rounds: u64 = 0;
    while !shutdown.is_requested() {
        if config.seconds > 0 && rounds >= config.seconds {
            break;
        }
        if let Some(limit) = config.wall_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        if let Some(target) = state.reconcile_distributed(&live_budgets) {
            deployment.set_root_budgets(target.clone());
            live_budgets = target;
        }
        let outcome = deployment.run_round(rounds);
        deployment.advance(1);
        let stale_racks = deployment
            .assignments()
            .iter()
            .filter(|a| a.cuts.iter().any(|(c, _)| outcome.failsafe_cuts.contains(c)))
            .count();
        rounds += 1;
        state.publish_distributed(rounds, trees_total, stale_racks);
        if let Some(step_wall) = step_wall {
            pace(step_wall, &shutdown);
        }
    }

    server.shutdown();
    deployment.shutdown();
    Ok(rounds)
}

/// Write the full retained timeline to `path` (when `--trace` was
/// given), replacing any previous boundary's file. Failures are
/// reported but never take the daemon down: tracing is best-effort
/// observability, not the control loop.
fn write_trace_file(path: Option<&std::path::Path>, trace: &TraceRecorder) {
    let Some(path) = path else {
        return;
    };
    if let Err(e) = std::fs::write(path, trace.render(None)) {
        eprintln!("capmaestrod: write trace {}: {e}", path.display());
    }
}

/// Sleep `total` in small chunks, returning early on shutdown.
fn pace(total: Duration, shutdown: &ShutdownHandle) {
    let chunk = Duration::from_millis(50);
    let deadline = Instant::now() + total;
    while !shutdown.is_requested() {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        std::thread::sleep(chunk.min(deadline - now));
    }
}

/// Watch stdin; request shutdown on EOF or a `quit` line.
fn spawn_stdin_watcher(shutdown: ShutdownHandle) {
    std::thread::Builder::new()
        .name("serve-stdin".to_string())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(line) if line.trim() == "quit" => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            shutdown.request();
        })
        .expect("spawn serve-stdin thread");
}

/// Smoke-check a running daemon: every endpoint must answer and every
/// payload must validate. Returns a human-readable transcript.
pub fn probe(addr: &str) -> Result<String, String> {
    let mut transcript = String::new();

    let metrics = client::get(addr, "/metrics")?;
    if metrics.status != 200 {
        return Err(format!("/metrics answered {}", metrics.status));
    }
    let page = metrics.body_str()?;
    let samples = prometheus::validate(page)
        .map_err(|e| format!("/metrics payload does not validate: {e}"))?;
    transcript.push_str(&format!("/metrics: 200, {samples} valid sample lines\n"));

    let health = client::get(addr, "/healthz")?;
    if health.status != 200 {
        return Err(format!(
            "/healthz answered {}: {}",
            health.status,
            health.body_str().unwrap_or("<binary>")
        ));
    }
    transcript.push_str(&format!("/healthz: 200, {}", health.body_str()?));

    let report = client::get(addr, "/report")?;
    if report.status != 200 {
        return Err(format!("/report answered {}", report.status));
    }
    json::parse(report.body_str()?)
        .map_err(|e| format!("/report payload does not parse as json: {e}"))?;
    transcript.push_str("/report: 200, parses as a metrics snapshot\n");

    if metrics.header("deprecation") != Some("true") {
        return Err("legacy /metrics is missing the Deprecation header".into());
    }
    let v1_metrics = client::get(addr, "/v1/metrics")?;
    if v1_metrics.status != 200 || v1_metrics.header("deprecation").is_some() {
        return Err(format!(
            "/v1/metrics answered {} (deprecation: {:?})",
            v1_metrics.status,
            v1_metrics.header("deprecation")
        ));
    }
    transcript.push_str("/v1/metrics: 200, legacy alias carries Deprecation: true\n");

    let budget = client::post(addr, "/budget", b"[1240]")?;
    if budget.status != 200 {
        return Err(format!(
            "POST /budget answered {}: {}",
            budget.status,
            budget.body_str().unwrap_or("<binary>")
        ));
    }
    transcript.push_str(&format!("POST /budget: 200, {}", budget.body_str()?));

    let key = [("Idempotency-Key", "probe-tree0")];
    let first = client::put(addr, "/v1/trees/0/budget", &key, b"1240")?;
    if first.status != 200 {
        return Err(format!(
            "PUT /v1/trees/0/budget answered {}: {}",
            first.status,
            first.body_str().unwrap_or("<binary>")
        ));
    }
    let replay = client::put(addr, "/v1/trees/0/budget", &key, b"1240")?;
    if replay.status != 200 || !replay.body_str()?.contains("\"replayed\":true") {
        return Err(format!(
            "idempotent replay answered {}: {}",
            replay.status,
            replay.body_str().unwrap_or("<binary>")
        ));
    }
    transcript.push_str("PUT /v1/trees/0/budget: 200, idempotent replay confirmed\n");

    let events = client::get(addr, "/v1/events")?;
    if events.status != 200 {
        return Err(format!("GET /v1/events answered {}", events.status));
    }
    let events_body = events.body_str()?;
    if !events_body.trim_start().starts_with("{\"head\":") {
        return Err(format!("/v1/events payload is malformed: {events_body}"));
    }
    if !events_body.contains("set_tree_budget") {
        return Err(format!(
            "/v1/events does not show the staged tree budget: {events_body}"
        ));
    }
    transcript.push_str("GET /v1/events: 200, staged mutation is in the log\n");

    let again = client::get(addr, "/metrics")?;
    if again.status != 200 {
        return Err(format!("second /metrics answered {}", again.status));
    }
    prometheus::validate(again.body_str()?)
        .map_err(|e| format!("second /metrics payload does not validate: {e}"))?;
    transcript.push_str("probe: all endpoints healthy\n");
    Ok(transcript)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn policy_flag_selects_the_allocator() {
        let parsed = parse_args(&args(&["--policy", "waterfilling"])).expect("valid flag");
        match parsed {
            DaemonCommand::Run(config) => {
                assert_eq!(config.allocator, AllocatorKind::Waterfilling);
            }
            other => panic!("expected Run, got {other:?}"),
        }
        // Default stays the paper's waterfall.
        match parse_args(&[]).expect("empty args") {
            DaemonCommand::Run(config) => {
                assert_eq!(config.allocator, AllocatorKind::Waterfall);
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn unknown_policy_name_is_rejected_with_the_valid_list() {
        let err = parse_args(&args(&["--policy", "bogus"])).expect_err("bogus policy");
        assert!(err.contains("bogus"), "error names the offender: {err}");
        assert!(
            err.contains("waterfall") && err.contains("fair_share"),
            "error lists the valid policies: {err}"
        );
    }

    #[test]
    fn non_waterfall_policy_is_rejected_in_room_mode() {
        let config = DaemonConfig {
            agents: 2,
            allocator: AllocatorKind::FairShare,
            ..DaemonConfig::default()
        };
        let err = run(&config).expect_err("room mode is waterfall-only");
        assert!(err.contains("--agents"), "error explains the conflict: {err}");
    }
}
