//! The rack agent: one rack worker as its own OS process.
//!
//! An agent builds the same rig as its room controller (see
//! [`crate::rig`]), claims its [`RackAssignment`] by worker index, and
//! owns a *local* farm of exactly the servers assigned to it — the
//! process boundary is also the simulation boundary, which is what the
//! server-disjointness of
//! [`rack_assignments`](capmaestro_core::workers::rack_assignments)
//! guarantees is safe.
//!
//! The loop is connection-scoped but the worker state is not: the
//! [`RackWorker`] (estimators, controllers) and the farm survive
//! reconnects, so a blip costs staleness, not history. Reconnection is
//! outbound with jittered exponential backoff; a received
//! [`DownMsg::Shutdown`] is terminal and the agent exits instead of
//! reconnecting.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use capmaestro_core::obs::{names, null_recorder, Recorder};
use capmaestro_core::wire::{decode_down, encode_up};
use capmaestro_core::{DownMsg, Farm, RackWorker, UpMsg};
use capmaestro_sim::procchaos::demand_at;
use capmaestro_units::Seconds;

use crate::frame::{write_frame, FrameReader};
use crate::rig::{build_owned_farm, build_rig, rig_assignments, RigSpec};

/// Configuration of one agent process.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Controller address to connect to.
    pub addr: String,
    /// This agent's worker index in `[0, workers_total)`.
    pub worker: usize,
    /// Fleet size; must match the controller's.
    pub workers_total: usize,
    /// The rig both sides build.
    pub rig: RigSpec,
    /// Liveness probe period.
    pub heartbeat_interval: Duration,
    /// First reconnect backoff; doubles per failure.
    pub reconnect_base: Duration,
    /// Backoff ceiling.
    pub reconnect_cap: Duration,
    /// Consecutive failed connection attempts before giving up; `None`
    /// retries forever (the daemon default — a partitioned agent's job
    /// is to keep trying).
    pub max_connect_attempts: Option<u64>,
    /// Seed of the [`demand_at`] schedule applied while advancing, or
    /// `None` to hold demand constant.
    pub demand_seed: Option<u64>,
    /// Metrics sink ([`names::AGENT_RECONNECTS_TOTAL`],
    /// [`names::AGENT_HEARTBEAT_RTT_SECONDS`]).
    pub recorder: Arc<dyn Recorder>,
}

impl AgentConfig {
    /// An agent for worker `worker` of `workers_total`, connecting to
    /// `addr`, with test/bench-friendly defaults (100 ms heartbeats,
    /// 50 ms–1 s backoff, unlimited retries).
    pub fn new(addr: impl Into<String>, worker: usize, workers_total: usize, rig: RigSpec) -> Self {
        AgentConfig {
            addr: addr.into(),
            worker,
            workers_total,
            rig,
            heartbeat_interval: Duration::from_millis(100),
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(1),
            max_connect_attempts: None,
            demand_seed: None,
            recorder: null_recorder(),
        }
    }
}

/// What an agent did over its lifetime, reported on clean exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AgentReport {
    /// Rounds whose budgets this agent enforced.
    pub rounds_enforced: u64,
    /// Advance commands executed.
    pub advances: u64,
    /// Local invariant violations observed (also reported upstream in
    /// every [`UpMsg::Advanced`]).
    pub violations_total: u64,
    /// Times the agent re-established its controller connection after
    /// losing an established one.
    pub reconnects: u64,
}

/// Runs the agent until the controller says [`DownMsg::Shutdown`] or the
/// connection budget runs out.
///
/// Returns `Err` on configuration errors (bad worker index, fleet-shape
/// mismatch with the controller) and on connection exhaustion.
pub fn run_agent(config: &AgentConfig) -> Result<AgentReport, String> {
    if config.worker >= config.workers_total {
        return Err(format!(
            "worker index {} out of range for a fleet of {}",
            config.worker, config.workers_total
        ));
    }
    let rig = build_rig(config.rig);
    let assignments = rig_assignments(&rig, config.workers_total);
    let assignment = assignments[config.worker].clone();
    let mut farm = build_owned_farm(&assignment.owned);
    let mut worker = RackWorker::new(
        assignment,
        rig.trees,
        capmaestro_core::PolicyKind::GlobalPriority,
    );

    let mut report = AgentReport::default();
    let mut session = SessionState::default();
    let mut established_once = false;
    let mut attempts = 0u64;
    let mut backoff = config.reconnect_base;
    let trace = std::env::var("CAPM_AGENT_TRACE").is_ok_and(|v| v == "1");
    loop {
        match connect(config) {
            Ok(stream) => {
                if established_once {
                    report.reconnects += 1;
                    config.recorder.counter_add(names::AGENT_RECONNECTS_TOTAL, 1);
                }
                established_once = true;
                attempts = 0;
                backoff = config.reconnect_base;
                if trace {
                    eprintln!("[agent {}] connected", config.worker);
                }
                let end = serve_connection(stream, config, &mut worker, &mut farm, &mut report, &mut session);
                if trace {
                    let what = match &end {
                        SessionEnd::Shutdown => "shutdown".to_string(),
                        SessionEnd::ConnectionLost => "connection lost".to_string(),
                        SessionEnd::FleetMismatch(e) => format!("fleet mismatch: {e}"),
                    };
                    eprintln!("[agent {}] session ended: {what}", config.worker);
                }
                match end {
                    SessionEnd::Shutdown => return Ok(report),
                    SessionEnd::ConnectionLost => {}
                    SessionEnd::FleetMismatch(e) => return Err(e),
                }
            }
            Err(e) => {
                attempts += 1;
                if trace {
                    eprintln!("[agent {}] connect failed (attempt {attempts}): {e}", config.worker);
                }
                if config.max_connect_attempts.is_some_and(|max| attempts >= max) {
                    return Err(format!(
                        "gave up connecting to {} after {attempts} attempts",
                        config.addr
                    ));
                }
            }
        }
        std::thread::sleep(jittered(backoff, config.worker as u64, attempts));
        backoff = (backoff * 2).min(config.reconnect_cap);
    }
}

/// Worker state that must survive reconnects but not restarts.
#[derive(Debug, Default)]
struct SessionState {
    /// Advance commands executed since process start: the round index of
    /// the demand schedule.
    advance_ordinal: u64,
    /// Heartbeat nonce sequence.
    next_nonce: u64,
}

/// Why a connection ended.
enum SessionEnd {
    /// The controller ordered a terminal shutdown.
    Shutdown,
    /// I/O failure — reconnect.
    ConnectionLost,
    /// The controller runs a different fleet shape — fatal.
    FleetMismatch(String),
}

fn connect(config: &AgentConfig) -> Result<TcpStream, String> {
    let addr = config
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {}: {e}", config.addr))?
        .next()
        .ok_or_else(|| format!("{} resolves to nothing", config.addr))?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Pumps one established connection: handshake, then frames until the
/// connection dies or the controller says shutdown.
fn serve_connection(
    mut stream: TcpStream,
    config: &AgentConfig,
    worker: &mut RackWorker,
    farm: &mut Farm,
    report: &mut AgentReport,
    session: &mut SessionState,
) -> SessionEnd {
    let mut reader = FrameReader::new();
    let hello = encode_up(&UpMsg::Hello {
        worker: config.worker,
        workers_total: config.workers_total,
    });
    if write_frame(&mut stream, &hello, Duration::from_secs(2)).is_err() {
        return SessionEnd::ConnectionLost;
    }
    match read_msg(&mut reader, &mut stream, Instant::now() + Duration::from_secs(5)) {
        Ok(Some(DownMsg::Welcome { workers_total })) => {
            if workers_total != config.workers_total {
                return SessionEnd::FleetMismatch(format!(
                    "controller runs {} workers, agent configured for {}",
                    workers_total, config.workers_total
                ));
            }
        }
        Ok(Some(DownMsg::Shutdown)) => return SessionEnd::Shutdown,
        // No Welcome: the controller refused the slot (live duplicate) or
        // died mid-handshake. Back off and retry.
        Ok(Some(_)) | Ok(None) | Err(_) => return SessionEnd::ConnectionLost,
    }

    let mut next_heartbeat = Instant::now() + config.heartbeat_interval;
    // nonce -> send time of the heartbeat in flight.
    let mut in_flight: Option<(u64, Instant)> = None;
    loop {
        let msg = match read_msg(&mut reader, &mut stream, next_heartbeat) {
            Ok(msg) => msg,
            Err(_) => return SessionEnd::ConnectionLost,
        };
        match msg {
            None => {} // heartbeat tick
            Some(DownMsg::Gather { round }) => {
                let metrics = worker.gather(farm);
                let up = encode_up(&UpMsg::Metrics {
                    worker: config.worker,
                    round,
                    metrics,
                });
                if write_frame(&mut stream, &up, Duration::from_secs(1)).is_err() {
                    return SessionEnd::ConnectionLost;
                }
            }
            Some(DownMsg::Budgets { round, budgets }) => {
                worker.enforce(farm, &budgets);
                report.rounds_enforced += 1;
                let up = encode_up(&UpMsg::Enforced {
                    worker: config.worker,
                    round,
                });
                if write_frame(&mut stream, &up, Duration::from_secs(1)).is_err() {
                    return SessionEnd::ConnectionLost;
                }
            }
            Some(DownMsg::Advance { seconds }) => {
                if let Some(seed) = config.demand_seed {
                    apply_demand_schedule(farm, seed, session.advance_ordinal);
                }
                for _ in 0..seconds {
                    farm.step_all(Seconds::new(1.0));
                }
                report.violations_total += audit_owned(farm);
                session.advance_ordinal += 1;
                report.advances += 1;
                let up = encode_up(&UpMsg::Advanced {
                    worker: config.worker,
                    seconds,
                    violations_total: report.violations_total,
                });
                if write_frame(&mut stream, &up, Duration::from_secs(1)).is_err() {
                    return SessionEnd::ConnectionLost;
                }
            }
            Some(DownMsg::HeartbeatAck { nonce }) => {
                if let Some((expected, sent)) = in_flight {
                    if nonce == expected {
                        config
                            .recorder
                            .observe(names::AGENT_HEARTBEAT_RTT_SECONDS, sent.elapsed().as_secs_f64());
                        in_flight = None;
                    }
                }
            }
            Some(DownMsg::Welcome { .. }) => {} // duplicate, harmless
            Some(DownMsg::Shutdown) => return SessionEnd::Shutdown,
        }
        if Instant::now() >= next_heartbeat {
            let nonce = session.next_nonce;
            session.next_nonce += 1;
            let up = encode_up(&UpMsg::Heartbeat {
                worker: config.worker,
                nonce,
            });
            if write_frame(&mut stream, &up, Duration::from_secs(1)).is_err() {
                return SessionEnd::ConnectionLost;
            }
            in_flight = Some((nonce, Instant::now()));
            next_heartbeat = Instant::now() + config.heartbeat_interval;
        }
    }
}

/// Reads and decodes one downstream message, or `None` on deadline.
fn read_msg(
    reader: &mut FrameReader,
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<Option<DownMsg>, ()> {
    match reader.read_frame(stream, deadline) {
        Ok(Some(payload)) => decode_down(&payload).map(Some).map_err(|_| ()),
        Ok(None) => Ok(None),
        Err(_) => Err(()),
    }
}

/// Applies the seeded demand schedule to every owned server.
fn apply_demand_schedule(farm: &mut Farm, seed: u64, ordinal: u64) {
    let ids: Vec<_> = farm.ids().to_vec();
    for id in ids {
        if let Some(demand) = demand_at(seed, id, ordinal) {
            if let Some(mut srv) = farm.get_mut(id) {
                srv.set_offered_demand(demand);
            }
        }
    }
}

/// Local invariant audit over the owned servers, the agent-side stand-in
/// for the central `InvariantTracker`: physical state must stay sane.
/// Commanded DC caps may legally sit outside `[Pcap_min, Pcap_max]` (the
/// node manager clamps at actuation), so the audit checks what a server
/// can never legitimately do: non-finite or negative power, a powered
/// server drawing beyond `Pcap_max` once throttling has anything to say,
/// or a throttle outside `[0, 1]`. Returns the breaches found this pass.
fn audit_owned(farm: &Farm) -> u64 {
    let mut breaches = 0u64;
    let eps = 1e-6;
    for (_, srv) in farm.iter() {
        let ac = srv.achieved_ac().as_f64();
        if !ac.is_finite() || ac < -eps {
            breaches += 1;
        }
        let model = srv.config().model();
        // Achieved DC power can never exceed Pcap_max; AC adds only
        // conversion loss, bounded by the bank's worst-case efficiency.
        let ac_ceiling = model.cap_max().as_f64() / srv.config().efficiency().as_f64().max(1e-3);
        if srv.is_powered() && ac > ac_ceiling * (1.0 + 1e-3) {
            breaches += 1;
        }
        let throttle = srv.throttle().as_f64();
        if !(0.0..=1.0 + 1e-9).contains(&throttle) {
            breaches += 1;
        }
    }
    breaches
}

/// Deterministic jitter: the backoff ±25 %, keyed on worker and attempt
/// so a partitioned fleet does not reconnect in lockstep.
fn jittered(base: Duration, worker: u64, attempt: u64) -> Duration {
    let mut x = worker
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(attempt)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 31;
    let frac = (x % 1000) as f64 / 1000.0; // [0, 1)
    base.mul_f64(0.75 + frac * 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_band() {
        let base = Duration::from_millis(100);
        for worker in 0..8 {
            for attempt in 0..8 {
                let j = jittered(base, worker, attempt);
                assert!(j >= Duration::from_millis(75), "{j:?}");
                assert!(j <= Duration::from_millis(125), "{j:?}");
            }
        }
    }

    #[test]
    fn bad_worker_index_is_rejected() {
        let config = AgentConfig::new("127.0.0.1:1", 3, 2, RigSpec::Fig2);
        let err = run_agent(&config).expect_err("out-of-range index");
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn connect_exhaustion_reports_failure() {
        // Nothing listens on a bound-then-dropped ephemeral port.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let mut config = AgentConfig::new(addr, 0, 1, RigSpec::Fig2);
        config.max_connect_attempts = Some(2);
        config.reconnect_base = Duration::from_millis(1);
        let err = run_agent(&config).expect_err("nothing to connect to");
        assert!(err.contains("gave up"), "{err}");
    }
}
