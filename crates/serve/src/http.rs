//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The parser is deliberately strict and bounded: a request head larger
//! than [`HttpLimits::max_head_bytes`] or a declared body larger than
//! [`HttpLimits::max_body_bytes`] is rejected with `413`; anything that
//! does not match the grammar (request line, header syntax, version,
//! content length) is rejected with `400`. It never panics on arbitrary
//! input — the proptest suite in `tests/http_parser_fuzz.rs` holds it to
//! that.
//!
//! The server speaks one request per connection and always answers
//! `Connection: close`, which keeps the state machine trivial and makes
//! responses atomic: a client either reads a complete response or the
//! connection drops before the first byte.

use std::error::Error;
use std::fmt;

/// Bounds applied while reading a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (excluding the blank-line
    /// terminator). Exceeding it yields `413`.
    pub max_head_bytes: usize,
    /// Maximum bytes of declared `Content-Length`. Exceeding it yields
    /// `413`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Maximum number of header lines accepted before `400`.
const MAX_HEADERS: usize = 100;

/// Maximum request-target length accepted before `400`.
const MAX_TARGET_BYTES: usize = 2048;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target, verbatim (path plus optional `?query`).
    pub target: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (everything before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter (`?since=5&x=y` → `since` is
    /// `"5"`). Values are taken verbatim — no percent-decoding, which the
    /// numeric parameters this API uses never need.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.target.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// A request-level protocol error, carrying the HTTP status to answer
/// with (`400` bad syntax, `405` wrong method, `413` too large).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The HTTP status code to respond with.
    pub status: u16,
    /// What was wrong, lowercase, for the response body.
    pub reason: String,
}

impl HttpError {
    /// A `400 Bad Request` error.
    pub fn bad_request(reason: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            reason: reason.into(),
        }
    }

    /// A `413 Payload Too Large` error.
    pub fn too_large(reason: impl Into<String>) -> Self {
        HttpError {
            status: 413,
            reason: reason.into(),
        }
    }

    /// The response announcing this error, in the same JSON error
    /// envelope the router's `ApiError` uses. The reason strings are all
    /// static lowercase ASCII, so no escaping is needed.
    pub fn to_response(&self) -> Response {
        let code = match self.status {
            400 => "bad_request",
            405 => "method_not_allowed",
            413 => "payload_too_large",
            _ => "error",
        };
        Response::new(
            self.status,
            "application/json",
            format!(
                "{{\"error\":{{\"code\":\"{code}\",\"message\":\"{}\"}}}}\n",
                self.reason
            ),
        )
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "http {}: {}", self.status, self.reason)
    }
}

impl Error for HttpError {}

/// Result of parsing a (possibly partial) request buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete request; `consumed` bytes of the buffer were used
    /// (pipelined trailing bytes are ignored — the connection closes
    /// after one response).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer belonging to this request.
        consumed: usize,
    },
    /// More bytes are needed.
    Incomplete,
    /// The bytes can never become a valid request.
    Error(HttpError),
}

/// Whether `method` looks like an HTTP token method (ASCII uppercase).
fn valid_method(method: &str) -> bool {
    !method.is_empty()
        && method.len() <= 16
        && method.bytes().all(|b| b.is_ascii_uppercase())
}

/// Whether `target` is an acceptable origin-form request target.
fn valid_target(target: &str) -> bool {
    target.starts_with('/')
        && target.len() <= MAX_TARGET_BYTES
        && target
            .bytes()
            .all(|b| (0x21..=0x7e).contains(&b) && b != b'"' && b != b'<' && b != b'>')
}

/// Whether `name` is a valid header field name (RFC 7230 token subset).
fn valid_header_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Try to parse one request from the front of `buf`.
///
/// Returns [`ParseOutcome::Incomplete`] while the head terminator (or the
/// declared body) has not arrived yet, [`ParseOutcome::Error`] as soon as
/// the bytes are provably not a valid request within `limits`, and
/// [`ParseOutcome::Complete`] otherwise. Never panics on any input.
pub fn parse_request(buf: &[u8], limits: &HttpLimits) -> ParseOutcome {
    // Locate the head terminator within the head budget.
    let search_window = buf.len().min(limits.max_head_bytes + 4);
    let head_end = buf[..search_window]
        .windows(4)
        .position(|w| w == b"\r\n\r\n");
    let Some(head_end) = head_end else {
        if buf.len() >= limits.max_head_bytes + 4 {
            return ParseOutcome::Error(HttpError::too_large("request head too large"));
        }
        return ParseOutcome::Incomplete;
    };
    if head_end > limits.max_head_bytes {
        return ParseOutcome::Error(HttpError::too_large("request head too large"));
    }

    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return ParseOutcome::Error(HttpError::bad_request(
            "request head is not valid utf-8",
        ));
    };

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Error(HttpError::bad_request("malformed request line"));
    };
    if !valid_method(method) {
        return ParseOutcome::Error(HttpError::bad_request("malformed request method"));
    }
    if !valid_target(target) {
        return ParseOutcome::Error(HttpError::bad_request("malformed request target"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ParseOutcome::Error(HttpError::bad_request("unsupported http version"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return ParseOutcome::Error(HttpError::bad_request("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error(HttpError::bad_request("malformed header line"));
        };
        if !valid_header_name(name) {
            return ParseOutcome::Error(HttpError::bad_request("malformed header name"));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return ParseOutcome::Error(HttpError::bad_request(
                        "malformed content-length",
                    ));
                };
                if content_length.is_some_and(|prev| prev != n) {
                    return ParseOutcome::Error(HttpError::bad_request(
                        "conflicting content-length headers",
                    ));
                }
                if n > limits.max_body_bytes {
                    return ParseOutcome::Error(HttpError::too_large(
                        "request body too large",
                    ));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                return ParseOutcome::Error(HttpError::bad_request(
                    "transfer-encoding is not supported",
                ));
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    let body_start = head_end + 4;
    let consumed = body_start + body_len;
    if buf.len() < consumed {
        return ParseOutcome::Incomplete;
    }
    ParseOutcome::Complete {
        request: Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[body_start..consumed].to_vec(),
        },
        consumed,
    }
}

/// An HTTP response ready to be written: status, content type, optional
/// extra headers, body. The writer adds `Content-Length` and
/// `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim after
    /// `Content-Type` — e.g. the `Deprecation: true` marker on legacy
    /// endpoint aliases.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit content type.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    /// Adds one extra response header. Values must already be valid
    /// header text (no CR/LF); everything this server emits is.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// The canonical reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize the full response (status line, headers, body) to wire
    /// bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        let _ = std::fmt::Write::write_fmt(
            &mut head,
            format_args!(
                "Content-Length: {}\r\nConnection: close\r\n\r\n",
                self.body.len()
            ),
        );
        let mut bytes = Vec::with_capacity(head.len() + self.body.len());
        bytes.extend_from_slice(head.as_bytes());
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> ParseOutcome {
        parse_request(bytes, &HttpLimits::default())
    }

    #[test]
    fn parses_a_plain_get() {
        let bytes = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let ParseOutcome::Complete { request, consumed } = parse(bytes) else {
            panic!("expected complete");
        };
        assert_eq!(request.method, "GET");
        assert_eq!(request.path(), "/metrics");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(consumed, bytes.len());
        assert!(request.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_ignores_pipelined_trailer() {
        let bytes = b"POST /budget HTTP/1.1\r\nContent-Length: 6\r\n\r\n[1240]GET / HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete { request, consumed } = parse(bytes) else {
            panic!("expected complete");
        };
        assert_eq!(request.body, b"[1240]");
        assert!(consumed < bytes.len());
    }

    #[test]
    fn partial_requests_are_incomplete() {
        assert_eq!(parse(b""), ParseOutcome::Incomplete);
        assert_eq!(parse(b"GET /metr"), ParseOutcome::Incomplete);
        assert_eq!(parse(b"GET / HTTP/1.1\r\n"), ParseOutcome::Incomplete);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n12345"),
            ParseOutcome::Incomplete
        );
    }

    #[test]
    fn malformed_requests_get_400() {
        for bad in [
            b"GET\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/0.9\r\n\r\n",
            b"GET / HTTP/1.1\r\nno_colon_here\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty name\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
        ] {
            match parse(bad) {
                ParseOutcome::Error(e) => assert_eq!(e.status, 400, "{bad:?}"),
                other => panic!("expected 400 for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_head_and_body_get_413() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 16,
        };
        let mut big_head = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        big_head.extend(std::iter::repeat_n(b'a', 128));
        assert_eq!(
            parse_request(&big_head, &limits),
            ParseOutcome::Error(HttpError::too_large("request head too large"))
        );
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n", &limits),
            ParseOutcome::Error(HttpError::too_large("request body too large"))
        );
    }

    #[test]
    fn response_bytes_carry_length_and_close() {
        let bytes = Response::text(200, "ok\n").to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn query_params_are_split_off_the_target() {
        let bytes = b"GET /v1/events?since=5&limit=2 HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete { request, .. } = parse(bytes) else {
            panic!("expected complete");
        };
        assert_eq!(request.path(), "/v1/events");
        assert_eq!(request.query_param("since"), Some("5"));
        assert_eq!(request.query_param("limit"), Some("2"));
        assert_eq!(request.query_param("missing"), None);
    }

    #[test]
    fn extra_headers_are_written_before_content_length() {
        let bytes = Response::text(200, "ok\n")
            .with_header("Deprecation", "true")
            .to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Deprecation: true\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
    }

    #[test]
    fn http_error_display_is_lowercase() {
        let msg = HttpError::bad_request("malformed request line").to_string();
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }
}
