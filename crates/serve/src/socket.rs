//! The socket [`Transport`]: rack workers as separate OS processes.
//!
//! The room controller binds a TCP listener; agents connect *outbound*
//! (datacenter-friendly: only the controller needs a routable address)
//! and identify themselves with [`UpMsg::Hello`]. One reader thread per
//! connection decodes frames, answers heartbeats inline, and forwards
//! everything else to the deployment through a channel, so
//! [`WorkerDeployment::run_round`](capmaestro_core::WorkerDeployment)
//! drives socket agents through exactly the code path it drives
//! in-process threads.
//!
//! Liveness is wholly owned here, feeding the deployment's existing
//! staleness ladder (stale-hold → fail-safe) without new control-plane
//! states:
//!
//! - a torn frame, EOF, or write failure kills the connection
//!   immediately — `send` starts returning `false` and the deployment
//!   treats the worker as partitioned;
//! - heartbeat silence past [`SocketTransportConfig::heartbeat_timeout`]
//!   does the same for a *frozen* peer (SIGSTOP, network blackhole)
//!   whose socket is still open;
//! - recovery is agent-driven: a reconnecting agent re-handshakes and
//!   simply replaces its slot, which the deployment observes as a
//!   dead→alive transition (counted as a respawn).

use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use capmaestro_core::wire::{decode_up, encode_down};
use capmaestro_core::workers::Transport;
use capmaestro_core::{DownMsg, UpMsg};

use crate::frame::{write_frame, FrameReader};

/// Accept-loop poll interval, mirroring the HTTP server's.
const ACCEPT_IDLE: Duration = Duration::from_millis(2);

/// How long a reader thread waits per poll before re-checking shutdown.
const READER_SLICE: Duration = Duration::from_millis(100);

/// Tuning knobs for a [`SocketTransport`].
#[derive(Debug, Clone)]
pub struct SocketTransportConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Number of rack workers expected to connect.
    pub worker_count: usize,
    /// Deadline for a fresh connection to complete its Hello.
    pub handshake_timeout: Duration,
    /// Silence (no frame of any kind) after which a worker is declared
    /// dead even though its socket is open — the frozen-peer detector.
    pub heartbeat_timeout: Duration,
    /// Per-frame write deadline toward an agent.
    pub write_timeout: Duration,
}

impl SocketTransportConfig {
    /// Defaults tuned for tests and benches: localhost ephemeral port,
    /// 5 s handshake, 1 s heartbeat silence, 1 s writes.
    pub fn new(worker_count: usize) -> Self {
        SocketTransportConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_count,
            handshake_timeout: Duration::from_secs(5),
            heartbeat_timeout: Duration::from_secs(1),
            write_timeout: Duration::from_secs(1),
        }
    }

    /// Replaces the bind address.
    #[must_use]
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Replaces the heartbeat-silence threshold.
    #[must_use]
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = timeout;
        self
    }
}

/// One worker's connection slot. `generation` fences stale reader
/// threads: a reconnect bumps it, and the old reader (still blocked on
/// the old socket) notices and exits without touching the new slot.
#[derive(Debug)]
struct ConnSlot {
    stream: Option<TcpStream>,
    generation: u64,
    last_seen: Instant,
    /// Latest cumulative violation count this worker reported, and the
    /// high-water mark across reconnects (an agent restart resets its
    /// local counter).
    violations_latest: u64,
    violations_floor: u64,
}

impl ConnSlot {
    fn violations_total(&self) -> u64 {
        self.violations_floor + self.violations_latest
    }
}

/// State shared between the transport, the accept thread, and the
/// per-connection reader threads.
#[derive(Debug)]
struct Shared {
    worker_count: usize,
    slots: Vec<Mutex<ConnSlot>>,
    up_tx: Sender<UpMsg>,
    shutdown: AtomicBool,
    heartbeat_timeout: Duration,
    write_timeout: Duration,
}

impl Shared {
    /// Whether `worker`'s slot holds a connection that spoke recently.
    fn slot_alive(&self, worker: usize) -> bool {
        let Some(slot) = self.slots.get(worker) else {
            return false;
        };
        let guard = slot.lock().expect("slot lock");
        guard.stream.is_some() && guard.last_seen.elapsed() <= self.heartbeat_timeout
    }

    /// Drops `worker`'s connection (if it is still generation `gen`;
    /// `None` forces it) and fences its reader.
    fn drop_conn(&self, worker: usize, gen: Option<u64>) {
        if let Some(slot) = self.slots.get(worker) {
            let mut guard = slot.lock().expect("slot lock");
            if gen.is_none_or(|g| g == guard.generation) {
                guard.stream = None;
                guard.generation += 1;
            }
        }
    }
}

/// The socket transport. See the module docs for the protocol.
#[derive(Debug)]
pub struct SocketTransport {
    shared: Arc<Shared>,
    up_rx: Receiver<UpMsg>,
    /// Messages pulled while waiting for `Advanced` acks, handed back to
    /// the next `recv_deadline` in arrival order.
    pending: VecDeque<UpMsg>,
    local_addr: std::net::SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SocketTransport {
    /// Binds the listener and starts accepting agents. Workers are *not*
    /// connected yet on return — use [`wait_for_workers`]
    /// (`Self::wait_for_workers`) before the first round for a clean
    /// start, or let early rounds ride the fail-safe path.
    pub fn bind(config: SocketTransportConfig) -> io::Result<Self> {
        assert!(config.worker_count > 0, "at least one rack worker is required");
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (up_tx, up_rx) = mpsc::channel();
        let now = Instant::now();
        let shared = Arc::new(Shared {
            worker_count: config.worker_count,
            slots: (0..config.worker_count)
                .map(|_| {
                    Mutex::new(ConnSlot {
                        stream: None,
                        generation: 0,
                        last_seen: now,
                        violations_latest: 0,
                        violations_floor: 0,
                    })
                })
                .collect(),
            up_tx,
            shutdown: AtomicBool::new(false),
            heartbeat_timeout: config.heartbeat_timeout,
            write_timeout: config.write_timeout,
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let handshake_timeout = config.handshake_timeout;
            thread::Builder::new()
                .name("socket-accept".to_string())
                .spawn(move || accept_loop(listener, shared, readers, handshake_timeout))
                .expect("spawn socket-accept thread")
        };
        Ok(SocketTransport {
            shared,
            up_rx,
            pending: VecDeque::new(),
            local_addr,
            accept_handle: Some(accept_handle),
            readers,
        })
    }

    /// The address agents should connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Blocks until every worker slot is alive or `timeout` passes.
    /// Returns whether the fleet is fully connected.
    pub fn wait_for_workers(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if (0..self.shared.worker_count).all(|w| self.shared.slot_alive(w)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// Sends `msg` over `worker`'s live connection, tearing the slot
    /// down on failure.
    fn send_to(&self, worker: usize, msg: &DownMsg) -> bool {
        let Some(slot) = self.shared.slots.get(worker) else {
            return false;
        };
        let payload = encode_down(msg);
        let mut guard = slot.lock().expect("slot lock");
        if guard.last_seen.elapsed() > self.shared.heartbeat_timeout {
            // Frozen peer: declare it dead rather than queueing bytes
            // into a black hole.
            guard.stream = None;
            guard.generation += 1;
            return false;
        }
        let Some(stream) = guard.stream.as_mut() else {
            return false;
        };
        if write_frame(stream, &payload, self.shared.write_timeout).is_ok() {
            true
        } else {
            guard.stream = None;
            guard.generation += 1;
            false
        }
    }
}

impl Transport for SocketTransport {
    fn worker_count(&self) -> usize {
        self.shared.worker_count
    }

    fn send(&mut self, worker: usize, msg: DownMsg) -> bool {
        self.send_to(worker, &msg)
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Option<UpMsg> {
        if let Some(msg) = self.pending.pop_front() {
            return Some(msg);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.up_rx.recv_timeout(remaining).ok()
    }

    fn advance(&mut self, seconds: u32, deadline: Instant) -> bool {
        let mut waiting: Vec<usize> = (0..self.shared.worker_count)
            .filter(|&w| self.send_to(w, &DownMsg::Advance { seconds }))
            .collect();
        while !waiting.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            match self.up_rx.recv_timeout(remaining) {
                Ok(UpMsg::Advanced {
                    worker,
                    seconds: s,
                    ..
                }) if s == seconds => waiting.retain(|&w| w != worker),
                // Anything else (late metrics, acks from a prior epoch)
                // is handed back to the round loop in order.
                Ok(other) => self.pending.push_back(other),
                Err(_) => return false,
            }
        }
        true
    }

    fn is_alive(&self, worker: usize) -> bool {
        self.shared.slot_alive(worker)
    }

    fn kill(&mut self, worker: usize) {
        let _ = self.send_to(worker, &DownMsg::Shutdown);
        self.shared.drop_conn(worker, None);
    }

    fn respawn(&mut self, worker: usize) -> bool {
        // Recovery is agent-driven: an agent reconnects on its own and
        // the slot comes back alive. Respawn just reports that state.
        self.is_alive(worker)
    }

    fn violations(&self) -> u64 {
        self.shared
            .slots
            .iter()
            .map(|s| s.lock().expect("slot lock").violations_total())
            .sum()
    }

    fn shutdown(&mut self) {
        for w in 0..self.shared.worker_count {
            let _ = self.send_to(w, &DownMsg::Shutdown);
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for w in 0..self.shared.worker_count {
            self.shared.drop_conn(w, None);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = {
            let mut readers = self.readers.lock().expect("readers lock");
            readers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown();
        }
    }
}

/// Accepts connections until shutdown, spawning one reader per socket.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    handshake_timeout: Duration,
) {
    let mut conn_seq = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_seq += 1;
                let shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name(format!("socket-agent-{conn_seq}"))
                    .spawn(move || reader_loop(stream, shared, handshake_timeout))
                    .expect("spawn socket reader thread");
                readers.lock().expect("readers lock").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_IDLE),
            Err(_) => thread::sleep(ACCEPT_IDLE),
        }
    }
}

/// Handshakes one inbound connection, registers it, then pumps frames
/// until the connection dies, the slot is superseded, or shutdown.
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>, handshake_timeout: Duration) {
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();

    // Handshake: first frame must be a valid Hello for this fleet.
    let deadline = Instant::now() + handshake_timeout;
    let hello = match reader.read_frame(&mut stream, deadline) {
        Ok(Some(payload)) => payload,
        Ok(None) | Err(_) => return, // too slow, closed, or garbage
    };
    let worker = match decode_up(&hello) {
        Ok(UpMsg::Hello {
            worker,
            workers_total,
        }) if worker < shared.worker_count && workers_total == shared.worker_count => worker,
        _ => return, // wrong fleet shape or protocol breach
    };

    // Register, superseding a dead or silent predecessor. A *live*
    // predecessor wins: two agents claiming one worker index is an
    // operator error, and the second connection is refused.
    let my_gen = {
        let mut guard = shared.slots[worker].lock().expect("slot lock");
        if guard.stream.is_some() && guard.last_seen.elapsed() <= shared.heartbeat_timeout {
            return;
        }
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        guard.stream = Some(write_half);
        guard.generation += 1;
        guard.last_seen = Instant::now();
        // This connection starts a fresh agent-local violation counter;
        // bank whatever the previous incarnation reported.
        guard.violations_floor += guard.violations_latest;
        guard.violations_latest = 0;
        guard.generation
    };

    let welcome = encode_down(&DownMsg::Welcome {
        workers_total: shared.worker_count,
    });
    if write_frame(&mut stream, &welcome, shared.write_timeout).is_err() {
        shared.drop_conn(worker, Some(my_gen));
        return;
    }

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            // Superseded by a reconnect? Exit without touching the slot.
            let guard = shared.slots[worker].lock().expect("slot lock");
            if guard.generation != my_gen {
                return;
            }
        }
        match reader.read_frame(&mut stream, Instant::now() + READER_SLICE) {
            Ok(None) => continue,
            Ok(Some(payload)) => {
                let Ok(msg) = decode_up(&payload) else {
                    // Garbage from a known worker: the connection can no
                    // longer be trusted to frame correctly.
                    shared.drop_conn(worker, Some(my_gen));
                    return;
                };
                {
                    let mut guard = shared.slots[worker].lock().expect("slot lock");
                    if guard.generation != my_gen {
                        return;
                    }
                    guard.last_seen = Instant::now();
                    if let UpMsg::Advanced {
                        violations_total, ..
                    } = msg
                    {
                        guard.violations_latest = violations_total;
                    }
                }
                match msg {
                    UpMsg::Heartbeat { nonce, .. } => {
                        // Answered inline so RTT measures the wire, not
                        // the round loop.
                        let ack = encode_down(&DownMsg::HeartbeatAck { nonce });
                        let mut guard = shared.slots[worker].lock().expect("slot lock");
                        if guard.generation != my_gen {
                            return;
                        }
                        if let Some(ws) = guard.stream.as_mut() {
                            if write_frame(ws, &ack, shared.write_timeout).is_err() {
                                guard.stream = None;
                                guard.generation += 1;
                                return;
                            }
                        }
                    }
                    UpMsg::Hello { .. } => {
                        // A second Hello mid-session is a protocol breach.
                        shared.drop_conn(worker, Some(my_gen));
                        return;
                    }
                    other => {
                        if shared.up_tx.send(other).is_err() {
                            return; // transport dropped
                        }
                    }
                }
            }
            Err(_) => {
                shared.drop_conn(worker, Some(my_gen));
                return;
            }
        }
    }
}
