//! Graceful-shutdown ordering under load, at the socket level.
//!
//! The shutdown protocol (stop accepting → drain queued and in-flight
//! connections → join workers) promises that an accepted connection is
//! never dropped without a response. These tests hammer a live server
//! with client threads while shutdown fires, and hold it to that: every
//! client that received at least one byte must have received a
//! *complete* response (zero-byte connection-level failures are the
//! only acceptable casualty — connections the listener never accepted).
//!
//! The worker-respawn ladder is covered at both layers: a panicking
//! handler kills an `HttpServer` pool worker (which the supervisor
//! replaces, counted in `capmaestro_serve_worker_respawns_total`), and
//! the `WorkerDeployment` kill → respawn → shutdown path from
//! `capmaestro-core` is exercised with a live registry.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use capmaestro_core::obs::{names, MetricsRegistry};
use capmaestro_core::policy::PolicyKind;
use capmaestro_core::tree::ControlTree;
use capmaestro_core::workers::{shared_farm, DeploymentConfig, WorkerDeployment};
use capmaestro_serve::client;
use capmaestro_serve::http::{Request, Response};
use capmaestro_serve::{Handler, HttpConfig, HttpServer};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_units::Watts;

/// One client exchange, byte-accurate: returns the raw bytes received
/// (possibly empty) or a connection-level error.
fn raw_exchange(addr: &str) -> Result<Vec<u8>, std::io::Error> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /work HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(bytes),
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) => {
                if bytes.is_empty() {
                    // Connection-level failure before any byte arrived.
                    return Err(e);
                }
                // Bytes then an error: surface what we got — the caller
                // will fail it as a torn response.
                return Ok(bytes);
            }
        }
    }
}

#[test]
fn shutdown_under_load_never_tears_a_started_response() {
    // A handler slow enough that shutdown always catches requests in
    // flight.
    struct SlowHandler;
    impl Handler for SlowHandler {
        fn handle(&self, _request: &Request) -> Response {
            std::thread::sleep(Duration::from_millis(5));
            Response::text(200, "slow but complete\n")
        }
    }

    let server = HttpServer::bind(
        HttpConfig::default().with_workers(3),
        Arc::new(SlowHandler),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    const CLIENTS: usize = 6;
    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let addr = addr.clone();
        let stop = stop.clone();
        clients.push(std::thread::spawn(move || {
            let mut complete = 0usize;
            let mut refused = 0usize;
            while !stop.load(Ordering::Relaxed) {
                match raw_exchange(&addr) {
                    Ok(bytes) if bytes.is_empty() => refused += 1,
                    Ok(bytes) => {
                        // One byte received ⇒ the whole response must be
                        // there and well-formed.
                        let response = client::parse_response(&bytes)
                            .expect("started responses must complete");
                        assert_eq!(response.status, 200);
                        complete += 1;
                    }
                    Err(_) => refused += 1,
                }
            }
            (complete, refused)
        }));
    }

    // Let the hammering establish, then shut down mid-flight. Joining
    // through a channel bounds the wait: a drain deadlock fails the test
    // instead of hanging it.
    std::thread::sleep(Duration::from_millis(200));
    let (done_tx, done_rx) = mpsc::channel();
    let shutdown_thread = std::thread::spawn(move || {
        let mut server = server;
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("shutdown must drain and finish, not deadlock");
    shutdown_thread.join().expect("shutdown thread");

    stop.store(true, Ordering::Relaxed);
    let mut total_complete = 0usize;
    for client_thread in clients {
        let (complete, _refused) = client_thread.join().expect("client thread");
        total_complete += complete;
    }
    assert!(
        total_complete > 0,
        "the load must have produced completed responses before shutdown"
    );
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    struct Ok200;
    impl Handler for Ok200 {
        fn handle(&self, _request: &Request) -> Response {
            Response::text(200, "ok\n")
        }
    }
    let mut server =
        HttpServer::bind(HttpConfig::default(), Arc::new(Ok200)).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    assert_eq!(client::get(&addr, "/").expect("pre-shutdown get").status, 200);

    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert!(
        client::get(&addr, "/").is_err(),
        "after shutdown the listener must be gone"
    );
    drop(server); // Drop after explicit shutdown must not hang or panic
}

#[test]
fn panicking_handler_costs_one_connection_and_the_pool_respawns() {
    struct BoomHandler;
    impl Handler for BoomHandler {
        fn handle(&self, request: &Request) -> Response {
            if request.path() == "/boom" {
                panic!("handler blew up (deliberately, for the respawn test)");
            }
            Response::text(200, "alive\n")
        }
    }

    let registry = Arc::new(MetricsRegistry::new());
    // One worker: the panic provably kills the only thread serving, so a
    // later success proves the supervisor respawned it.
    let server = HttpServer::bind(
        HttpConfig::default()
            .with_workers(1)
            .with_recorder(registry.clone()),
        Arc::new(BoomHandler),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    assert_eq!(client::get(&addr, "/ok").expect("warm-up get").status, 200);

    // The panicking request loses its own response — acceptable — but
    // must not take the server down.
    let boom = client::get(&addr, "/boom");
    assert!(boom.is_err(), "the panicked connection gets no response");

    // The respawned worker serves again. Allow the supervisor a few
    // passes to notice the dead thread.
    let mut served = false;
    for _ in 0..100 {
        if let Ok(response) = client::get(&addr, "/ok") {
            assert_eq!(response.status, 200);
            served = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(served, "pool must respawn after a handler panic");

    let snapshot = registry.snapshot();
    let respawns = snapshot
        .counters
        .iter()
        .find(|c| c.name == names::SERVE_WORKER_RESPAWNS_TOTAL)
        .map(|c| c.value)
        .unwrap_or(0);
    assert!(
        respawns >= 1,
        "respawn must be counted in {}",
        names::SERVE_WORKER_RESPAWNS_TOTAL
    );
}

#[test]
fn deployment_worker_respawn_path_survives_kill_and_shutdown() {
    let rig = priority_rig(RigConfig::table2());
    let trees: Vec<ControlTree> = rig
        .topology
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let registry = Arc::new(MetricsRegistry::new());
    let shared = shared_farm(rig.farm);
    let mut deployment = WorkerDeployment::spawn(
        trees,
        vec![Watts::new(1240.0)],
        PolicyKind::GlobalPriority,
        shared,
        2,
        DeploymentConfig::default()
            .with_gather_timeout(Duration::from_millis(200))
            .with_respawn_backoff(Duration::from_millis(1))
            .with_recorder(registry.clone()),
    );

    deployment.run_round(0);
    assert!(deployment.is_worker_alive(0));

    deployment.kill_worker(0);
    assert!(!deployment.is_worker_alive(0));
    // Degraded round: gather budgets from the stale-hold bridge.
    deployment.run_round(1);

    std::thread::sleep(Duration::from_millis(5)); // clear the backoff
    assert!(deployment.respawn_worker(0), "respawn must be permitted");
    assert!(deployment.is_worker_alive(0));
    assert!(
        !deployment.respawn_worker(0),
        "a live worker must not be respawned"
    );
    deployment.run_round(2);
    deployment.shutdown();

    let snapshot = registry.snapshot();
    let respawns = snapshot
        .counters
        .iter()
        .find(|c| c.name == names::WORKER_RESPAWNS_TOTAL)
        .map(|c| c.value)
        .unwrap_or(0);
    assert_eq!(respawns, 1, "exactly one deployment respawn happened");
}
