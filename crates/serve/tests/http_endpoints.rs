//! Socket-level tests of the serving endpoints: a real `HttpServer` on an
//! ephemeral port in front of a live `sim::Engine`, exercised with real
//! TCP connections through the crate's blocking client.

use std::sync::Arc;
use std::time::Duration;

use capmaestro_core::obs::{json, prometheus, MetricsRegistry};
use capmaestro_serve::client;
use capmaestro_serve::daemon::drive_second;
use capmaestro_serve::{HttpConfig, HttpServer, Router, ServeState};
use capmaestro_sim::scenarios::{priority_rig, stranded_rig, RigConfig};
use capmaestro_sim::Engine;

/// An engine + serve stack on an ephemeral port. The engine stays on the
/// test thread (mirroring the daemon, which steps it on main).
struct Stack {
    engine: Engine,
    state: Arc<ServeState>,
    server: HttpServer,
}

impl Stack {
    /// Build the Table 2 priority rig behind a fresh server.
    fn priority() -> Stack {
        Stack::new(Engine::new(priority_rig(RigConfig::table2().with_spo(true))))
    }

    /// Build the Table 3 stranded-power rig (two trees) behind a server.
    fn stranded() -> Stack {
        Stack::new(Engine::new(stranded_rig(RigConfig::table3())))
    }

    fn new(mut engine: Engine) -> Stack {
        let registry = Arc::new(MetricsRegistry::new());
        engine.plane_mut().set_recorder(registry.clone());
        let state = Arc::new(ServeState::new(
            registry.clone(),
            engine.control_period_s(),
        ));
        let router = Router::new(state.clone(), registry.clone());
        let server = HttpServer::bind(HttpConfig::default(), Arc::new(router))
            .expect("bind ephemeral port");
        Stack {
            engine,
            state,
            server,
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// Advance `seconds` of simulated time, exactly as the daemon does.
    fn drive(&mut self, seconds: u64) {
        for _ in 0..seconds {
            drive_second(&mut self.engine, &self.state);
        }
    }
}

#[test]
fn metrics_endpoint_serves_a_valid_prometheus_page() {
    let mut stack = Stack::priority();
    stack.drive(17); // three control rounds at the 8 s period

    let response = client::get(&stack.addr(), "/metrics").expect("scrape /metrics");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some(prometheus::CONTENT_TYPE)
    );
    let page = response.body_str().expect("utf-8 page");
    let samples = prometheus::validate(page).expect("exposition-grammar valid");
    assert!(samples > 0, "page should carry samples, got none:\n{page}");
    assert!(
        page.contains("capmaestro_rounds_total"),
        "live registry metrics missing from page"
    );
}

#[test]
fn report_endpoint_round_trips_through_the_json_parser() {
    let mut stack = Stack::priority();

    // Before any round: 503, not a broken payload.
    let early = client::get(&stack.addr(), "/report").expect("early /report");
    assert_eq!(early.status, 503);

    stack.drive(9); // two rounds (t=0 and t=8)
    let response = client::get(&stack.addr(), "/report").expect("get /report");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("content-type"), Some(json::CONTENT_TYPE));
    let parsed = json::parse(response.body_str().expect("utf-8 body"))
        .expect("report json parses as a metrics snapshot");
    let root = parsed
        .gauges
        .iter()
        .find(|g| g.name.contains("capmaestro_report_tree_root_watts"))
        .expect("report carries the root budget gauge");
    assert_eq!(root.value, 1240.0, "Table 2 rig runs a 1240 W root budget");
}

#[test]
fn report_carries_the_policy_label_and_still_parses() {
    let mut stack = Stack::priority();
    // Rebuild the state with a policy label, as the daemon does.
    let registry = stack.state.registry().clone();
    let state = Arc::new(
        ServeState::new(registry.clone(), stack.engine.control_period_s())
            .with_policy_label("waterfilling"),
    );
    let router = Router::new(state.clone(), registry);
    let server =
        HttpServer::bind(HttpConfig::default(), Arc::new(router)).expect("bind labeled server");
    let addr = server.local_addr().to_string();

    for _ in 0..9 {
        drive_second(&mut stack.engine, &state);
    }
    let response = client::get(&addr, "/report").expect("get /report");
    assert_eq!(response.status, 200);
    let body = response.body_str().expect("utf-8 body");
    assert!(
        body.contains("\"policy\": \"waterfilling\""),
        "report must name the active allocator: {body}"
    );
    json::parse(body).expect("labeled report still parses as a metrics snapshot");
}

#[test]
fn healthz_reports_ok_then_flips_unhealthy_when_rounds_stall() {
    let mut stack = Stack::priority();
    // Tight staleness window so the test can observe the flip quickly.
    let registry = stack.state.registry().clone();
    let state = Arc::new(
        ServeState::new(registry.clone(), stack.engine.control_period_s())
            .with_unhealthy_after(Duration::from_millis(150)),
    );
    let router = Router::new(state.clone(), registry);
    let server =
        HttpServer::bind(HttpConfig::default(), Arc::new(router)).expect("bind second server");
    let addr = server.local_addr().to_string();

    // No round yet: unhealthy from the start.
    let before = client::get(&addr, "/healthz").expect("initial /healthz");
    assert_eq!(before.status, 503);

    for _ in 0..9 {
        drive_second(&mut stack.engine, &state);
    }
    let healthy = client::get(&addr, "/healthz").expect("healthy /healthz");
    assert_eq!(healthy.status, 200);
    let body = healthy.body_str().expect("utf-8 health").to_string();
    assert!(body.contains("\"status\":\"ok\""), "body: {body}");
    assert!(body.contains("\"rounds_total\":2"), "body: {body}");

    // Stall the engine past the staleness window: the endpoint must flip.
    std::thread::sleep(Duration::from_millis(400));
    let stalled = client::get(&addr, "/healthz").expect("stalled /healthz");
    assert_eq!(stalled.status, 503);
    let body = stalled.body_str().expect("utf-8 health").to_string();
    assert!(body.contains("\"status\":\"unhealthy\""), "body: {body}");
}

#[test]
fn posted_budget_is_applied_at_the_next_round_boundary() {
    let mut stack = Stack::stranded();
    stack.drive(9); // rounds at t=0 and t=8 under the default 700 W feeds

    let before = stack.engine.plane().root_budgets_now();
    assert_eq!(before.len(), 2);
    assert_eq!(before[0].as_f64(), 700.0);

    let response =
        client::post(&stack.addr(), "/budget", b"[650, 620]").expect("post /budget");
    assert_eq!(
        response.status,
        200,
        "body: {:?}",
        response.body_str().unwrap_or("<binary>")
    );

    // Not applied mid-period: the engine picks it up at the boundary.
    stack.drive(7); // clock reaches 16; steps 9..=15 fire no round
    assert_eq!(stack.engine.plane().root_budgets_now()[0].as_f64(), 700.0);

    stack.drive(1); // the t=16 step fires the round with the staged budgets
    let after = stack.engine.plane().root_budgets_now();
    assert_eq!(after[0].as_f64(), 650.0);
    assert_eq!(after[1].as_f64(), 620.0);

    let report = stack.engine.last_round_report().expect("round report");
    assert_eq!(report.allocations[0].node_budget(0).as_f64(), 650.0);
    assert_eq!(report.allocations[1].node_budget(0).as_f64(), 620.0);
}

#[test]
fn bad_budget_payloads_are_rejected_with_400() {
    let mut stack = Stack::stranded();
    stack.drive(1);
    let addr = stack.addr();

    for (body, why) in [
        (&b"[700]"[..], "wrong arity for a two-tree rig"),
        (b"[700, 700, 700]", "wrong arity the other way"),
        (b"[700, -5]", "below the lower bound"),
        (b"[700, 99999999]", "above the upper bound"),
        (b"[700, NaN]", "not a number"),
        (b"{\"watts\": 700}", "not an array"),
        (b"", "empty body"),
    ] {
        let response = client::post(&addr, "/budget", body).expect("post /budget");
        assert_eq!(response.status, 400, "expected 400 for {why}");
    }
    // None of those staged anything.
    stack.drive(8);
    assert_eq!(stack.engine.plane().root_budgets_now()[0].as_f64(), 700.0);
}

#[test]
fn unknown_paths_and_wrong_methods_get_404_and_405() {
    let mut stack = Stack::priority();
    stack.drive(1);
    let addr = stack.addr();

    assert_eq!(client::get(&addr, "/nope").expect("404 get").status, 404);
    assert_eq!(
        client::post(&addr, "/metrics", b"").expect("405 post").status,
        405
    );
    assert_eq!(client::get(&addr, "/budget").expect("405 get").status, 405);
    // Query strings route to the path.
    assert_eq!(
        client::get(&addr, "/healthz?verbose=1")
            .expect("query get")
            .status,
        200
    );
}

#[test]
fn concurrent_scrapes_see_complete_valid_expositions_while_engine_steps() {
    let mut stack = Stack::priority();
    stack.drive(1);
    let addr = stack.addr();

    const SCRAPERS: usize = 4;
    const SCRAPES_EACH: usize = 25;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut scrapers = Vec::new();
    for _ in 0..SCRAPERS {
        let addr = addr.clone();
        let stop = stop.clone();
        scrapers.push(std::thread::spawn(move || {
            let mut ok = 0usize;
            for _ in 0..SCRAPES_EACH {
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let response = client::get(&addr, "/metrics").expect("scrape under load");
                assert_eq!(response.status, 200);
                let page = response.body_str().expect("utf-8 page");
                prometheus::validate(page).expect("complete valid exposition under load");
                ok += 1;
            }
            ok
        }));
    }

    // Step the engine the whole time the scrapers hammer it.
    for _ in 0..40 {
        drive_second(&mut stack.engine, &stack.state);
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut total = 0usize;
    for scraper in scrapers {
        total += scraper.join().expect("scraper thread");
    }
    assert!(total > 0, "at least some scrapes must have completed");
}
