//! Property-based fuzzing of the HTTP request parser and response
//! writer.
//!
//! The contract under test: `parse_request` never panics on any byte
//! sequence, classifies every input as exactly one of
//! Complete/Incomplete/Error, only emits the statuses the server speaks
//! (400/413), stays prefix-monotone (a prefix of a valid request is
//! never an Error), and respects its size limits. On the write side,
//! every response the server can produce must parse under the strict
//! client parser (`client::parse_response`), which demands an exact
//! `Content-Length` — the well-formedness oracle.
//!
//! Failures found by earlier fuzz runs are promoted to the named
//! `regression_*` tests at the bottom (the vendored proptest does not
//! replay `.proptest-regressions`, so the inputs are pinned here
//! verbatim).

use proptest::prelude::*;

use capmaestro_serve::client;
use capmaestro_serve::http::{parse_request, HttpLimits, ParseOutcome, Response};

/// Limits small enough for the fuzzer to reach both 413 paths.
fn tight_limits() -> HttpLimits {
    HttpLimits {
        max_head_bytes: 256,
        max_body_bytes: 128,
    }
}

/// Assert the invariants that must hold for *any* input.
fn check_invariants(bytes: &[u8], limits: &HttpLimits) {
    match parse_request(bytes, limits) {
        ParseOutcome::Complete { request, consumed } => {
            assert!(consumed <= bytes.len());
            assert!(!request.method.is_empty());
            assert!(request.target.starts_with('/'));
            assert!(request.body.len() <= limits.max_body_bytes);
        }
        ParseOutcome::Incomplete => {
            // Incomplete may only be claimed while the head (or body)
            // can still arrive within budget.
            let head_done = bytes.windows(4).any(|w| w == b"\r\n\r\n");
            assert!(head_done || bytes.len() < limits.max_head_bytes + 4);
        }
        ParseOutcome::Error(error) => {
            assert!(
                error.status == 400 || error.status == 413,
                "unexpected status {}",
                error.status
            );
            assert!(!error.reason.is_empty());
            // Every error must render as a parseable response.
            let rendered = error.to_response().to_bytes();
            let response =
                client::parse_response(&rendered).expect("error response must be well-formed");
            assert_eq!(response.status, error.status);
        }
    }
}

/// Render a syntactically valid request from fuzz components.
fn build_request(path_seg: &str, header_value: &str, body: &[u8]) -> Vec<u8> {
    let mut bytes = format!(
        "POST /{path_seg} HTTP/1.1\r\nHost: fuzz\r\nX-Fuzz: {header_value}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics and always lands in one of the
    /// three outcomes with a server-speakable status.
    #[test]
    fn byte_soup_never_panics(raw in prop::collection::vec(0usize..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        check_invariants(&bytes, &tight_limits());
        check_invariants(&bytes, &HttpLimits::default());
    }

    /// Mostly-ASCII soup with CRLFs sprinkled in, so header parsing and
    /// the request-line grammar are actually exercised.
    #[test]
    fn ascii_soup_never_panics(raw in prop::collection::vec(32usize..127, 0..256)) {
        let mut bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let mut i = 20;
        while i < bytes.len() {
            bytes[i] = b'\r';
            if i + 1 < bytes.len() {
                bytes[i + 1] = b'\n';
            }
            i += 23;
        }
        check_invariants(&bytes, &tight_limits());
    }

    /// Every prefix of a valid request parses as Incomplete (or Complete
    /// at full length), never as an Error: truncation must not be
    /// mistaken for malformed input.
    #[test]
    fn truncated_valid_requests_are_never_errors(
        seg in prop::collection::vec(97usize..123, 0..12),
        value in prop::collection::vec(32usize..127, 0..20),
        body in prop::collection::vec(0usize..256, 0..40),
        cut_permille in 0usize..1001,
    ) {
        let seg: String = seg.iter().map(|&c| c as u8 as char).collect();
        let value: String = value
            .iter()
            .map(|&c| c as u8 as char)
            .filter(|c| *c != ':')
            .collect();
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let bytes = build_request(&seg, value.trim(), &body);
        let limits = HttpLimits::default();

        // The full request must be accepted...
        let ParseOutcome::Complete { request, consumed } = parse_request(&bytes, &limits) else {
            panic!("full request must parse: {bytes:?}");
        };
        assert_eq!(consumed, bytes.len());
        assert_eq!(request.body, body);

        // ...and any strict prefix must be Incomplete.
        let cut = bytes.len() * cut_permille / 1000;
        match parse_request(&bytes[..cut], &limits) {
            ParseOutcome::Error(error) => {
                panic!("prefix of length {cut}/{} became an error: {error}", bytes.len());
            }
            ParseOutcome::Complete { consumed, .. } => assert_eq!(consumed, cut),
            ParseOutcome::Incomplete => {}
        }
    }

    /// Oversized heads and bodies are rejected with 413, regardless of
    /// how far past the limit they run.
    #[test]
    fn oversized_requests_get_413(pad in 0usize..512, body_len in 129usize..4096) {
        let limits = tight_limits();

        let mut head_heavy = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        head_heavy.extend(std::iter::repeat_n(b'a', limits.max_head_bytes + pad));
        head_heavy.extend_from_slice(b"\r\n\r\n");
        let ParseOutcome::Error(error) = parse_request(&head_heavy, &limits) else {
            panic!("oversized head must error");
        };
        assert_eq!(error.status, 413);

        let body_heavy =
            format!("POST / HTTP/1.1\r\nContent-Length: {body_len}\r\n\r\n").into_bytes();
        let ParseOutcome::Error(error) = parse_request(&body_heavy, &limits) else {
            panic!("oversized body must error");
        };
        assert_eq!(error.status, 413);
    }

    /// A valid request followed by pipelined trailing bytes parses
    /// Complete with `consumed` covering exactly the first request.
    #[test]
    fn pipelined_trailers_are_not_consumed(
        body in prop::collection::vec(0usize..256, 0..40),
        trailer in prop::collection::vec(0usize..256, 1..64),
    ) {
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let mut bytes = build_request("x", "v", &body);
        let first_len = bytes.len();
        bytes.extend(trailer.iter().map(|&b| b as u8));

        let ParseOutcome::Complete { request, consumed } =
            parse_request(&bytes, &HttpLimits::default())
        else {
            panic!("pipelined request must parse");
        };
        assert_eq!(consumed, first_len);
        assert_eq!(request.body, body);
    }

    /// Every response the server can construct round-trips through the
    /// strict client parser with an exact Content-Length.
    #[test]
    fn responses_always_satisfy_the_client_oracle(
        status_pick in 0usize..7,
        body in prop::collection::vec(0usize..256, 0..200),
    ) {
        let status = [200u16, 400, 404, 405, 413, 500, 503][status_pick];
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let rendered = Response::new(status, "application/octet-stream", body.clone()).to_bytes();
        let response = client::parse_response(&rendered).expect("server response must parse");
        assert_eq!(response.status, status);
        assert_eq!(response.body, body);
    }
}

// ---------------------------------------------------------------------
// Promoted regressions (see `http_parser_fuzz.proptest-regressions`).
// The vendored proptest generates fresh cases only, so inputs that once
// failed are pinned here verbatim.
// ---------------------------------------------------------------------

/// A bare-LF "request line" hides a second line inside the first token
/// stream: the parser must call it malformed (400), not treat the fold
/// as a header boundary.
#[test]
fn regression_bare_lf_request_line_is_400() {
    let outcome = parse_request(b"GET / HTTP/1.1\nHost: x\r\n\r\n", &HttpLimits::default());
    let ParseOutcome::Error(error) = outcome else {
        panic!("expected 400, got {outcome:?}");
    };
    assert_eq!(error.status, 400);
}

/// A request line with only method + target (no version) is 400, not a
/// slice panic on the missing third token.
#[test]
fn regression_missing_version_is_400() {
    let outcome = parse_request(b"GET /\r\n\r\n", &HttpLimits::default());
    let ParseOutcome::Error(error) = outcome else {
        panic!("expected 400, got {outcome:?}");
    };
    assert_eq!(error.status, 400);
}

/// Content-Length just past u64::MAX must be a clean 400 (parse error),
/// not an integer-overflow panic when computing the body span.
#[test]
fn regression_content_length_overflow_is_400() {
    let outcome = parse_request(
        b"POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n",
        &HttpLimits::default(),
    );
    let ParseOutcome::Error(error) = outcome else {
        panic!("expected 400, got {outcome:?}");
    };
    assert_eq!(error.status, 400);
    assert_eq!(error.reason, "malformed content-length");
}

/// A space inside the target splits the request line into four tokens:
/// 400, and specifically *not* a target plus garbage version.
#[test]
fn regression_space_in_target_is_400() {
    let outcome = parse_request(
        b"GET /metrics and/more HTTP/1.1\r\n\r\n",
        &HttpLimits::default(),
    );
    let ParseOutcome::Error(error) = outcome else {
        panic!("expected 400, got {outcome:?}");
    };
    assert_eq!(error.status, 400);
}

/// The head terminator straddling the head-size limit: a head of exactly
/// `max_head_bytes` is accepted, one byte more is 413 — no off-by-one
/// panic in the window search.
#[test]
fn regression_head_exactly_at_limit_boundary() {
    let limits = HttpLimits {
        max_head_bytes: 64,
        max_body_bytes: 16,
    };
    let head = b"GET / HTTP/1.1\r\nX-Pad: ";
    let mut at_limit = head.to_vec();
    at_limit.extend(std::iter::repeat_n(b'a', limits.max_head_bytes - head.len()));
    at_limit.extend_from_slice(b"\r\n\r\n");
    assert!(matches!(
        parse_request(&at_limit, &limits),
        ParseOutcome::Complete { .. }
    ));

    let mut over = head.to_vec();
    over.extend(std::iter::repeat_n(
        b'a',
        limits.max_head_bytes - head.len() + 1,
    ));
    over.extend_from_slice(b"\r\n\r\n");
    let ParseOutcome::Error(error) = parse_request(&over, &limits) else {
        panic!("one byte over the head limit must be 413");
    };
    assert_eq!(error.status, 413);
}

/// A NUL byte in the target is valid UTF-8 but not a valid target byte:
/// rejected by target validation (400), never served.
#[test]
fn regression_nul_byte_in_target_is_400() {
    let outcome = parse_request(b"GET /\x00 HTTP/1.1\r\n\r\n", &HttpLimits::default());
    let ParseOutcome::Error(error) = outcome else {
        panic!("expected 400, got {outcome:?}");
    };
    assert_eq!(error.status, 400);
}
