//! End-to-end tests of the socket control plane: a room controller over
//! [`SocketTransport`] driving rack agents — in-thread library agents
//! for the protocol paths, and real `capmaestro-agent` processes for the
//! bitwise socket-vs-channel differential.

use std::io::Read;
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use capmaestro_core::wire::{encode_up, frame};
use capmaestro_core::workers::leaf_statics;
use capmaestro_core::{DeploymentConfig, PolicyKind, UpMsg, WorkerDeployment};
use capmaestro_serve::agent::{run_agent, AgentConfig};
use capmaestro_serve::rig::{build_farm, build_rig, rig_assignments, RigSpec};
use capmaestro_serve::socket::{SocketTransport, SocketTransportConfig};
use capmaestro_sim::procchaos::demand_at;

/// Builds a socket-backed deployment over `spec` with `workers` expected
/// agents, returning the deployment and the controller address.
fn socket_deployment(
    spec: RigSpec,
    workers: usize,
    config: DeploymentConfig,
) -> (WorkerDeployment, String) {
    let rig = build_rig(spec);
    let assignments = rig_assignments(&rig, workers);
    let statics = {
        // A throwaway farm, built only to capture the same per-leaf
        // statics every agent's local farm will exhibit.
        let farm = build_farm(&rig.topo);
        leaf_statics(&rig.trees, &assignments, &farm)
    };
    let transport =
        SocketTransport::bind(SocketTransportConfig::new(workers)).expect("bind transport");
    let addr = transport.local_addr().to_string();
    let deployment = WorkerDeployment::with_transport(
        rig.trees,
        rig.root_budgets,
        PolicyKind::GlobalPriority,
        assignments,
        &statics,
        Box::new(transport),
        config,
    );
    (deployment, addr)
}

/// Spawns a library agent on a thread (same wire protocol as the
/// binary, no process overhead).
fn thread_agent(addr: &str, worker: usize, workers: usize, spec: RigSpec) -> thread::JoinHandle<()> {
    let config = AgentConfig::new(addr.to_string(), worker, workers, spec);
    thread::Builder::new()
        .name(format!("test-agent-{worker}"))
        .spawn(move || {
            run_agent(&config).expect("agent exits on controller shutdown");
        })
        .expect("spawn test agent")
}

#[test]
fn fleet_connects_and_runs_rounds() {
    let spec = RigSpec::Fig2;
    let workers = 2;
    let (mut deployment, addr) =
        socket_deployment(spec, workers, DeploymentConfig::default());
    let agents: Vec<_> = (0..workers)
        .map(|w| thread_agent(&addr, w, workers, spec))
        .collect();

    // Wait for the fleet before round 0 so no round rides fail-safe.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !(0..workers).all(|w| deployment.is_worker_alive(w)) {
        assert!(Instant::now() < deadline, "fleet never connected");
        thread::sleep(Duration::from_millis(5));
    }

    let mut last = None;
    for round in 0..5 {
        let outcome = deployment.run_round(round);
        assert!(
            outcome.failsafe_cuts.is_empty(),
            "round {round} unexpectedly fail-safe: {:?}",
            outcome.failsafe_cuts
        );
        assert!(deployment.advance(1), "advance must ack");
        last = Some(outcome);
    }
    let last = last.expect("ran rounds");
    // Fig. 2 has two cut nodes (left and right CB), both budgeted.
    assert_eq!(last.cut_budgets.len(), 2);
    assert!(last.cut_budgets.iter().all(|&(_, b)| b.as_f64() > 0.0));
    assert_eq!(deployment.transport_violations(), 0);

    deployment.shutdown();
    for agent in agents {
        agent.join().expect("agent thread exits cleanly");
    }
}

#[test]
fn handshake_rejects_wrong_fleet_shape() {
    let (deployment, addr) = socket_deployment(RigSpec::Fig2, 2, DeploymentConfig::default());

    // Fleet-size mismatch: the controller must close without welcoming.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = encode_up(&UpMsg::Hello {
        worker: 0,
        workers_total: 3,
    });
    use std::io::Write as _;
    stream.write_all(&frame(&hello)).expect("send hello");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "controller must close on a fleet-shape mismatch");
    assert!(!deployment.is_worker_alive(0));

    // Out-of-range worker index: same.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = encode_up(&UpMsg::Hello {
        worker: 9,
        workers_total: 2,
    });
    stream.write_all(&frame(&hello)).expect("send hello");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("timeout");
    let n = stream.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "controller must close on a bad worker index");

    deployment.shutdown();
}

#[test]
fn garbage_after_handshake_tears_the_connection_down() {
    let (deployment, addr) = socket_deployment(RigSpec::Fig2, 1, DeploymentConfig::default());

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = encode_up(&UpMsg::Hello {
        worker: 0,
        workers_total: 1,
    });
    use std::io::Write as _;
    stream.write_all(&frame(&hello)).expect("send hello");
    // Welcome comes back; then we turn hostile.
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("welcome frame");
    assert!(n > 0, "expected a welcome");
    let deadline = Instant::now() + Duration::from_secs(2);
    while !deployment.is_worker_alive(0) {
        assert!(Instant::now() < deadline, "worker never registered");
        thread::sleep(Duration::from_millis(5));
    }

    // A 16 MiB length prefix: hostile, over the frame cap.
    stream
        .write_all(&(16u32 << 20).to_le_bytes())
        .expect("hostile prefix");
    let deadline = Instant::now() + Duration::from_secs(2);
    while deployment.is_worker_alive(0) {
        assert!(
            Instant::now() < deadline,
            "garbage must kill the connection"
        );
        thread::sleep(Duration::from_millis(5));
    }

    deployment.shutdown();
}

#[test]
fn shutdown_rack_degrades_to_failsafe_and_recovers_on_reconnect() {
    let spec = RigSpec::Racks {
        racks: 2,
        servers_per_rack: 2,
    };
    let workers = 2;
    let config = DeploymentConfig::default()
        .with_gather_timeout(Duration::from_millis(300))
        .with_stale_after_rounds(2);
    let (mut deployment, addr) = socket_deployment(spec, workers, config);
    let a0 = thread_agent(&addr, 0, workers, spec);
    let a1 = thread_agent(&addr, 1, workers, spec);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !(0..workers).all(|w| deployment.is_worker_alive(w)) {
        assert!(Instant::now() < deadline, "fleet never connected");
        thread::sleep(Duration::from_millis(5));
    }

    let mut round = 0u64;
    for _ in 0..3 {
        let outcome = deployment.run_round(round);
        assert!(outcome.failsafe_cuts.is_empty());
        deployment.advance(1);
        round += 1;
    }

    // Kill worker 0: terminal shutdown; its agent exits for good.
    deployment.kill_worker(0);
    a0.join().expect("killed agent exits");

    // Stale-hold bridges the first rounds, then its cuts go fail-safe.
    let worker0_cuts: Vec<_> = deployment.assignments()[0]
        .cuts
        .iter()
        .map(|&(cut, _)| cut)
        .collect();
    let mut saw_failsafe = false;
    for _ in 0..4 {
        let outcome = deployment.run_round(round);
        deployment.advance(1);
        round += 1;
        if worker0_cuts.iter().all(|c| outcome.failsafe_cuts.contains(c)) {
            saw_failsafe = true;
        }
    }
    assert!(saw_failsafe, "dead rack must reach the fail-safe rung");

    // A fresh agent process (thread) reconnects; recovery is automatic.
    let a0b = thread_agent(&addr, 0, workers, spec);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !deployment.is_worker_alive(0) {
        assert!(Instant::now() < deadline, "agent never reconnected");
        thread::sleep(Duration::from_millis(5));
    }
    let mut recovered = false;
    for _ in 0..4 {
        let outcome = deployment.run_round(round);
        deployment.advance(1);
        round += 1;
        if outcome.failsafe_cuts.is_empty() {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "reconnected rack must leave fail-safe");

    deployment.shutdown();
    a1.join().expect("agent 1 exits on shutdown");
    a0b.join().expect("reconnected agent exits on shutdown");
}

/// Spawns a real `capmaestro-agent` process against `addr`.
fn spawn_agent_process(addr: &str, worker: usize, workers: usize, spec: RigSpec, seed: u64) -> Child {
    Command::new(env!("CARGO_BIN_EXE_capmaestro-agent"))
        .args([
            "--connect",
            addr,
            "--worker",
            &worker.to_string(),
            "--workers-total",
            &workers.to_string(),
            "--rig",
            &spec.to_arg(),
            "--demand-seed",
            &seed.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn capmaestro-agent")
}

#[test]
fn socket_processes_match_channel_transport_bitwise() {
    let spec = RigSpec::Racks {
        racks: 4,
        servers_per_rack: 3,
    };
    let workers = 4;
    let seed = 7u64;
    let rounds = 12u64;

    // Reference: the in-process channel deployment over the full farm,
    // with the same seeded demand schedule applied before each advance.
    let reference: Vec<String> = {
        let rig = build_rig(spec);
        let farm = capmaestro_core::workers::shared_farm(build_farm(&rig.topo));
        let mut deployment = WorkerDeployment::spawn(
            rig.trees,
            rig.root_budgets,
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            workers,
            DeploymentConfig::default(),
        );
        let mut lines = Vec::new();
        for round in 0..rounds {
            lines.push(deployment.run_round(round).wire_line());
            {
                let mut guard = farm.write();
                let ids: Vec<_> = guard.ids().to_vec();
                for id in ids {
                    if let Some(demand) = demand_at(seed, id, round) {
                        guard.get_mut(id).unwrap().set_offered_demand(demand);
                    }
                }
            }
            assert!(deployment.advance(1));
        }
        deployment.shutdown();
        lines
    };

    // Subject: the same deployment logic over agent *processes*.
    let config = DeploymentConfig::default().with_gather_timeout(Duration::from_secs(5));
    let (mut deployment, addr) = socket_deployment(spec, workers, config);
    let children: Vec<Child> = (0..workers)
        .map(|w| spawn_agent_process(&addr, w, workers, spec, seed))
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !(0..workers).all(|w| deployment.is_worker_alive(w)) {
        assert!(Instant::now() < deadline, "agent fleet never connected");
        thread::sleep(Duration::from_millis(10));
    }

    let mut lines = Vec::new();
    for round in 0..rounds {
        let outcome = deployment.run_round(round);
        assert!(
            outcome.failsafe_cuts.is_empty(),
            "fault-free run must never ride fail-safe (round {round})"
        );
        lines.push(outcome.wire_line());
        assert!(deployment.advance(1), "advance must ack (round {round})");
    }
    assert_eq!(deployment.transport_violations(), 0);
    deployment.shutdown();

    for child in children {
        let out = child.wait_with_output().expect("agent exits");
        assert!(
            out.status.success(),
            "agent failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("violations_total=0"),
            "agent reported violations: {stdout}"
        );
    }

    assert_eq!(
        lines, reference,
        "socket rounds must be bit-identical to channel rounds"
    );
}
