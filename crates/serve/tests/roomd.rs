//! Socket-level test of the room-controller daemon: a real `capmaestrod
//! --agents` process over real `capmaestro-agent` processes, observed
//! through `/healthz`. Killing an agent must surface as HTTP 200 with
//! `"degraded":true` and a non-zero `stale_racks` count; restarting the
//! agent must clear it.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use capmaestro_serve::client;

const SPEC: &str = "racks:2:2";
const AGENTS: usize = 2;

fn spawn_agent(addr: &str, worker: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_capmaestro-agent"))
        .args([
            "--connect",
            addr,
            "--worker",
            &worker.to_string(),
            "--workers-total",
            &AGENTS.to_string(),
            "--rig",
            SPEC,
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn capmaestro-agent")
}

/// Reads daemon stdout until both announce lines appear, returning
/// `(agent_addr, http_addr)`.
fn read_announcements(stdout: &mut BufReader<ChildStdout>) -> (String, String) {
    let mut agent_addr = None;
    let mut http_addr = None;
    let mut line = String::new();
    while agent_addr.is_none() || http_addr.is_none() {
        line.clear();
        let n = stdout.read_line(&mut line).expect("read daemon stdout");
        assert!(n > 0, "daemon stdout closed before announcing its ports");
        if let Some(rest) = line.trim().strip_prefix("capmaestrod: agents connect to ") {
            agent_addr = Some(rest.to_string());
        } else if let Some(rest) = line.trim().strip_prefix("capmaestrod: listening on http://") {
            http_addr = Some(rest.to_string());
        }
    }
    (agent_addr.unwrap(), http_addr.unwrap())
}

/// Polls `/healthz` until `accept` passes on a 200 body, panicking with
/// the last body on timeout.
fn await_health(addr: &str, what: &str, accept: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = String::new();
    while Instant::now() < deadline {
        if let Ok(resp) = client::get(addr, "/healthz") {
            if resp.status == 200 {
                let body = resp.body_str().unwrap_or_default().to_string();
                if accept(&body) {
                    return body;
                }
                last = body;
            } else {
                last = format!("status {}", resp.status);
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
    panic!("never saw {what}; last /healthz: {last}");
}

#[test]
fn healthz_surfaces_degraded_racks_over_sockets() {
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_capmaestrod"))
        .args([
            "--agents",
            &AGENTS.to_string(),
            "--rig",
            SPEC,
            "--addr",
            "127.0.0.1:0",
            "--agent-addr",
            "127.0.0.1:0",
            "--accel",
            "0",
            "--quit-on-stdin",
            "--wall-limit-s",
            "120",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn capmaestrod");
    let mut stdout = BufReader::new(daemon.stdout.take().expect("daemon stdout"));
    let (agent_addr, http_addr) = read_announcements(&mut stdout);

    let mut agent0 = spawn_agent(&agent_addr, 0);
    let mut agent1 = spawn_agent(&agent_addr, 1);

    // With both agents up the fleet converges out of fail-safe.
    await_health(&http_addr, "a healthy, non-degraded fleet", |body| {
        body.contains("\"status\":\"ok\"") && body.contains("\"degraded\":false")
    });

    // Kill one agent: rounds keep completing (200), but the dead rack
    // rides the staleness ladder into fail-safe and /healthz says so.
    agent0.kill().expect("kill agent 0");
    agent0.wait().expect("reap agent 0");
    let body = await_health(&http_addr, "a degraded fleet after the kill", |body| {
        body.contains("\"degraded\":true")
    });
    assert!(
        body.contains("\"stale_racks\":1"),
        "exactly the killed rack should be stale: {body}"
    );
    assert!(
        body.contains("\"status\":\"ok\""),
        "degraded is not unhealthy — rounds still complete: {body}"
    );

    // Restart it: the agent reconnects and the degradation clears.
    let mut agent0b = spawn_agent(&agent_addr, 0);
    await_health(&http_addr, "recovery after the agent restart", |body| {
        body.contains("\"degraded\":false") && body.contains("\"stale_racks\":0")
    });

    // Orderly teardown: quit the daemon; its shutdown stops the agents.
    daemon
        .stdin
        .take()
        .expect("daemon stdin")
        .write_all(b"quit\n")
        .expect("send quit");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly");
    agent0b.wait().expect("agent 0b exits");
    agent1.wait().expect("agent 1 exits");
}
