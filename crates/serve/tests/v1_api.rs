//! Socket-level tests of the versioned `/v1` operator API: the event
//! log behind the mutation endpoints, idempotency keys, round-boundary
//! reconciliation, the legacy-alias compatibility contract, and the
//! shared JSON error envelope.

use std::sync::Arc;

use capmaestro_core::obs::trace::{self, TraceRecorder};
use capmaestro_core::obs::{prometheus, MetricsRegistry, Recorder};
use capmaestro_serve::client;
use capmaestro_serve::daemon::drive_second;
use capmaestro_serve::{HttpConfig, HttpServer, Router, ServeState};
use capmaestro_sim::scenarios::{priority_rig, stranded_rig, RigConfig};
use capmaestro_sim::Engine;
use capmaestro_topology::Priority;

/// An engine + serve stack on an ephemeral port, as in http_endpoints.rs.
struct Stack {
    engine: Engine,
    state: Arc<ServeState>,
    server: HttpServer,
}

impl Stack {
    /// The Table 2 priority rig (one tree, four servers, 8 s period).
    fn priority() -> Stack {
        Stack::new(Engine::new(priority_rig(RigConfig::table2())))
    }

    /// The Table 3 stranded rig (two trees at 700 W, 8 s period).
    fn stranded() -> Stack {
        Stack::new(Engine::new(stranded_rig(RigConfig::table3())))
    }

    fn new(mut engine: Engine) -> Stack {
        let registry = Arc::new(MetricsRegistry::new());
        // As the daemon wires it: the trace recorder buffers the
        // timeline and forwards every metric call to the registry.
        let tracer = Arc::new(
            TraceRecorder::new().with_forward(registry.clone() as Arc<dyn Recorder>),
        );
        engine.plane_mut().set_recorder(tracer.clone());
        let state = Arc::new(ServeState::new(
            registry.clone(),
            engine.control_period_s(),
        ));
        let router = Router::new(state.clone(), registry.clone()).with_trace(tracer);
        let server = HttpServer::bind(HttpConfig::default(), Arc::new(router))
            .expect("bind ephemeral port");
        Stack {
            engine,
            state,
            server,
        }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// Advance `seconds` of simulated time, exactly as the daemon does.
    fn drive(&mut self, seconds: u64) {
        for _ in 0..seconds {
            drive_second(&mut self.engine, &self.state);
        }
    }
}

#[test]
fn v1_paths_serve_the_same_endpoints_and_legacy_aliases_announce_deprecation() {
    let mut stack = Stack::priority();
    stack.drive(9);
    let addr = stack.addr();

    // Read endpoints: both namespaces answer, only legacy is deprecated.
    for (legacy, v1) in [
        ("/metrics", "/v1/metrics"),
        ("/healthz", "/v1/healthz"),
        ("/report", "/v1/report"),
    ] {
        let old = client::get(&addr, legacy).expect("legacy path");
        let new = client::get(&addr, v1).expect("v1 path");
        assert_eq!(old.status, 200, "{legacy}");
        assert_eq!(new.status, 200, "{v1}");
        assert_eq!(
            old.header("deprecation"),
            Some("true"),
            "{legacy} must announce its deprecation"
        );
        assert_eq!(
            new.header("deprecation"),
            None,
            "{v1} is the blessed path, not deprecated"
        );
        assert_eq!(
            old.header("content-type"),
            new.header("content-type"),
            "aliases must serve the same representation"
        );
    }
    prometheus::validate(
        client::get(&addr, "/v1/metrics")
            .expect("v1 metrics")
            .body_str()
            .expect("utf-8"),
    )
    .expect("v1 metrics page validates");

    // The legacy mutation alias behaves identically and is deprecated.
    let old_post = client::post(&addr, "/budget", b"[1240]").expect("legacy post");
    assert_eq!(old_post.status, 200);
    assert_eq!(old_post.header("deprecation"), Some("true"));
    let body = old_post.body_str().expect("utf-8");
    assert!(body.contains("\"status\":\"staged\""), "body: {body}");
}

#[test]
fn tree_budget_put_lands_at_the_next_round_boundary_and_only_on_that_tree() {
    let mut stack = Stack::stranded();
    stack.drive(9); // rounds at t=0 and t=8

    let response = client::put(
        &stack.addr(),
        "/v1/trees/1/budget",
        &[],
        b"{\"watts\": 640}",
    )
    .expect("put tree budget");
    assert_eq!(
        response.status,
        200,
        "body: {:?}",
        response.body_str().unwrap_or("<binary>")
    );

    // Not applied mid-period.
    stack.drive(6); // t = 15, still inside the period
    let mid = stack.engine.plane().root_budgets_now();
    assert_eq!(mid[1].as_f64(), 700.0);

    // Applied exactly at the t=16 boundary, tree 0 untouched.
    stack.drive(2);
    let after = stack.engine.plane().root_budgets_now();
    assert_eq!(after[0].as_f64(), 700.0);
    assert_eq!(after[1].as_f64(), 640.0);
}

#[test]
fn idempotency_keys_replay_equal_ops_and_conflict_on_different_ones() {
    let mut stack = Stack::stranded();
    stack.drive(1);
    let addr = stack.addr();
    let key = [("Idempotency-Key", "roll-2026-08")];

    let first = client::put(&addr, "/v1/trees/0/budget", &key, b"660").expect("first put");
    assert_eq!(first.status, 200);
    let first_body = first.body_str().expect("utf-8").to_string();
    assert!(first_body.contains("\"replayed\":false"), "{first_body}");

    // Same key, same op: replayed, same seq, nothing appended.
    let head_before = stack.state.oplog_head();
    let retry = client::put(&addr, "/v1/trees/0/budget", &key, b"660").expect("retry put");
    assert_eq!(retry.status, 200);
    let retry_body = retry.body_str().expect("utf-8").to_string();
    assert!(retry_body.contains("\"replayed\":true"), "{retry_body}");
    assert_eq!(
        stack.state.oplog_head(),
        head_before,
        "an idempotent replay must not append"
    );
    let seq = |body: &str| {
        body.split("\"seq\":")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .map(str::to_string)
    };
    assert_eq!(seq(&first_body), seq(&retry_body), "replay answers the original seq");

    // Same key, different op: 409 with the conflict code.
    let conflict =
        client::put(&addr, "/v1/trees/0/budget", &key, b"670").expect("conflicting put");
    assert_eq!(conflict.status, 409);
    let body = conflict.body_str().expect("utf-8");
    assert!(
        body.contains("\"code\":\"idempotency_conflict\""),
        "body: {body}"
    );
    assert_eq!(stack.state.oplog_head(), head_before, "conflicts append nothing");
}

#[test]
fn events_endpoint_streams_the_log_and_honors_since() {
    let mut stack = Stack::stranded();
    stack.drive(1);
    let addr = stack.addr();

    client::put(&addr, "/v1/trees/0/budget", &[], b"650").expect("first mutation");
    client::put(&addr, "/v1/trees/1/budget", &[], b"660").expect("second mutation");

    let all = client::get(&addr, "/v1/events").expect("all events");
    assert_eq!(all.status, 200);
    let body = all.body_str().expect("utf-8");
    assert!(body.starts_with("{\"head\":2,"), "body: {body}");
    assert!(body.contains("\"seq\":1"), "body: {body}");
    assert!(body.contains("\"seq\":2"), "body: {body}");
    assert!(body.contains("\"type\":\"set_tree_budget\""), "body: {body}");

    // since=1 excludes the first event but keeps the head watermark.
    let tail = client::get(&addr, "/v1/events?since=1").expect("tail events");
    let body = tail.body_str().expect("utf-8");
    assert!(body.starts_with("{\"head\":2,"), "body: {body}");
    assert!(!body.contains("\"seq\":1,"), "body: {body}");
    assert!(body.contains("\"seq\":2"), "body: {body}");

    // since past the head is an empty list, not an error.
    let empty = client::get(&addr, "/v1/events?since=99").expect("empty events");
    let body = empty.body_str().expect("utf-8");
    assert!(body.contains("\"events\":[]"), "body: {body}");

    // A garbage since is a 400 in the shared envelope.
    let bad = client::get(&addr, "/v1/events?since=soon").expect("bad since");
    assert_eq!(bad.status, 400);
    assert!(
        bad.body_str().expect("utf-8").starts_with("{\"error\":{"),
        "error envelope expected"
    );
}

#[test]
fn group_priority_patch_drives_every_server_under_the_node_and_null_reverts() {
    let mut stack = Stack::priority();
    stack.drive(1); // first round publishes the capability view
    let addr = stack.addr();

    // Arena level order for the Fig. 2 tree: 0 = Top CB, 1 = Left CB,
    // 2 = Right CB; SC and SD hang under the right breaker.
    let ids = stack.engine.farm().ids().to_vec();
    let (sc, sd) = (ids[2], ids[3]);
    assert_eq!(
        stack.engine.plane().effective_priority(sc),
        Some(Priority::LOW)
    );

    let raise = client::patch(
        &addr,
        "/v1/groups/0.2/priority",
        &[],
        b"{\"priority\": 1}",
    )
    .expect("patch group priority");
    assert_eq!(
        raise.status,
        200,
        "body: {:?}",
        raise.body_str().unwrap_or("<binary>")
    );

    stack.drive(8); // cross the t=8 boundary: the reconciler applies it
    assert_eq!(
        stack.engine.plane().effective_priority(sc),
        Some(Priority::HIGH),
        "SC sits under the declared group"
    );
    assert_eq!(
        stack.engine.plane().effective_priority(sd),
        Some(Priority::HIGH),
        "SD sits under the declared group"
    );
    // SA keeps its static high priority, SB its static low.
    assert_eq!(
        stack.engine.plane().effective_priority(ids[1]),
        Some(Priority::LOW),
        "SB is outside the group"
    );

    // null withdraws the band: covered servers revert to static.
    let clear = client::patch(&addr, "/v1/groups/0.2/priority", &[], b"{\"priority\": null}")
        .expect("clear group priority");
    assert_eq!(clear.status, 200);
    stack.drive(8);
    assert_eq!(
        stack.engine.plane().effective_priority(sc),
        Some(Priority::LOW),
        "SC reverts to its static priority"
    );
}

#[test]
fn drain_and_undrain_cycle_a_server_through_the_reconciler() {
    let mut stack = Stack::priority();
    stack.drive(1);
    let addr = stack.addr();
    let sd = stack.engine.farm().ids()[3];
    assert!(stack.engine.farm().get(sd).expect("sd").is_powered());

    let drain = client::post(&addr, &format!("/v1/servers/{}:drain", sd.0), b"")
        .expect("drain");
    assert_eq!(
        drain.status,
        200,
        "body: {:?}",
        drain.body_str().unwrap_or("<binary>")
    );
    stack.drive(8);
    assert!(
        !stack.engine.farm().get(sd).expect("sd").is_powered(),
        "declared drain powers the server down at the boundary"
    );

    let undrain = client::post(&addr, &format!("/v1/servers/{}:undrain", sd.0), b"")
        .expect("undrain");
    assert_eq!(undrain.status, 200);
    stack.drive(8);
    assert!(
        stack.engine.farm().get(sd).expect("sd").is_powered(),
        "declared undrain restores power"
    );
}

#[test]
fn healthz_watermarks_track_append_and_reconcile() {
    let mut stack = Stack::stranded();
    stack.drive(9);
    let addr = stack.addr();

    let before = client::get(&addr, "/v1/healthz").expect("healthz");
    let body = before.body_str().expect("utf-8");
    assert!(body.contains("\"oplog_head\":0"), "body: {body}");
    assert!(body.contains("\"applied_seq\":0"), "body: {body}");

    client::put(&addr, "/v1/trees/0/budget", &[], b"666").expect("mutate");
    let staged = client::get(&addr, "/v1/healthz").expect("healthz after append");
    let body = staged.body_str().expect("utf-8");
    assert!(
        body.contains("\"oplog_head\":1") && body.contains("\"applied_seq\":0"),
        "head advances before the boundary, applied lags: {body}"
    );

    stack.drive(8); // cross t=16: the reconciler catches up
    let converged = client::get(&addr, "/v1/healthz").expect("healthz after boundary");
    let body = converged.body_str().expect("utf-8");
    assert!(
        body.contains("\"oplog_head\":1") && body.contains("\"applied_seq\":1"),
        "reconciler converges the watermark: {body}"
    );
    assert_eq!(stack.engine.plane().root_budgets_now()[0].as_f64(), 666.0);
}

#[test]
fn every_failure_answers_the_one_json_error_envelope() {
    let mut stack = Stack::stranded();
    stack.drive(1);
    let addr = stack.addr();

    let cases: Vec<(u16, &str, client::HttpResponse)> = vec![
        (
            404,
            "not_found",
            client::get(&addr, "/v1/nope").expect("unknown v1 path"),
        ),
        (
            404,
            "not_found",
            client::get(&addr, "/nope").expect("unknown legacy path"),
        ),
        (
            405,
            "method_not_allowed",
            client::get(&addr, "/v1/budget").expect("wrong method"),
        ),
        (
            405,
            "method_not_allowed",
            client::post(&addr, "/v1/trees/0/budget", b"1").expect("post where put"),
        ),
        (
            400,
            "bad_request",
            client::put(&addr, "/v1/trees/zero/budget", &[], b"700").expect("bad tree id"),
        ),
        (
            400,
            "bad_budget",
            client::post(&addr, "/v1/budget", b"[700]").expect("wrong arity"),
        ),
        (
            404,
            "not_found",
            client::put(&addr, "/v1/trees/7/budget", &[], b"700").expect("unknown tree"),
        ),
        (
            404,
            "not_found",
            client::post(&addr, "/v1/servers/999:drain", b"").expect("unknown server"),
        ),
        (
            400,
            "bad_request",
            client::put(&addr, "/v1/allocator", &[], b"{\"policy\": \"magic\"}")
                .expect("unknown policy"),
        ),
    ];
    for (status, code, response) in cases {
        assert_eq!(response.status, status, "case {code}");
        let body = response.body_str().expect("utf-8 error body");
        assert!(
            body.starts_with("{\"error\":{\"code\":\""),
            "case {code}: body {body}"
        );
        assert!(
            body.contains(&format!("\"code\":\"{code}\"")),
            "case {code}: body {body}"
        );
        assert!(
            body.contains("\"message\":\""),
            "case {code}: body {body}"
        );
    }

    // Raw-parser failures wear the same envelope (http.rs converts).
    let raw = client::send_raw(
        &addr,
        b"GET /v1/healthz HTTP/9.9\r\nHost: x\r\nConnection: close\r\n\r\n",
    )
    .expect("bad version");
    assert_eq!(raw.status, 400);
    assert!(
        raw.body_str().expect("utf-8").starts_with("{\"error\":{"),
        "parser errors share the envelope"
    );
}

#[test]
fn wrong_methods_answer_405_with_allow_and_unknown_paths_404_in_the_envelope() {
    let mut stack = Stack::stranded();
    stack.drive(1);
    let addr = stack.addr();

    // GET on mutating-only routes: 405, the envelope, and an Allow
    // header naming the one accepted method (RFC 9110 §15.5.6).
    let cases: Vec<(&str, &str, client::HttpResponse)> = vec![
        (
            "/v1/allocator",
            "PUT",
            client::get(&addr, "/v1/allocator").expect("get on put-only"),
        ),
        (
            "/v1/budget",
            "POST",
            client::get(&addr, "/v1/budget").expect("get on post-only"),
        ),
        (
            "/v1/trees/0/budget",
            "PUT",
            client::get(&addr, "/v1/trees/0/budget").expect("get on put-only dynamic"),
        ),
        (
            "/v1/groups/0.1/priority",
            "PATCH",
            client::get(&addr, "/v1/groups/0.1/priority").expect("get on patch-only"),
        ),
        (
            "/v1/servers/1:drain",
            "POST",
            client::get(&addr, "/v1/servers/1:drain").expect("get on post-only action"),
        ),
        (
            "/v1/trace",
            "GET",
            client::post(&addr, "/v1/trace", b"").expect("post on get-only"),
        ),
    ];
    for (path, allow, response) in cases {
        assert_eq!(response.status, 405, "{path}");
        assert_eq!(
            response.header("allow"),
            Some(allow),
            "{path} must name the accepted method"
        );
        let body = response.body_str().expect("utf-8");
        assert!(
            body.starts_with("{\"error\":{\"code\":\"method_not_allowed\""),
            "{path}: body {body}"
        );
    }

    // Unknown /v1 paths — including near-misses of real dynamic routes —
    // are 404s in the same envelope.
    for path in [
        "/v1/nope",
        "/v1/trees/0/banana",
        "/v1/servers/1:reboot",
        "/v1/trace/extra",
    ] {
        let response = client::get(&addr, path).expect("unknown path");
        assert_eq!(response.status, 404, "{path}");
        let body = response.body_str().expect("utf-8");
        assert!(
            body.starts_with("{\"error\":{\"code\":\"not_found\""),
            "{path}: body {body}"
        );
    }
}

#[test]
fn trace_endpoint_serves_validating_documents_and_rejects_bad_last_s() {
    let mut stack = Stack::priority();
    stack.drive(17); // rounds at t = 0, 8, 16
    let addr = stack.addr();

    // A full download parses under the strict validator and carries the
    // per-tree counter tracks the plane emits every round.
    let full = client::get(&addr, "/v1/trace").expect("trace");
    assert_eq!(full.status, 200);
    assert_eq!(full.header("content-type"), Some(trace::CONTENT_TYPE));
    let parsed = trace::parse(full.body_str().expect("utf-8")).expect("trace validates");
    assert!(
        parsed.counter_tracks().len() >= 4,
        "tracks: {:?}",
        parsed.counter_tracks()
    );

    // last_s narrows the window by logical time; downloads are
    // idempotent (non-destructive), so the full view is still intact.
    let tail = client::get(&addr, "/v1/trace?last_s=4").expect("tail trace");
    assert_eq!(tail.status, 200);
    let tail_parsed = trace::parse(tail.body_str().expect("utf-8")).expect("tail validates");
    assert!(
        tail_parsed.events.len() < parsed.events.len(),
        "a 4 s cut of a 17 s run must drop events"
    );
    let again = client::get(&addr, "/v1/trace").expect("trace again");
    let again_parsed =
        trace::parse(again.body_str().expect("utf-8")).expect("second download validates");
    assert_eq!(
        again_parsed.events.len(),
        parsed.events.len(),
        "downloads must not drain the buffer"
    );

    // Bad last_s values: negative, non-numeric, u64 overflow — all 400s
    // in the shared envelope.
    for query in ["-5", "abc", "99999999999999999999999", "4.5", ""] {
        let bad = client::get(&addr, &format!("/v1/trace?last_s={query}"))
            .expect("bad last_s");
        assert_eq!(bad.status, 400, "last_s={query:?}");
        let body = bad.body_str().expect("utf-8");
        assert!(
            body.starts_with("{\"error\":{\"code\":\"bad_request\""),
            "last_s={query:?}: body {body}"
        );
    }

    // A router with no trace recorder attached answers 503, not 404:
    // the endpoint exists, tracing just isn't enabled (room mode).
    let registry = stack.state.registry().clone();
    let bare_state = Arc::new(ServeState::new(registry.clone(), 8));
    let bare = HttpServer::bind(
        HttpConfig::default(),
        Arc::new(Router::new(bare_state, registry)),
    )
    .expect("bind bare server");
    let off = client::get(&bare.local_addr().to_string(), "/v1/trace").expect("traceless");
    assert_eq!(off.status, 503);
    assert!(
        off.body_str()
            .expect("utf-8")
            .starts_with("{\"error\":{\"code\":\"unavailable\""),
        "disabled tracing wears the envelope"
    );
}

#[test]
fn allocator_put_switches_the_policy_and_relabels_the_report() {
    let mut stack = Stack::priority();
    // Label the state as the daemon would.
    let registry = stack.state.registry().clone();
    let state = Arc::new(
        ServeState::new(registry.clone(), stack.engine.control_period_s())
            .with_policy_label("waterfall"),
    );
    let router = Router::new(state.clone(), registry);
    let server =
        HttpServer::bind(HttpConfig::default(), Arc::new(router)).expect("bind labeled server");
    let addr = server.local_addr().to_string();

    for _ in 0..9 {
        drive_second(&mut stack.engine, &state);
    }
    let before = client::get(&addr, "/v1/report").expect("report");
    assert!(
        before.body_str().expect("utf-8").contains("\"policy\": \"waterfall\""),
        "report starts with the boot policy"
    );

    let switch = client::put(&addr, "/v1/allocator", &[], b"{\"policy\": \"waterfilling\"}")
        .expect("switch allocator");
    assert_eq!(
        switch.status,
        200,
        "body: {:?}",
        switch.body_str().unwrap_or("<binary>")
    );

    for _ in 0..8 {
        drive_second(&mut stack.engine, &state);
    }
    let after = client::get(&addr, "/v1/report").expect("report after switch");
    assert!(
        after.body_str().expect("utf-8").contains("\"policy\": \"waterfilling\""),
        "the reconciled allocator relabels the report"
    );
}
