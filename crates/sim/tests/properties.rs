//! Property-based tests for the simulation layer.

use proptest::prelude::*;

use capmaestro_core::policy::PolicyKind;
use capmaestro_server::ServerPowerModel;
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_sim::engine::{Engine, Event};
use capmaestro_sim::jobs::{Job, JobSchedule};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::{Priority, ServerId};
use capmaestro_units::Watts;

fn tiny_config(seed: u64) -> CapacityConfig {
    CapacityConfig {
        dc: DataCenterParams {
            racks: 4,
            transformers_per_feed: 1,
            rpps_per_transformer: 2,
            cdus_per_rpp: 2,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * 4.0 / 162.0),
        worst_trials: 3,
        typical_reps_per_bin: 1,
        seed,
        ..CapacityConfig::default()
    }
}

/// Promoted proptest regression (`properties.proptest-regressions`): two
/// fresh planners over the same seed/config must produce bitwise-identical
/// stats. Seed 745 at 28 servers per rack once tripped this; keep the exact
/// inputs pinned instead of only a hex seed.
#[test]
fn regression_planner_deterministic_seed_745() {
    let (seed, spr) = (745u64, 28usize);
    let a = CapacityPlanner::new(tiny_config(seed))
        .evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
    let b = CapacityPlanner::new(tiny_config(seed))
        .evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
    assert!(
        a.cap_ratio_all.is_finite() && a.cap_ratio_high.is_finite(),
        "planner stats must be finite (NaN breaks determinism comparisons): {a:?}"
    );
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The capacity planner is deterministic for a fixed seed.
    #[test]
    fn planner_deterministic(seed in 0u64..1000, spr in 6usize..30) {
        let a = CapacityPlanner::new(tiny_config(seed))
            .evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
        let b = CapacityPlanner::new(tiny_config(seed))
            .evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
        prop_assert_eq!(a, b);
    }

    /// Cap ratios are always valid fractions, and global priority never
    /// caps high-priority servers more than no-priority does.
    #[test]
    fn cap_ratio_sanity(seed in 0u64..200, spr in 6usize..45) {
        let planner = CapacityPlanner::new(tiny_config(seed));
        let global = planner.evaluate(spr, PolicyKind::GlobalPriority, Condition::WorstCase);
        let none = planner.evaluate(spr, PolicyKind::NoPriority, Condition::WorstCase);
        for s in [&global, &none] {
            prop_assert!((0.0..=1.0).contains(&s.cap_ratio_all));
            prop_assert!((0.0..=1.0).contains(&s.cap_ratio_high));
        }
        prop_assert!(
            global.cap_ratio_high <= none.cap_ratio_high + 1e-9,
            "global {} vs none {}",
            global.cap_ratio_high,
            none.cap_ratio_high
        );
    }

    /// Compiled job events never produce demands outside the model
    /// envelope and always pair demand with priority per edge.
    #[test]
    fn job_compilation_is_well_formed(
        jobs in prop::collection::vec(
            (0u64..500, 1u64..200, 0.0f64..1.0, 0u8..3, 0u32..6),
            1..30,
        ),
    ) {
        let mut schedule = JobSchedule::new();
        for (i, (start, dur, util, pri, srv)) in jobs.iter().enumerate() {
            schedule.assign(
                ServerId(*srv),
                Job::new(format!("j{i}"), Priority(*pri), *util, *start, start + dur),
            );
        }
        let model = ServerPowerModel::paper_default();
        let events = schedule.compile(model);
        let mut demands = 0usize;
        let mut priorities = 0usize;
        for (_, event) in &events {
            match event {
                Event::SetDemand(_, d) => {
                    demands += 1;
                    prop_assert!(*d >= model.idle() && *d <= model.cap_max());
                }
                Event::SetPriority(..) => priorities += 1,
                _ => prop_assert!(false, "unexpected event kind"),
            }
        }
        prop_assert_eq!(demands, priorities);
        // Events are sorted by time.
        prop_assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    /// However demands move around, the engine keeps the Fig. 2 rig inside
    /// its contractual budget at steady state.
    #[test]
    fn engine_budget_invariant_under_random_demands(
        demands in prop::collection::vec(160.0f64..490.0, 4),
        change_at in 20u64..60,
    ) {
        let rig = priority_rig(RigConfig::table2());
        let ids: Vec<ServerId> = ["SA", "SB", "SC", "SD"]
            .iter()
            .map(|n| rig.server(n))
            .collect();
        let mut engine = Engine::new(rig);
        for (id, d) in ids.iter().zip(&demands) {
            engine.schedule(change_at, Event::SetDemand(*id, Watts::new(*d)));
        }
        let trace = engine.run(change_at + 120);
        let total: f64 = trace
            .server_power
            .values()
            .map(|s| *s.last().unwrap())
            .sum();
        prop_assert!(total <= 1240.0 * 1.02, "total {total}");
        prop_assert!(trace.trips.is_empty());
    }
}
