//! Differential test for the observability layer: an engine whose
//! control plane records into a live `MetricsRegistry` must make
//! bit-identical decisions to an uninstrumented one — recording reads
//! clocks and bumps atomics, but must never touch a control input.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use capmaestro_core::obs::{MetricsRegistry, RoundPhase};
use capmaestro_sim::engine::{Engine, Trace};
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_topology::{FeedId, ServerId};

fn assert_series_identical<K: Hash + Eq + Debug>(
    what: &str,
    instrumented: &HashMap<K, Vec<f64>>,
    plain: &HashMap<K, Vec<f64>>,
) {
    assert_eq!(instrumented.len(), plain.len(), "{what}: different key sets");
    for (key, series_a) in instrumented {
        let series_b = plain
            .get(key)
            .unwrap_or_else(|| panic!("{what}: plain trace missing {key:?}"));
        assert_eq!(series_a.len(), series_b.len(), "{what} {key:?}: length");
        for (i, (a, b)) in series_a.iter().zip(series_b).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what} {key:?}[{i}]: {a} vs {b}");
        }
    }
}

fn assert_traces_identical(instrumented: &Trace, plain: &Trace) {
    assert_series_identical("server_power", &instrumented.server_power, &plain.server_power);
    assert_series_identical("supply_power", &instrumented.supply_power, &plain.supply_power);
    assert_series_identical("throttle", &instrumented.throttle, &plain.throttle);
    assert_series_identical("dc_cap", &instrumented.dc_cap, &plain.dc_cap);
    assert_series_identical("node_load", &instrumented.node_load, &plain.node_load);
    assert_eq!(instrumented.node_names, plain.node_names);
    assert_eq!(instrumented.trips, plain.trips);
    assert_eq!(instrumented.lost_servers, plain.lost_servers);
    assert_eq!(instrumented.stranded, plain.stranded);
    assert_eq!(instrumented.seconds, plain.seconds);
}

/// 200 s of the Fig. 2 rig (SPO on) under a seeded telemetry-fault
/// schedule, run twice: once with a registry recording every phase, once
/// with the default `NullRecorder`. Traces must match bit for bit, and
/// the registry must actually have recorded the run.
#[test]
fn instrumented_rounds_are_bit_identical_to_uninstrumented() {
    const SECONDS: u64 = 200;
    let config = ChaosConfig {
        seconds: SECONDS,
        episodes: 4,
        min_duration_s: 8,
        max_duration_s: 24,
        settle_s: 16,
        quiesce_s: 32,
        ..ChaosConfig::default()
    };
    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
    let plan = ChaosPlan::generate(&config, &servers, &feeds, 42);

    let registry = Arc::new(MetricsRegistry::new());
    let mut instrumented = Engine::new(rig);
    instrumented.plane_mut().set_recorder(registry.clone());
    instrumented.schedule_chaos(&plan);
    let trace_instrumented = instrumented.run(SECONDS);

    let mut plain = Engine::new(priority_rig(RigConfig::table2().with_spo(true)));
    plain.schedule_chaos(&plan);
    let trace_plain = plain.run(SECONDS);

    assert_traces_identical(&trace_instrumented, &trace_plain);

    // The instrumented run was actually observed: every phase histogram
    // is populated and the round counter matches the control cadence.
    let snap = registry.snapshot();
    for phase in RoundPhase::ALL {
        let count = snap
            .histograms
            .iter()
            .find(|h| h.name == phase.metric_name())
            .map(|h| h.count)
            .unwrap_or(0);
        assert!(count > 0, "phase {} was never observed", phase.label());
    }
    let rounds = snap
        .counters
        .iter()
        .find(|c| c.name == capmaestro_core::obs::names::ROUNDS_TOTAL)
        .map(|c| c.value)
        .unwrap_or(0);
    assert_eq!(rounds, SECONDS / 8, "one round per 8 s control period");
}

/// 60 s seeded-chaos soak with the serving stack attached and scraper
/// threads hammering `/metrics`, `/healthz`, and `/report` the whole
/// time, against an unscraped twin of the same plan: serving mode reads
/// only published copies, so scraping must never perturb a control
/// decision. Traces must match bit for bit.
#[test]
fn scraped_engine_is_bit_identical_to_unscraped_twin() {
    use capmaestro_core::obs::prometheus;
    use capmaestro_serve::{client, HttpConfig, HttpServer, Router, ServeState};
    use std::sync::atomic::{AtomicBool, Ordering};

    const SECONDS: u64 = 60;
    let config = ChaosConfig {
        seconds: SECONDS,
        episodes: 2,
        min_duration_s: 4,
        max_duration_s: 8,
        settle_s: 8,
        quiesce_s: 16,
        ..ChaosConfig::default()
    };
    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
    let plan = ChaosPlan::generate(&config, &servers, &feeds, 42);

    // Twin A: live registry, HTTP server, and scrapers under load.
    let registry = Arc::new(MetricsRegistry::new());
    let mut scraped = Engine::new(priority_rig(RigConfig::table2().with_spo(true)));
    scraped.plane_mut().set_recorder(registry.clone());
    scraped.schedule_chaos(&plan);
    let state = Arc::new(ServeState::new(
        registry.clone(),
        scraped.control_period_s(),
    ));
    let router = Router::new(state.clone(), registry.clone());
    let mut server = HttpServer::bind(HttpConfig::default().with_workers(2), Arc::new(router))
        .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let mut scrapers = Vec::new();
    for endpoint in ["/metrics", "/healthz", "/report"] {
        let addr = addr.clone();
        let stop = stop.clone();
        scrapers.push(std::thread::spawn(move || {
            let mut scrapes = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let response = client::get(&addr, endpoint).expect("scrape under soak");
                match endpoint {
                    "/metrics" => {
                        assert_eq!(response.status, 200);
                        prometheus::validate(response.body_str().expect("utf-8"))
                            .expect("valid exposition during soak");
                    }
                    // /healthz flips with wall-clock progress and /report
                    // needs a first round: 200 or 503, never garbage.
                    _ => assert!(response.status == 200 || response.status == 503),
                }
                scrapes += 1;
            }
            scrapes
        }));
    }

    let period = scraped.control_period_s();
    let trace_scraped = scraped.run_observed(SECONDS, |engine| {
        // The observer runs post-step; the round fired when the pre-step
        // clock (now − 1) was on a period boundary.
        let round_ran = (engine.now_s() - 1).is_multiple_of(period);
        state.publish(engine, round_ran);
        // Yield so scrapers genuinely interleave with round execution on
        // small CI machines.
        std::thread::yield_now();
    });
    // Keep scraping a moment past the end, then stop and drain.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let mut total_scrapes = 0usize;
    for scraper in scrapers {
        total_scrapes += scraper.join().expect("scraper thread");
    }
    server.shutdown();
    assert!(total_scrapes > 0, "the soak must actually have been scraped");

    // Twin B: same plan, no registry, no server, no scrapers.
    let mut plain = Engine::new(priority_rig(RigConfig::table2().with_spo(true)));
    plain.schedule_chaos(&plan);
    let trace_plain = plain.run(SECONDS);

    assert_traces_identical(&trace_scraped, &trace_plain);
    assert_eq!(
        state.health().rounds_total,
        SECONDS.div_ceil(period), // rounds fire at t = 0, 8, …, 56
        "every round must have been published to the serving state"
    );
}
