//! Differential tests: the engine's parallel per-second hot path
//! (sharded stepping, fused sensing, load accumulation, trace recording)
//! must be bit-identical to the sequential path on the full data-center
//! scenario — including a mid-run feed failure, so the failover and
//! trip-handling paths are compared too.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::{Engine, Event, Trace};
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::FeedId;
use capmaestro_units::Watts;

/// A 64-server data center (8 racks × 8) — the Fig. 8-style closed-loop
/// scenario at a size that keeps the debug-mode differential run fast.
fn small_dc(policy: PolicyKind, spo: bool) -> DataCenterRigConfig {
    DataCenterRigConfig {
        params: DataCenterParams {
            racks: 8,
            transformers_per_feed: 2,
            rpps_per_transformer: 2,
            cdus_per_rpp: 2,
            servers_per_rack: 8,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * 8.0 / 162.0) * 0.95,
        utilization: 0.8,
        policy,
        spo,
        ..DataCenterRigConfig::default()
    }
}

fn assert_series_identical<K: Hash + Eq + Debug>(
    what: &str,
    seq: &HashMap<K, Vec<f64>>,
    par: &HashMap<K, Vec<f64>>,
) {
    assert_eq!(seq.len(), par.len(), "{what}: different key sets");
    for (key, series_seq) in seq {
        let series_par = par
            .get(key)
            .unwrap_or_else(|| panic!("{what}: parallel trace missing {key:?}"));
        assert_eq!(series_seq.len(), series_par.len(), "{what} {key:?}: length");
        for (i, (a, b)) in series_seq.iter().zip(series_par).enumerate() {
            // Bit comparison (not ==) so NaN placeholders compare equal
            // and -0.0 vs 0.0 would be caught.
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what} {key:?}[{i}]: {a} vs {b}"
            );
        }
    }
}

fn assert_traces_identical(seq: &Trace, par: &Trace) {
    assert_series_identical("server_power", &seq.server_power, &par.server_power);
    assert_series_identical("supply_power", &seq.supply_power, &par.supply_power);
    assert_series_identical("throttle", &seq.throttle, &par.throttle);
    assert_series_identical("dc_cap", &seq.dc_cap, &par.dc_cap);
    assert_series_identical("node_load", &seq.node_load, &par.node_load);
    assert_eq!(seq.node_names, par.node_names);
    assert_eq!(seq.trips, par.trips);
    assert_eq!(seq.lost_servers, par.lost_servers);
    assert_eq!(seq.stranded, par.stranded);
    assert_eq!(seq.seconds, par.seconds);
}

#[test]
fn parallel_engine_is_bit_identical_on_the_datacenter_scenario() {
    for (policy, spo, threads) in [
        (PolicyKind::GlobalPriority, false, 4),
        (PolicyKind::LocalPriority, true, 7),
    ] {
        let config = small_dc(policy, spo);
        let mut seq = Engine::new(datacenter_rig(&config));
        let mut par = Engine::new(datacenter_rig(&config));
        par.set_parallelism(threads);
        // A mid-run feed failure exercises failover, supply shifting, and
        // the shared-budget inheritance in both engines.
        seq.schedule(20, Event::FailFeed(FeedId::B));
        par.schedule(20, Event::FailFeed(FeedId::B));
        let trace_seq = seq.run(48);
        let trace_par = par.run(48);
        assert_traces_identical(&trace_seq, &trace_par);

        // The converged round decisions match bitwise as well.
        let report_seq = seq.run_control_round();
        let report_par = par.run_control_round();
        assert_eq!(report_seq.dc_caps.len(), report_par.dc_caps.len());
        for (id, cap) in &report_seq.dc_caps {
            let other = report_par.dc_caps[id];
            assert_eq!(
                cap.as_f64().to_bits(),
                other.as_f64().to_bits(),
                "dc cap for {id} (policy {policy:?}, spo {spo}): {cap} vs {other}"
            );
        }
        assert_eq!(
            report_seq.stranded_reclaimed.as_f64().to_bits(),
            report_par.stranded_reclaimed.as_f64().to_bits()
        );
    }
}
