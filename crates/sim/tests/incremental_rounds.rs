//! Differential tests for the incremental round pipeline: an engine
//! running the cached/dirty-tracked `ControlPlane::round` path every round
//! must stay bit-identical to one whose `RoundContext` is thrown away
//! and rebuilt from scratch every simulated second — on the Fig. 2 rig
//! under seeded chaos plans, and on a 1024-server data center under a
//! hand-written fault/priority/demand event storm.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use capmaestro_sim::engine::{Engine, Event, Trace};
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan, FaultKind};
use capmaestro_sim::scenarios::{
    datacenter_rig, priority_rig, DataCenterRigConfig, RigConfig,
};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::{FeedId, Priority, ServerId};
use capmaestro_units::Watts;
use proptest::prelude::*;

fn assert_series_identical<K: Hash + Eq + Debug>(
    what: &str,
    inc: &HashMap<K, Vec<f64>>,
    full: &HashMap<K, Vec<f64>>,
) {
    assert_eq!(inc.len(), full.len(), "{what}: different key sets");
    for (key, series_inc) in inc {
        let series_full = full
            .get(key)
            .unwrap_or_else(|| panic!("{what}: rebuilt trace missing {key:?}"));
        assert_eq!(series_inc.len(), series_full.len(), "{what} {key:?}: length");
        for (i, (a, b)) in series_inc.iter().zip(series_full).enumerate() {
            // Bit comparison (not ==) so NaN placeholders compare equal
            // and -0.0 vs 0.0 would be caught.
            assert_eq!(a.to_bits(), b.to_bits(), "{what} {key:?}[{i}]: {a} vs {b}");
        }
    }
}

fn assert_traces_identical(inc: &Trace, full: &Trace) {
    assert_series_identical("server_power", &inc.server_power, &full.server_power);
    assert_series_identical("supply_power", &inc.supply_power, &full.supply_power);
    assert_series_identical("throttle", &inc.throttle, &full.throttle);
    assert_series_identical("dc_cap", &inc.dc_cap, &full.dc_cap);
    assert_series_identical("node_load", &inc.node_load, &full.node_load);
    assert_eq!(inc.node_names, full.node_names);
    assert_eq!(inc.trips, full.trips);
    assert_eq!(inc.lost_servers, full.lost_servers);
    assert_eq!(inc.stranded, full.stranded);
    assert_eq!(inc.seconds, full.seconds);
}

/// Runs the engine second by second, discarding the plane's cached
/// `RoundContext` (arena round state, reusable buffers, dirty stamps)
/// after every second so each control round rebuilds from scratch.
fn run_rebuilding_every_second(engine: &mut Engine, seconds: u64) -> Trace {
    for _ in 0..seconds {
        engine.step();
        engine.plane_mut().reset_round_cache();
    }
    engine.trace().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded chaos streams (dropped/stuck/noisy/spiking sensors and
    /// telemetry flaps) on the Fig. 2 rig: incremental rounds must be
    /// bit-identical to from-scratch rounds under fault injection.
    #[test]
    fn incremental_rounds_match_full_rebuild_under_chaos(seed in 0u64..10_000) {
        let config = ChaosConfig {
            seconds: 120,
            episodes: 4,
            min_duration_s: 8,
            max_duration_s: 20,
            settle_s: 16,
            quiesce_s: 24,
            ..ChaosConfig::default()
        };
        let rig = priority_rig(RigConfig::table2());
        let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
        let feeds: Vec<FeedId> =
            rig.topology.feeds().iter().map(|g| g.feed()).collect();
        let plan = ChaosPlan::generate(&config, &servers, &feeds, seed);

        let mut incremental = Engine::new(rig);
        incremental.schedule_chaos(&plan);
        let trace_inc = incremental.run(config.seconds);

        let mut rebuilt = Engine::new(priority_rig(RigConfig::table2()));
        rebuilt.schedule_chaos(&plan);
        let trace_full = run_rebuilding_every_second(&mut rebuilt, config.seconds);

        assert_traces_identical(&trace_inc, &trace_full);
    }
}

/// A 1024-server data center (32 racks × 32) with SPO enabled: the Table
/// 4-style closed loop at the issue's "at least 1000 simulated servers"
/// scale, kept short enough for a debug-mode differential run.
fn large_dc() -> DataCenterRigConfig {
    DataCenterRigConfig {
        params: DataCenterParams {
            racks: 32,
            transformers_per_feed: 2,
            rpps_per_transformer: 4,
            cdus_per_rpp: 4,
            servers_per_rack: 32,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * 32.0 / 162.0) * 0.95,
        utilization: 0.8,
        spo: true,
        ..DataCenterRigConfig::default()
    }
}

#[test]
fn incremental_rounds_match_full_rebuild_on_a_large_datacenter() {
    let config = large_dc();
    let mut incremental = Engine::new(datacenter_rig(&config));
    let mut rebuilt = Engine::new(datacenter_rig(&config));

    // A storm touching every dirty-tracking entry point: sensor faults,
    // a feed failure and restoration, and priority/demand edits.
    let ids: Vec<ServerId> = incremental.farm().iter().map(|(id, _)| id).collect();
    let events: Vec<(u64, Event)> = vec![
        (10, Event::InjectFault(ids[0], FaultKind::Spike { factor: 1.5 })),
        (12, Event::InjectFault(ids[17], FaultKind::DropReading)),
        (20, Event::FailFeed(FeedId::B)),
        (28, Event::ClearFault(ids[0])),
        (30, Event::SetPriority(ids[100], Priority::HIGH)),
        (32, Event::SetDemand(ids[511], Watts::new(150.0))),
        (34, Event::RestoreFeed(FeedId::B)),
    ];
    for (at, event) in &events {
        incremental.schedule(*at, event.clone());
        rebuilt.schedule(*at, event.clone());
    }

    let trace_inc = incremental.run(48);
    let trace_full = run_rebuilding_every_second(&mut rebuilt, 48);
    assert_traces_identical(&trace_inc, &trace_full);

    // The converged round decisions match bitwise as well.
    let report_inc = incremental.run_control_round();
    let report_full = rebuilt.run_control_round();
    assert_eq!(report_inc.dc_caps.len(), report_full.dc_caps.len());
    for (id, cap) in &report_inc.dc_caps {
        let other = report_full.dc_caps[id];
        assert_eq!(
            cap.as_f64().to_bits(),
            other.as_f64().to_bits(),
            "dc cap for {id}: {cap} vs {other}"
        );
    }
    assert_eq!(
        report_inc.stranded_reclaimed.as_f64().to_bits(),
        report_full.stranded_reclaimed.as_f64().to_bits()
    );
}
