//! Golden-file test for the Perfetto trace exporter: a seeded 10-round
//! Fig. 2 rig run must produce, after stripping wall-clock fields
//! (`trace::normalize` zeroes slice durations), exactly the checked-in
//! trace — byte for byte. Timestamps are the engine's logical clock and
//! event order is fixed, so any drift here is a real change to the
//! exporter or the round pipeline, not noise.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p capmaestro-sim --test trace_golden
//! ```

use std::sync::Arc;

use capmaestro_core::obs::trace::{self, TraceRecorder};
use capmaestro_core::obs::RoundPhase;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::scenarios::{priority_rig, RigConfig};

/// 10 control rounds at the paper's 8 s period.
const SECONDS: u64 = 80;

/// The checked-in canonical trace.
const GOLDEN: &str = include_str!("golden/trace_fig2.json");

fn traced_run() -> String {
    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let recorder = Arc::new(TraceRecorder::new());
    let mut engine = Engine::new(rig);
    engine.plane_mut().set_recorder(recorder.clone());
    engine.run(SECONDS);
    trace::normalize(&recorder.render(None)).expect("generated trace validates")
}

#[test]
fn fig2_trace_matches_golden_byte_for_byte() {
    let normalized = traced_run();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_fig2.json"
        );
        std::fs::write(path, &normalized).expect("write golden");
        panic!("golden regenerated at {path}; re-run without UPDATE_GOLDEN");
    }
    assert_eq!(
        normalized, GOLDEN,
        "normalized trace diverged from the checked-in golden \
         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
}

#[test]
fn golden_validates_under_the_strict_parser() {
    let parsed = trace::parse(GOLDEN).expect("golden trace validates");
    for phase in RoundPhase::ALL {
        assert!(
            parsed.slice_count(phase.label()) > 0,
            "golden has no {} slices",
            phase.label()
        );
    }
    assert!(
        parsed.counter_tracks().len() >= 4,
        "golden has fewer than 4 counter tracks: {:?}",
        parsed.counter_tracks()
    );
    assert_eq!(parsed.dropped, 0, "golden run must not overflow the ring");
}

#[test]
fn two_runs_normalize_identically() {
    assert_eq!(
        traced_run(),
        traced_run(),
        "the normalized trace of a seeded run must be deterministic"
    );
}
