//! Differential tests for desired-state reconciliation against the
//! operator event log.
//!
//! Two contracts from DESIGN.md "Operator API & reconciliation":
//!
//! - **Restart is replay.** A daemon that crashes and reopens its
//!   persisted log must reconstruct the declared state bit-identically
//!   and converge a fresh engine onto exactly the plane a continuous run
//!   reached — budgets by `to_bits`, priorities, power states, and the
//!   allocator all equal.
//! - **Chaos converges.** A live plane diverged out from under the
//!   reconciler (budgets restaged, priorities flipped, servers powered
//!   off behind its back) must be driven back onto the declared state
//!   within three round boundaries, with zero invariant violations
//!   recorded along the way.
//!
//! The loop here mirrors `capmaestro-serve`'s `drive_second` exactly —
//! fold the log, plan, apply, step — without the HTTP layer, so the
//! convergence property is pinned at the engine seam it rests on.

use capmaestro_core::oplog::{plan, DesiredState, Op, OpLog};
use capmaestro_core::AllocatorKind;
use capmaestro_sim::audit::{InvariantConfig, InvariantTracker};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_sim::Engine;
use capmaestro_topology::{Priority, ServerId};
use capmaestro_units::Watts;

/// A scratch file path unique to this test invocation; removed on drop.
struct ScratchFile(std::path::PathBuf);

impl ScratchFile {
    fn new(label: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "capmaestro-reconcile-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchFile(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// One simulated second of the daemon loop: reconcile at round
/// boundaries (fold new events, diff, apply), then step.
fn drive_second_reconciled(
    engine: &mut Engine,
    log: &OpLog,
    desired: &mut DesiredState,
    tracker: Option<&mut InvariantTracker>,
) {
    if engine.now_s().is_multiple_of(engine.control_period_s()) {
        for envelope in log.since(desired.seq) {
            desired.apply(envelope);
        }
        if desired.seq != 0 {
            let step = plan(desired, engine.plane(), engine.farm());
            engine.apply_reconcile_plan(&step);
        }
    }
    engine.step();
    if let Some(tracker) = tracker {
        tracker.observe(engine);
    }
}

/// The full operator-visible plane state, watts as bit patterns.
#[derive(Debug, PartialEq, Eq)]
struct PlaneFingerprint {
    root_budget_bits: Vec<u64>,
    priorities: Vec<(ServerId, Option<Priority>)>,
    powered: Vec<(ServerId, bool)>,
    allocator: AllocatorKind,
}

fn fingerprint(engine: &Engine) -> PlaneFingerprint {
    let ids = engine.farm().ids().to_vec();
    PlaneFingerprint {
        root_budget_bits: engine
            .plane()
            .root_budgets_now()
            .iter()
            .map(|w| w.as_f64().to_bits())
            .collect(),
        priorities: ids
            .iter()
            .map(|&id| (id, engine.plane().effective_priority(id)))
            .collect(),
        powered: ids
            .iter()
            .map(|&id| (id, engine.farm().get(id).expect("farm server").is_powered()))
            .collect(),
        allocator: engine.plane().config().allocator,
    }
}

/// The seeded operator session both tests declare: a tighter root
/// budget, a priority band over the right breaker (arena node 2 covers
/// SC and SD), a drain on SD, and an allocator switch.
fn declare_session(log: &mut OpLog, sd: ServerId) {
    log.append(0, Some("budget-1"), Op::SetTreeBudget { tree: 0, watts: Watts::new(1180.0) })
        .expect("append budget");
    log.append(
        0,
        Some("band-right"),
        Op::SetGroupPriority { tree: 0, node: 2, priority: Priority::HIGH },
    )
    .expect("append band");
    log.append(1, Some("drain-sd"), Op::SetServerEnabled { server: sd, enabled: false })
        .expect("append drain");
    log.append(1, Some("alloc"), Op::SetAllocator(AllocatorKind::Waterfilling))
        .expect("append allocator");
}

#[test]
fn restart_replays_the_persisted_log_onto_a_bit_identical_plane() {
    let scratch = ScratchFile::new("restart");
    let rig = || priority_rig(RigConfig::table2());
    let sd = {
        let probe = Engine::new(rig());
        probe.farm().ids()[3]
    };

    // First life: a daemon appends the session and runs three rounds.
    let continuous_fingerprint = {
        let (mut log, _) = OpLog::open(&scratch.0).expect("create log");
        declare_session(&mut log, sd);
        let mut engine = Engine::new(rig());
        let mut desired = DesiredState::default();
        for _ in 0..17 {
            drive_second_reconciled(&mut engine, &log, &mut desired, None);
        }
        fingerprint(&engine)
    };

    // Restart: reopen the log from disk, replay, drive a fresh engine
    // the same seventeen seconds.
    let (log, recovery) = OpLog::open(&scratch.0).expect("reopen log");
    assert!(!recovery.truncated, "a clean shutdown leaves a clean log");
    assert_eq!(recovery.recovered, 4);

    // The declared-state fold itself reconstructs bit-identically.
    let replayed = DesiredState::replay(log.events());
    assert_eq!(replayed.seq, 4);
    assert_eq!(
        replayed.tree_budgets.get(&0).map(|w| w.as_f64().to_bits()),
        Some(1180.0f64.to_bits()),
        "replayed budget must be bit-identical"
    );
    assert_eq!(replayed.group_priorities.get(&(0, 2)), Some(&Some(Priority::HIGH)));
    assert_eq!(replayed.server_enabled.get(&sd), Some(&false));
    assert_eq!(replayed.allocator, Some(AllocatorKind::Waterfilling));

    let mut engine = Engine::new(rig());
    let mut desired = DesiredState::default();
    for _ in 0..17 {
        drive_second_reconciled(&mut engine, &log, &mut desired, None);
    }
    assert_eq!(
        fingerprint(&engine),
        continuous_fingerprint,
        "the restarted plane must match the continuous one bit for bit"
    );
}

#[test]
fn chaos_divergence_converges_within_three_round_boundaries_without_violations() {
    let mut log = OpLog::in_memory();
    let mut engine = Engine::new(priority_rig(RigConfig::table2()));
    let ids = engine.farm().ids().to_vec();
    let (sc, sd) = (ids[2], ids[3]);
    declare_session(&mut log, sd);
    // Keep SD in service for this test: the declared state says powered.
    log.append(2, None, Op::SetServerEnabled { server: sd, enabled: true })
        .expect("append undrain");

    let mut desired = DesiredState::default();
    let mut tracker = InvariantTracker::new(InvariantConfig::default());

    // Converge onto the declared session first (rounds at t=0 and t=8).
    for _ in 0..9 {
        drive_second_reconciled(&mut engine, &log, &mut desired, Some(&mut tracker));
    }
    let declared = fingerprint(&engine);
    assert_eq!(declared.root_budget_bits, vec![1180.0f64.to_bits()]);
    assert_eq!(declared.allocator, AllocatorKind::Waterfilling);

    // Chaos: diverge every reconciled surface behind the loop's back.
    engine.stage_root_budgets(vec![Watts::new(900.0)]); // lands inside the t=16 round
    engine.set_server_powered(sd, false); // someone pulled the plug
    engine.plane_mut().set_priority(sc, Priority::LOW); // band overridden
    engine.plane_mut().set_allocator(AllocatorKind::FairShare);

    // Three round boundaries: t=16, t=24, t=32.
    for boundary in 0..3 {
        for _ in 0..8 {
            drive_second_reconciled(&mut engine, &log, &mut desired, Some(&mut tracker));
        }
        if fingerprint(&engine) == declared {
            break;
        }
        assert!(
            boundary < 2,
            "still diverged after three boundaries: {:?} vs {declared:?}",
            fingerprint(&engine)
        );
    }
    assert_eq!(
        fingerprint(&engine),
        declared,
        "the reconciler must converge the chaos away"
    );
    assert!(
        tracker.is_clean(),
        "convergence must not trip invariants: {:?}",
        tracker.violations()
    );

    // And the loop is quiescent afterwards: nothing left to apply.
    let settled = plan(&desired, engine.plane(), engine.farm());
    assert!(
        settled.is_empty(),
        "a converged plane yields an empty plan: {settled:?}"
    );
}
