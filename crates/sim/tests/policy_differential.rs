//! Allocator-seam differentials: threading the budget-down pass through
//! the [`Allocator`] trait must not move a single bit. An independent
//! oracle reimplements the pre-seam budget-down walk from public API only
//! (from-scratch [`ControlTree::gather`] + [`split_budget`] at every
//! node), and both rigs run under seeded chaos so the comparison covers
//! hundreds of distinct demand/priority/fault states, not one synthetic
//! snapshot.

use capmaestro_core::budget::split_budget;
use capmaestro_core::metrics::PriorityMetrics;
use capmaestro_core::policy::{CappingPolicy, PolicyKind, PriorityVisibility};
use capmaestro_core::tree::ControlTree;
use capmaestro_core::WaterfallAllocator;
use capmaestro_sim::engine::{Engine, Event};
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
use capmaestro_sim::scenarios::{priority_rig, stranded_rig, Rig, RigConfig};
use capmaestro_topology::{FeedId, ServerId};
use capmaestro_units::Watts;

/// The pre-seam §4.3 budget-down pass, reimplemented verbatim from public
/// API: clamp the root budget at the root limit, then walk parents before
/// children, selecting each node's child summaries under the policy's
/// visibility and splitting with the paper's waterfall
/// ([`split_budget`]). Returns per-node budgets and the unallocated
/// remainder.
fn oracle_allocate(
    tree: &ControlTree,
    root_budget: Watts,
    policy: &dyn CappingPolicy,
) -> (Vec<Watts>, Watts) {
    let metrics = tree.gather(policy);
    let arena = tree.arena();
    let spec = tree.spec();
    let n = spec.len();
    let root = spec.root();
    let mut node_budgets = vec![Watts::ZERO; n];
    let root_limit = arena.limit(root).unwrap_or(root_budget);
    node_budgets[root] = root_budget.min(root_limit);
    let mut unallocated = root_budget - node_budgets[root];
    for idx in 0..n {
        let children = arena.children_of(idx);
        if children.is_empty() {
            continue;
        }
        let visibility = policy.visibility(arena.context(idx));
        let child_metrics: Vec<PriorityMetrics> = children
            .iter()
            .map(|&c| match visibility {
                PriorityVisibility::Full => metrics[c as usize].clone(),
                PriorityVisibility::Blind => metrics[c as usize].collapsed(),
            })
            .collect();
        let split = split_budget(node_budgets[idx], &child_metrics);
        for (&c, b) in children.iter().zip(&split.budgets) {
            node_budgets[c as usize] = *b;
        }
        if idx == root {
            unallocated += split.unallocated;
        }
    }
    (node_budgets, unallocated)
}

/// Compare the seam's waterfall against the oracle on every tree of a
/// live plane, bit for bit.
fn assert_seam_matches_oracle(engine: &Engine, policy: &dyn CappingPolicy, at: &str) {
    let plane = engine.plane();
    let budgets = plane.root_budgets_now();
    for (t, (tree, &budget)) in plane.trees().iter().zip(&budgets).enumerate() {
        let seam = tree.allocate_with(budget, policy, &WaterfallAllocator);
        let (oracle_nodes, oracle_unallocated) = oracle_allocate(tree, budget, policy);
        for (idx, want) in oracle_nodes.iter().enumerate() {
            let got = seam.node_budget(idx);
            assert_eq!(
                got.as_f64().to_bits(),
                want.as_f64().to_bits(),
                "{at}: tree {t} node {idx} diverged: seam {got}, oracle {want}"
            );
        }
        assert_eq!(
            seam.unallocated().as_f64().to_bits(),
            oracle_unallocated.as_f64().to_bits(),
            "{at}: tree {t} unallocated diverged"
        );
    }
}

/// A seeded chaos plan sized for a four-server rig run.
fn chaos_for(rig: &Rig, seconds: u64, seed: u64) -> ChaosPlan {
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
    ChaosPlan::generate(
        &ChaosConfig {
            seconds,
            episodes: 8,
            min_duration_s: 8,
            max_duration_s: 24,
            settle_s: 16,
            quiesce_s: 24,
            ..ChaosConfig::default()
        },
        &servers,
        &feeds,
        seed,
    )
}

/// Fig. 2 priority rig under seeded chaos plus scripted demand and
/// priority changes: after every simulated second (hundreds of distinct
/// tree states, including mid-fault and mid-recovery ones), the seam's
/// [`WaterfallAllocator`] must reproduce the pre-refactor budget-down
/// walk bit for bit. The engine's own incremental rounds keep running in
/// between, so cached [`TreeRoundState`] reuse is exercised too.
#[test]
fn waterfall_seam_is_bit_identical_under_fig2_chaos() {
    let seconds = 160;
    let rig = priority_rig(RigConfig::table2());
    let chaos = chaos_for(&rig, seconds, 0xA110C);
    let mut engine = Engine::new(rig);
    engine.schedule_chaos(&chaos);
    let sa = engine.topology().server_by_name("SA").expect("SA");
    let sb = engine.topology().server_by_name("SB").expect("SB");
    engine.schedule(60, Event::SetDemand(sa, Watts::new(210.0)));
    engine.schedule(
        100,
        Event::SetPriority(sb, capmaestro_topology::Priority::HIGH),
    );

    let policy = PolicyKind::GlobalPriority.policy();
    for s in 0..seconds {
        engine.step();
        assert_seam_matches_oracle(&engine, policy.as_ref(), &format!("t={s}"));
    }
}

/// The dual-feed stranded-power rig (two trees, uneven supply splits,
/// SPO on) under chaos, across all three capping policies — the
/// visibility-collapse paths (Blind vs Full) must also survive the seam
/// unchanged.
#[test]
fn waterfall_seam_is_bit_identical_on_the_stranded_rig() {
    let seconds = 96;
    let rig = stranded_rig(RigConfig::table3());
    let chaos = chaos_for(&rig, seconds, 0x57A4D);
    let mut engine = Engine::new(rig);
    engine.schedule_chaos(&chaos);

    let policies: Vec<Box<dyn CappingPolicy + Send + Sync>> = vec![
        PolicyKind::GlobalPriority.policy(),
        PolicyKind::LocalPriority.policy(),
        PolicyKind::NoPriority.policy(),
    ];
    for s in 0..seconds {
        engine.step();
        for policy in &policies {
            assert_seam_matches_oracle(
                &engine,
                policy.as_ref(),
                &format!("t={s} policy={}", policy.name()),
            );
        }
    }
}
