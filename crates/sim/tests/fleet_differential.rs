//! Fleet-scale stepping differentials: the event-driven, sharded hot
//! path (struct-of-arrays slab, dirty bitmaps, incremental sense
//! buffers) must be **bitwise identical** to the sequential full-rebuild
//! sweep — on the paper's small Fig. 2 priority rig under seeded chaos,
//! and on a ≥10k-server data center where most of the fleet has
//! quiesced before mid-run faults dirty previously-quiescent servers.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::{Engine, Event, Trace};
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
use capmaestro_sim::scenarios::{
    datacenter_rig, priority_rig, DataCenterRigConfig, Rig, RigConfig,
};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_topology::{FeedId, ServerId, SupplyIndex};
use capmaestro_units::Watts;

/// The reference engine: sequential, full-rebuild stepping (every server
/// stepped and re-sensed every second, no dirty-bit skipping).
fn full_rebuild(rig: Rig) -> Engine {
    let mut engine = Engine::new(rig);
    engine.set_event_driven(false).set_parallelism(1);
    engine
}

/// The fleet engine under test: event-driven stepping sharded across
/// `threads` workers.
fn event_driven(rig: Rig, threads: usize) -> Engine {
    let mut engine = Engine::new(rig);
    engine.set_event_driven(true).set_parallelism(threads);
    engine
}

fn assert_series_identical<K: Hash + Eq + Debug>(
    what: &str,
    seq: &HashMap<K, Vec<f64>>,
    fleet: &HashMap<K, Vec<f64>>,
) {
    assert_eq!(seq.len(), fleet.len(), "{what}: different key sets");
    for (key, series_seq) in seq {
        let series_fleet = fleet
            .get(key)
            .unwrap_or_else(|| panic!("{what}: fleet trace missing {key:?}"));
        assert_eq!(series_seq.len(), series_fleet.len(), "{what} {key:?}: length");
        for (i, (a, b)) in series_seq.iter().zip(series_fleet).enumerate() {
            // Bit comparison (not ==) so NaN placeholders compare equal
            // and -0.0 vs 0.0 would be caught.
            assert_eq!(a.to_bits(), b.to_bits(), "{what} {key:?}[{i}]: {a} vs {b}");
        }
    }
}

fn assert_traces_identical(seq: &Trace, fleet: &Trace) {
    assert_series_identical("server_power", &seq.server_power, &fleet.server_power);
    assert_series_identical("supply_power", &seq.supply_power, &fleet.supply_power);
    assert_series_identical("throttle", &seq.throttle, &fleet.throttle);
    assert_series_identical("dc_cap", &seq.dc_cap, &fleet.dc_cap);
    assert_series_identical("node_load", &seq.node_load, &fleet.node_load);
    assert_eq!(seq.node_names, fleet.node_names);
    assert_eq!(seq.trips, fleet.trips);
    assert_eq!(seq.lost_servers, fleet.lost_servers);
    assert_eq!(seq.stranded, fleet.stranded);
    assert_eq!(seq.seconds, fleet.seconds);
}

fn assert_final_rounds_identical(seq: &mut Engine, fleet: &mut Engine) {
    let report_seq = seq.run_control_round();
    let report_fleet = fleet.run_control_round();
    assert_eq!(report_seq.dc_caps.len(), report_fleet.dc_caps.len());
    for (id, cap) in &report_seq.dc_caps {
        let other = report_fleet.dc_caps[id];
        assert_eq!(
            cap.as_f64().to_bits(),
            other.as_f64().to_bits(),
            "dc cap for {id} diverged: {cap} vs {other}"
        );
    }
    assert_eq!(
        report_seq.stranded_reclaimed.as_f64().to_bits(),
        report_fleet.stranded_reclaimed.as_f64().to_bits()
    );
}

/// Fig. 2 priority rig under a seeded chaos plan (telemetry faults and
/// feed flaps) plus scripted demand/priority changes landing *after* the
/// node managers have converged — the events that dirty a quiescent
/// server. Event-driven + 4-way sharding must match the sequential
/// full-rebuild run bit for bit.
#[test]
fn fig2_rig_under_seeded_chaos_is_bitwise_identical() {
    let seconds = 160;
    let chaos = {
        let rig = priority_rig(RigConfig::table2());
        let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
        let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
        ChaosPlan::generate(
            &ChaosConfig {
                seconds,
                episodes: 8,
                min_duration_s: 8,
                max_duration_s: 24,
                settle_s: 16,
                quiesce_s: 24,
                ..ChaosConfig::default()
            },
            &servers,
            &feeds,
            0xF1EE7,
        )
    };

    let mut seq = full_rebuild(priority_rig(RigConfig::table2()));
    let mut fleet = event_driven(priority_rig(RigConfig::table2()), 4);
    for engine in [&mut seq, &mut fleet] {
        engine.schedule_chaos(&chaos);
        // By second 100 the four servers have long quiesced; these dirty
        // one directly (demand) and one indirectly (priority → new cap).
        let sa = engine.topology().server_by_name("SA").expect("SA");
        let sb = engine.topology().server_by_name("SB").expect("SB");
        engine.schedule(100, Event::SetDemand(sa, Watts::new(210.0)));
        engine.schedule(
            108,
            Event::SetPriority(sb, capmaestro_topology::Priority::HIGH),
        );
    }
    let trace_seq = seq.run(seconds);
    let trace_fleet = fleet.run(seconds);
    assert_traces_identical(&trace_seq, &trace_fleet);
    assert_final_rounds_identical(&mut seq, &mut fleet);
}

/// A ≥10k-server data center (250 racks × 42). Most of the fleet
/// quiesces within the node managers' ~6 s settling; mid-run events then
/// fail a supply on one previously-quiescent server and re-target
/// another's demand, on top of a seeded telemetry-chaos plan. The
/// event-driven sharded run must stay bitwise identical throughout.
#[test]
fn ten_thousand_server_rig_is_bitwise_identical() {
    let config = DataCenterRigConfig {
        params: DataCenterParams {
            racks: 250,
            transformers_per_feed: 2,
            rpps_per_transformer: 5,
            cdus_per_rpp: 25,
            servers_per_rack: 42,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * 250.0 / 162.0) * 0.95,
        utilization: 0.9,
        policy: PolicyKind::GlobalPriority,
        spo: false,
        ..DataCenterRigConfig::default()
    };
    let seconds = 26;
    let rig = datacenter_rig(&config);
    assert!(rig.farm.len() >= 10_000, "rig has {} servers", rig.farm.len());
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let chaos = ChaosPlan::generate(
        &ChaosConfig {
            seconds,
            episodes: 3,
            min_duration_s: 4,
            max_duration_s: 8,
            settle_s: 4,
            quiesce_s: 4,
            flap_fraction: 0.0,
            ..ChaosConfig::default()
        },
        &servers,
        &[],
        0xD47A_F1EE7,
    );
    let dirty_supply = servers[servers.len() / 3];
    let dirty_demand = servers[2 * servers.len() / 3];

    let mut seq = full_rebuild(rig);
    let mut fleet = event_driven(datacenter_rig(&config), 5);
    for engine in [&mut seq, &mut fleet] {
        engine.schedule_chaos(&chaos);
        // t = 12: converged fleet; these two servers went quiescent
        // seconds ago and must be re-activated by the dirty tracking.
        engine.schedule(12, Event::FailSupply(dirty_supply, SupplyIndex::SECOND));
        engine.schedule(14, Event::SetDemand(dirty_demand, Watts::new(150.0)));
    }
    let trace_seq = seq.run(seconds);
    let trace_fleet = fleet.run(seconds);
    assert_traces_identical(&trace_seq, &trace_fleet);
    assert_final_rounds_identical(&mut seq, &mut fleet);
}
