//! Differential test for the trace exporter: an engine whose control
//! plane records into a live `TraceRecorder` must make bit-identical
//! decisions to one on the default `NullRecorder` — tracing walks trees
//! and buffers events, but must never touch a control input. Extends
//! the PR 4 observability differential to the timeline seam, plus a
//! ring-overflow case proving drop-oldest keeps the emitted document
//! balanced and the dropped counter honest.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use capmaestro_core::obs::trace::{self, EventKind, TraceRecorder};
use capmaestro_core::obs::RoundPhase;
use capmaestro_sim::engine::{Engine, Trace};
use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_topology::{FeedId, ServerId};

const SECONDS: u64 = 200;

fn assert_series_identical<K: Hash + Eq + Debug>(
    what: &str,
    traced: &HashMap<K, Vec<f64>>,
    plain: &HashMap<K, Vec<f64>>,
) {
    assert_eq!(traced.len(), plain.len(), "{what}: different key sets");
    for (key, series_a) in traced {
        let series_b = plain
            .get(key)
            .unwrap_or_else(|| panic!("{what}: plain trace missing {key:?}"));
        assert_eq!(series_a.len(), series_b.len(), "{what} {key:?}: length");
        for (i, (a, b)) in series_a.iter().zip(series_b).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what} {key:?}[{i}]: {a} vs {b}");
        }
    }
}

fn assert_traces_identical(traced: &Trace, plain: &Trace) {
    assert_series_identical("server_power", &traced.server_power, &plain.server_power);
    assert_series_identical("supply_power", &traced.supply_power, &plain.supply_power);
    assert_series_identical("throttle", &traced.throttle, &plain.throttle);
    assert_series_identical("dc_cap", &traced.dc_cap, &plain.dc_cap);
    assert_series_identical("node_load", &traced.node_load, &plain.node_load);
    assert_eq!(traced.node_names, plain.node_names);
    assert_eq!(traced.trips, plain.trips);
    assert_eq!(traced.lost_servers, plain.lost_servers);
    assert_eq!(traced.stranded, plain.stranded);
    assert_eq!(traced.seconds, plain.seconds);
}

fn chaos_plan(rig: &capmaestro_sim::scenarios::Rig) -> ChaosPlan {
    let config = ChaosConfig {
        seconds: SECONDS,
        episodes: 4,
        min_duration_s: 8,
        max_duration_s: 24,
        settle_s: 16,
        quiesce_s: 32,
        ..ChaosConfig::default()
    };
    let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
    let feeds: Vec<FeedId> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
    ChaosPlan::generate(&config, &servers, &feeds, 42)
}

/// 200 s of the Fig. 2 rig (SPO on) under a seeded telemetry-fault
/// schedule, run twice: once with a `TraceRecorder` capturing the full
/// timeline, once with the default `NullRecorder`. Plane fingerprints
/// must match bit for bit, and the captured trace must validate with
/// every phase present.
#[test]
fn traced_chaos_run_is_bit_identical_to_untraced() {
    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let plan = chaos_plan(&rig);

    let recorder = Arc::new(TraceRecorder::new());
    let mut traced = Engine::new(rig);
    traced.plane_mut().set_recorder(recorder.clone());
    traced.schedule_chaos(&plan);
    let trace_traced = traced.run(SECONDS);

    let mut plain = Engine::new(priority_rig(RigConfig::table2().with_spo(true)));
    plain.schedule_chaos(&plan);
    let trace_plain = plain.run(SECONDS);

    assert_traces_identical(&trace_traced, &trace_plain);

    // The traced run actually produced a valid, complete timeline.
    let parsed = trace::parse(&recorder.render(None)).expect("trace validates");
    for phase in RoundPhase::ALL {
        assert!(
            parsed.slice_count(phase.label()) > 0,
            "phase {} has no slices",
            phase.label()
        );
    }
    assert!(
        parsed.counter_tracks().len() >= 4,
        "expected >= 4 counter tracks: {:?}",
        parsed.counter_tracks()
    );
    assert_eq!(parsed.dropped, 0, "the default ring must hold a 200 s run");
    // The fleet-health tracks are sampled once per control round, so an
    // operator can always see them — even when their value is zero.
    let stale_samples = parsed
        .events
        .iter()
        .filter(|e| {
            e.name == trace::STALE_SERVERS && matches!(e.kind, EventKind::Counter { .. })
        })
        .count();
    assert_eq!(
        stale_samples,
        (SECONDS / 8) as usize,
        "stale_servers must be sampled every round"
    );
}

/// Force ring overflow with a tiny capacity: the rendered document must
/// still validate (drop-oldest can orphan `E` events; the renderer must
/// skip them so B/E nesting stays balanced), and the `droppedEvents`
/// tally must account for every pushed event that is not in the output.
#[test]
fn ring_overflow_keeps_nesting_balanced_and_the_drop_counter_honest() {
    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let recorder = Arc::new(TraceRecorder::with_capacity(64));
    let mut engine = Engine::new(rig);
    engine.plane_mut().set_recorder(recorder.clone());
    engine.run(SECONDS);

    assert!(
        recorder.dropped_events() > 0,
        "a 64-event ring must overflow over {SECONDS} s"
    );
    let text = recorder.render(None);
    let parsed = trace::parse(&text).expect("overflowed trace still validates");
    assert!(
        parsed.events.len() <= 64,
        "render cannot exceed the ring capacity"
    );
    assert_eq!(
        parsed.dropped + parsed.events.len() as u64,
        recorder.pushed_events(),
        "declared drops + kept events must equal everything pushed"
    );
    // Rendering is non-destructive and stable.
    assert_eq!(text, recorder.render(None));
}
