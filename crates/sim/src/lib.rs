//! Data-center simulation for CapMaestro.
//!
//! Three layers:
//!
//! - [`engine`] — a 1 Hz time-stepped simulation binding the server farm,
//!   the control plane, breaker thermal models, and scripted events
//!   (feed failures, demand changes). Produces the time series behind the
//!   paper's Figs. 5, 6b, and 7c.
//! - [`scenarios`] — ready-to-run builds of the paper's experimental rigs
//!   (the §6.2 four-server feed, the §6.3 stranded-power rig, the §6.4
//!   Table 4 data center).
//! - [`capacity`] — the §6.4 Monte-Carlo capacity planner: how many
//!   servers fit under each policy in typical and worst-case conditions,
//!   judged by the <1 % average cap-ratio criterion.
//!
//! [`faults`] injects telemetry faults on the sense path (dropped, stuck,
//! noisy, spiking readings; flapping feeds) for robustness scenarios and
//! seeded chaos soaks. [`audit`] implements an active wiring audit (a §7
//! open challenge) plus the chaos harness's invariant tracker, and
//! [`report`] holds the table/series formatting shared by the experiment
//! binaries in `capmaestro-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod capacity;
pub mod engine;
pub mod faults;
pub mod jobs;
pub mod procchaos;
pub mod report;
pub mod scenarios;

pub use audit::{
    audit_wiring, audit_wiring_tracked, AuditReport, InvariantConfig, InvariantKind,
    InvariantTracker,
    Violation, WiringMismatch,
};
pub use capacity::{CapacityConfig, CapacityPlanner, Condition, TrialStats};
pub use engine::{Engine, EngineConfig, Event, Trace};
pub use faults::{
    ChaosAction, ChaosConfig, ChaosPlan, Episode, FaultKind, FaultLayer, FlapSpec,
};
pub use jobs::{Job, JobSchedule};
pub use procchaos::{demand_at, partition_plan, PartitionPlan, ProcFault};
pub use scenarios::{Rig, RigConfig};
