//! Active wiring audit: validating a declared power topology at runtime.
//!
//! The paper's §7 calls out that "wiring mistakes are possible when we
//! connect servers to the power infrastructure … there is a need to
//! develop a cost-effective approach to finding such errors (other than
//! manual cable tracing)". This module implements such an approach over
//! the simulation substrate: a **power perturbation probe**.
//!
//! For each server, the auditor briefly throttles it (a deep DC cap — the
//! knob CapMaestro already owns), reads every metered distribution point
//! before and after, and checks that exactly the declared ancestors of the
//! server's outlets responded. A supply plugged into the wrong branch
//! shows up as a response on an undeclared meter and silence on a declared
//! one.
//!
//! The module's second half is the **invariant tracker** behind the chaos
//! soak harness: an [`InvariantTracker`] observes a live
//! [`Engine`](crate::engine::Engine) once per simulated second and checks
//! the safety properties that must survive telemetry faults — per-tree
//! budgets respected by the *physical* load, DC caps inside the
//! controllable range, priority ordering preserved, and no breaker trips,
//! ever.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use capmaestro_core::obs::{names, null_recorder, Recorder};
use capmaestro_core::plane::Farm;
use capmaestro_topology::{FeedId, NodeId, Priority, ServerId, Topology};
use capmaestro_units::Watts;

use crate::engine::Engine;

/// Per-(feed, node) load for a farm wired according to `topology`: outlet
/// loads pushed up each ancestor path. This is what the infrastructure's
/// meters would read.
pub fn node_loads(topology: &Topology, farm: &Farm) -> HashMap<(FeedId, NodeId), Watts> {
    let mut loads: HashMap<(FeedId, NodeId), Watts> = HashMap::new();
    for graph in topology.feeds() {
        for (outlet_node, outlet) in graph.outlets() {
            let Some(server) = farm.get(outlet.server) else {
                continue;
            };
            let snap = server.sense();
            let load = snap
                .supply_ac
                .get(outlet.supply.index())
                .copied()
                .unwrap_or(Watts::ZERO);
            for node in graph.path_to_root(outlet_node) {
                *loads.entry((graph.feed(), node)).or_insert(Watts::ZERO) += load;
            }
        }
    }
    loads
}

/// A detected wiring discrepancy for one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiringMismatch {
    /// The server whose probe disagreed with the declared topology.
    pub server: ServerId,
    /// Metered points that the declared topology says should have
    /// responded but did not (device names).
    pub missing: Vec<String>,
    /// Metered points that responded although the declared topology says
    /// they should not have (device names).
    pub unexpected: Vec<String>,
}

/// Outcome of a wiring audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Servers whose observed response set matched the declaration.
    pub verified: Vec<ServerId>,
    /// Servers with discrepancies.
    pub mismatches: Vec<WiringMismatch>,
}

impl AuditReport {
    /// Whether the declared topology survived the audit unchallenged.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Load change below this is measurement noise, not a response.
const RESPONSE_THRESHOLD: Watts = Watts::new(5.0);

/// Audits `declared` against the physical truth.
///
/// `actual` describes how the data center is *really* cabled (in a live
/// deployment this is the physical world itself; here it is the topology
/// the farm's meters answer for). The probe perturbs one server at a time:
/// it forces the server's demand to idle, diffs every metered node, and
/// compares the responding set against the declared ancestry. Servers are
/// restored to their previous demand afterwards.
///
/// Only internal nodes carrying a limit (i.e. metered distribution points)
/// participate in the comparison; outlet leaves are excluded since a leaf
/// meter would make the audit trivial.
pub fn audit_wiring(declared: &Topology, actual: &Topology, farm: &mut Farm) -> AuditReport {
    let mut tracker = InvariantTracker::new(InvariantConfig::default());
    audit_wiring_tracked(declared, actual, farm, &mut tracker)
}

/// Like [`audit_wiring`], but records probe-integrity problems into
/// `tracker` instead of trusting the caller's setup. A probe whose
/// preconditions do not hold — a declared attachment on a feed the
/// declaration itself lacks, or a declared server absent from the farm —
/// is **skipped** and logged as an [`InvariantKind::ProbeIntegrity`]
/// violation rather than panicking the audit: a live auditor must survive
/// a declaration that disagrees with the fleet inventory, since such
/// disagreement is precisely the class of error it exists to find.
///
/// The probe sweep covers the union of the farm's servers and the
/// declaration's attached servers, so a server that is declared but was
/// never racked surfaces as a violation instead of silently passing.
pub fn audit_wiring_tracked(
    declared: &Topology,
    actual: &Topology,
    farm: &mut Farm,
    tracker: &mut InvariantTracker,
) -> AuditReport {
    let mut report = AuditReport::default();
    let mut servers: Vec<ServerId> = farm.iter().map(|(id, _)| id).collect();
    for graph in declared.feeds() {
        servers.extend(graph.outlets().map(|(_, o)| o.server));
    }
    servers.sort_unstable();
    servers.dedup();

    for server in servers {
        // Expected responders: metered ancestors per the declaration.
        let mut expected: Vec<(FeedId, String)> = Vec::new();
        let mut skip = false;
        for (feed, node, _) in declared.supply_attachments(server) {
            let Some(graph) = declared.feed(feed) else {
                tracker.record(
                    0,
                    InvariantKind::ProbeIntegrity,
                    format!(
                        "declared attachment of {server:?} names feed \
                         {feed:?} absent from the declaration; probe skipped"
                    ),
                );
                skip = true;
                continue;
            };
            for ancestor in graph.path_to_root(node) {
                let device = graph.device(ancestor);
                if device.effective_limit().is_some() {
                    expected.push((feed, device.name().to_string()));
                }
            }
        }
        if skip {
            continue;
        }
        expected.sort();
        expected.dedup();

        // Probe: drop the server to idle, observe the metered deltas on
        // the *actual* wiring.
        if farm.get(server).is_none() {
            tracker.record(
                0,
                InvariantKind::ProbeIntegrity,
                format!(
                    "{server:?} is declared but absent from the farm; \
                     probe skipped"
                ),
            );
            continue;
        }
        let baseline = node_loads(actual, farm);
        let Some((prev_demand, was_powered)) = farm.get_mut(server).map(|mut srv| {
            let prev = srv.offered_demand();
            let powered = srv.is_powered();
            let idle = srv.config().model().idle();
            srv.set_offered_demand(idle);
            srv.settle();
            (prev, powered)
        }) else {
            continue;
        };
        let probed = node_loads(actual, farm);
        if let Some(mut srv) = farm.get_mut(server) {
            srv.set_offered_demand(prev_demand);
            srv.set_powered(was_powered);
            srv.settle();
        }

        let mut observed: Vec<(FeedId, String)> = Vec::new();
        for (key @ (feed, node), base) in &baseline {
            let Some(graph) = actual.feed(*feed) else {
                tracker.record(
                    0,
                    InvariantKind::ProbeIntegrity,
                    format!(
                        "metered node on feed {feed:?} has no graph in the \
                         actual topology; meter ignored"
                    ),
                );
                continue;
            };
            if graph.device(*node).effective_limit().is_none() {
                continue;
            }
            let after = probed.get(key).copied().unwrap_or(Watts::ZERO);
            if (*base - after).as_f64().abs() >= RESPONSE_THRESHOLD.as_f64() {
                observed.push((*feed, graph.device(*node).name().to_string()));
            }
        }
        observed.sort();
        observed.dedup();

        let missing: Vec<String> = expected
            .iter()
            .filter(|e| !observed.contains(e))
            .map(|(_, n)| n.clone())
            .collect();
        let unexpected: Vec<String> = observed
            .iter()
            .filter(|o| !expected.contains(o))
            .map(|(_, n)| n.clone())
            .collect();
        if missing.is_empty() && unexpected.is_empty() {
            report.verified.push(server);
        } else {
            report.mismatches.push(WiringMismatch {
                server,
                missing,
                unexpected,
            });
        }
    }
    report
}

/// Which safety property a [`Violation`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A control tree's physical load (exempt servers excluded) exceeded
    /// its root budget beyond tolerance for a sustained window.
    FeedBudget,
    /// A commanded DC cap left the server's controllable range.
    CapRange,
    /// A higher-priority server was throttled while a lower-priority peer
    /// in the same tree kept usable cap headroom, sustained.
    PriorityInversion,
    /// A circuit breaker tripped. Trips are never exempt — they are the
    /// outcome the whole system exists to prevent (paper §1).
    BreakerTrip,
    /// The rig failed to return to its pre-fault operating point after
    /// the fault schedule drained (recorded by the chaos harness via
    /// [`InvariantTracker::record`]).
    Recovery,
    /// A control tree's feed-level meter total (the physical load the
    /// infrastructure's own meters read) persistently exceeded the sum of
    /// the readings its servers reported — the signature of an
    /// under-reporting sensor gain, which server-side plausibility
    /// screening cannot catch (paper §7: a too-low reading is
    /// indistinguishable from a genuinely lighter load at the server).
    MeterMismatch,
    /// A wiring-audit probe's preconditions did not hold (a declared
    /// attachment on a missing feed, or a declared server absent from the
    /// farm). The probe is skipped and the discrepancy recorded — the
    /// audit must outlive a declaration that disagrees with the fleet
    /// inventory, since that disagreement is what it exists to find.
    ProbeIntegrity,
}

/// One observed breach of a safety invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulation second at which the breach was established.
    pub second: u64,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable specifics (tree, server, magnitudes).
    pub detail: String,
}

/// Tunables for [`InvariantTracker`]. The defaults match the capping
/// controller's convergence behaviour: budget breaches and priority
/// inversions must persist for `sustain_s` seconds (four 8 s control
/// rounds) before they count, so the integrator's legitimate transients
/// during fault onset/recovery are not misread as violations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantConfig {
    /// Fractional overshoot a tree's physical load may carry over its
    /// root budget (the controller's own settling tolerance).
    pub budget_tolerance: f64,
    /// Absolute slack added on top of the fractional tolerance, watts.
    pub budget_slack: Watts,
    /// Seconds a budget breach or priority inversion must persist
    /// continuously before it is recorded.
    pub sustain_s: u64,
    /// Throttle level above which a high-priority server counts as
    /// meaningfully capped.
    pub high_throttle_eps: f64,
    /// Watts of cap (and draw) above the floor a lower-priority server
    /// must hold for its headroom to count as reallocatable.
    pub low_headroom: Watts,
    /// Fractional gap between a tree's physical meter sum and its
    /// reported sum before the metering cross-check counts the second as
    /// under-reported. Deliberately coarser than `budget_tolerance`: the
    /// reported side lags the physical side by one settling step, and
    /// honest telemetry faults (frozen or noisy sensors) wobble the gap
    /// without the sustained, large, one-sided signature of a
    /// miscalibrated gain.
    pub meter_tolerance: f64,
    /// Absolute slack added on top of `meter_tolerance`, watts.
    pub meter_slack: Watts,
    /// Consecutive interposed seconds the under-reporting gap must
    /// persist before a [`InvariantKind::MeterMismatch`] is recorded.
    pub meter_sustain_s: u64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            budget_tolerance: 0.02,
            budget_slack: Watts::new(2.0),
            sustain_s: 32,
            high_throttle_eps: 0.08,
            low_headroom: Watts::new(8.0),
            meter_tolerance: 0.05,
            meter_slack: Watts::new(10.0),
            meter_sustain_s: 48,
        }
    }
}

/// Checks the chaos-soak safety invariants against a live engine, once
/// per simulated second (drive it from
/// [`Engine::run_observed`](crate::engine::Engine::run_observed)).
///
/// Servers currently covered by the engine's fault layer, marked stale by
/// the control plane, or physically unpowered are **exempt** from the
/// budget and priority checks — the degradation ladder deliberately
/// over-throttles or fail-safes them, and their telemetry is known to be
/// lies. Breaker trips are never exempt, and neither is the feed-level
/// metering cross-check ([`InvariantKind::MeterMismatch`]): it compares
/// the physical per-tree load against what the servers *claimed*, so the
/// lie itself is the detection target.
#[derive(Debug)]
pub struct InvariantTracker {
    config: InvariantConfig,
    violations: Vec<Violation>,
    /// Consecutive seconds each tree (by index) has run over budget.
    over_budget_s: HashMap<usize, u64>,
    /// Consecutive seconds each tree (by index) has shown an inversion.
    inversion_s: HashMap<usize, u64>,
    /// Consecutive interposed seconds each tree's physical meter sum has
    /// exceeded its reported sum beyond tolerance.
    meter_gap_s: HashMap<usize, u64>,
    /// Servers whose cap was out of range last second (dedup).
    out_of_range: HashSet<ServerId>,
    /// Trip entries of the engine trace already reported.
    trips_seen: usize,
    seconds_observed: u64,
    /// Sink for the `capmaestro_invariant_violations_total` counter.
    recorder: Arc<dyn Recorder>,
}

impl InvariantTracker {
    /// A tracker with the given thresholds.
    pub fn new(config: InvariantConfig) -> Self {
        InvariantTracker {
            config,
            violations: Vec::new(),
            over_budget_s: HashMap::new(),
            inversion_s: HashMap::new(),
            meter_gap_s: HashMap::new(),
            out_of_range: HashSet::new(),
            trips_seen: 0,
            seconds_observed: 0,
            recorder: null_recorder(),
        }
    }

    /// Returns the tracker with its metrics recorder replaced; every
    /// recorded violation then also bumps
    /// `capmaestro_invariant_violations_total`.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Replaces the metrics recorder in place.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The thresholds in force.
    pub fn config(&self) -> InvariantConfig {
        self.config
    }

    /// Every breach recorded so far, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been breached.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Seconds of simulation observed.
    pub fn seconds_observed(&self) -> u64 {
        self.seconds_observed
    }

    /// Records an externally detected breach (the chaos harness uses this
    /// for the end-of-run recovery check, which needs cross-run context
    /// the per-second observer does not have).
    pub fn record(&mut self, second: u64, kind: InvariantKind, detail: String) {
        self.recorder
            .counter_add(names::INVARIANT_VIOLATIONS_TOTAL, 1);
        self.violations.push(Violation {
            second,
            kind,
            detail,
        });
    }

    /// Observes one simulated second. Call after the engine has stepped
    /// (e.g. from the `run_observed` observer).
    pub fn observe(&mut self, engine: &Engine) {
        self.seconds_observed += 1;
        let violations_before = self.violations.len();
        let now = engine.now_s();
        let farm = engine.farm();
        let plane = engine.plane();

        // Exempt set: servers whose telemetry is known-corrupted, already
        // fail-safed, or physically dark.
        let mut exempt: HashSet<ServerId> =
            engine.fault_layer().affected_servers().into_iter().collect();
        exempt.extend(plane.stale_servers());
        for (id, server) in farm.iter() {
            if !server.is_powered() {
                exempt.insert(id);
            }
        }

        // Breaker trips: report every new trace entry, exempt or not.
        let trips = &engine.trace().trips;
        for (sec, feed, name) in &trips[self.trips_seen..] {
            self.violations.push(Violation {
                second: *sec,
                kind: InvariantKind::BreakerTrip,
                detail: format!("breaker {name} on feed {feed} tripped"),
            });
        }
        self.trips_seen = trips.len();

        // Cap range: clamped by construction, so any excursion is a
        // controller bug. Immediate, deduplicated per excursion.
        for (id, server) in farm.iter() {
            let Some(cap) = server.dc_cap() else {
                self.out_of_range.remove(&id);
                continue;
            };
            let model = server.config().model();
            let eff = server.bank().efficiency();
            let lo = (model.cap_min() * eff).as_f64() - 1e-6;
            let hi = (model.cap_max() * eff).as_f64() + 1e-6;
            if cap.as_f64() < lo || cap.as_f64() > hi {
                if self.out_of_range.insert(id) {
                    self.violations.push(Violation {
                        second: now,
                        kind: InvariantKind::CapRange,
                        detail: format!(
                            "{id}: dc cap {cap} outside [{lo:.1}, {hi:.1}] W"
                        ),
                    });
                }
            } else {
                self.out_of_range.remove(&id);
            }
        }

        // Per-tree checks.
        let budgets = plane.root_budgets_now();
        for (i, (tree, budget)) in
            plane.trees().iter().zip(budgets).enumerate()
        {
            let spec = tree.spec();

            // Feed budget: physical non-exempt load vs the root budget.
            // Exempt leaves are excluded from the sum rather than the
            // budget being shrunk: the allocator still reserves budget
            // for them, so this is the conservative direction.
            let mut load = Watts::ZERO;
            for (_, leaf) in spec.leaves() {
                if exempt.contains(&leaf.server) {
                    continue;
                }
                let Some(server) = farm.get(leaf.server) else {
                    continue;
                };
                let snap = server.sense();
                load += snap
                    .supply_ac
                    .get(leaf.supply.index())
                    .copied()
                    .unwrap_or(Watts::ZERO);
            }
            let limit = budget * (1.0 + self.config.budget_tolerance)
                + self.config.budget_slack;
            let ctr = self.over_budget_s.entry(i).or_insert(0);
            if load.as_f64() > limit.as_f64() {
                *ctr += 1;
                if *ctr == self.config.sustain_s {
                    self.violations.push(Violation {
                        second: now,
                        kind: InvariantKind::FeedBudget,
                        detail: format!(
                            "tree {i} ({} {:?}): load {load} > budget {budget} \
                             for {} s",
                            spec.feed(),
                            spec.phase(),
                            self.config.sustain_s
                        ),
                    });
                }
            } else {
                *ctr = 0;
            }

            // Priority inversion: a throttled higher-priority server
            // coexisting with a lower-priority peer that holds both cap
            // and draw above the floor (i.e. budget that could have been
            // shifted up), sustained.
            let mut entries: Vec<(ServerId, Priority, f64, bool)> = Vec::new();
            for (_, leaf) in spec.leaves() {
                if exempt.contains(&leaf.server)
                    || entries.iter().any(|e| e.0 == leaf.server)
                {
                    continue;
                }
                let Some(server) = farm.get(leaf.server) else {
                    continue;
                };
                let priority = plane
                    .effective_priority(leaf.server)
                    .unwrap_or(leaf.priority);
                let model = server.config().model();
                let eff = server.bank().efficiency();
                let floor_dc = model.cap_min() * eff;
                let cap_headroom = server
                    .dc_cap()
                    .map(|c| c > floor_dc + self.config.low_headroom)
                    .unwrap_or(true);
                let draw_headroom = server.sense().total_ac
                    > model.cap_min() + self.config.low_headroom;
                entries.push((
                    leaf.server,
                    priority,
                    server.throttle().as_f64(),
                    cap_headroom && draw_headroom,
                ));
            }
            let inverted = entries.iter().any(|&(_, ph, throttle, _)| {
                throttle > self.config.high_throttle_eps
                    && entries
                        .iter()
                        .any(|&(_, pl, _, headroom)| pl < ph && headroom)
            });
            let ctr = self.inversion_s.entry(i).or_insert(0);
            if inverted {
                *ctr += 1;
                if *ctr == self.config.sustain_s {
                    self.violations.push(Violation {
                        second: now,
                        kind: InvariantKind::PriorityInversion,
                        detail: format!(
                            "tree {i} ({} {:?}): higher-priority server \
                             throttled while lower-priority headroom remained \
                             for {} s",
                            spec.feed(),
                            spec.phase(),
                            self.config.sustain_s
                        ),
                    });
                }
            } else {
                *ctr = 0;
            }
        }

        // Feed-level metering cross-check: the physical per-tree load
        // (what the infrastructure's own meters read) reconciled against
        // the sum of the readings the control plane was actually handed.
        // Servers whose reading was not delivered this second are left
        // out of BOTH sums; fault-affected servers are deliberately NOT
        // exempt — a lied-about reading is exactly what this check
        // exists to detect. Only the under-reporting direction counts:
        // over-reporting already degrades safely through server-side
        // screening, while a persistent under-reporting gain silently
        // uncaps the feed. Quiet seconds (no interposition) are skipped
        // and reset the sustain counters.
        match engine.delivered_readings() {
            Some(delivered) => {
                let reported: HashMap<ServerId, &_> =
                    delivered.iter().map(|(id, snap)| (*id, snap)).collect();
                for (i, tree) in plane.trees().iter().enumerate() {
                    let spec = tree.spec();
                    let mut physical = Watts::ZERO;
                    let mut claimed = Watts::ZERO;
                    for (_, leaf) in spec.leaves() {
                        let Some(snap) = reported.get(&leaf.server) else {
                            continue;
                        };
                        let Some(server) = farm.get(leaf.server) else {
                            continue;
                        };
                        let idx = leaf.supply.index();
                        physical += server
                            .sense()
                            .supply_ac
                            .get(idx)
                            .copied()
                            .unwrap_or(Watts::ZERO);
                        claimed += snap
                            .supply_ac
                            .get(idx)
                            .copied()
                            .unwrap_or(Watts::ZERO);
                    }
                    let gap = physical.as_f64() - claimed.as_f64();
                    let limit = self.config.meter_tolerance * physical.as_f64()
                        + self.config.meter_slack.as_f64();
                    let ctr = self.meter_gap_s.entry(i).or_insert(0);
                    if gap > limit {
                        *ctr += 1;
                        if *ctr == self.config.meter_sustain_s {
                            self.violations.push(Violation {
                                second: now,
                                kind: InvariantKind::MeterMismatch,
                                detail: format!(
                                    "tree {i} ({} {:?}): feed meters read \
                                     {physical} but servers reported \
                                     {claimed} for {} s — under-reporting \
                                     telemetry",
                                    spec.feed(),
                                    spec.phase(),
                                    self.config.meter_sustain_s
                                ),
                            });
                        }
                    } else {
                        *ctr = 0;
                    }
                }
            }
            None => self.meter_gap_s.clear(),
        }

        // Several checks above push violations directly (trips, cap
        // range, budget, inversion, metering); one length delta covers
        // them all.
        let new_violations = self.violations.len() - violations_before;
        if new_violations > 0 {
            self.recorder.counter_add(
                names::INVARIANT_VIOLATIONS_TOTAL,
                new_violations as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{stranded_rig, RigConfig};
    use capmaestro_topology::builder::TopologyBuilder;
    use capmaestro_topology::presets::figure7a_rig;
    use capmaestro_topology::{DeviceKind, Phase, PowerDevice, Priority, SupplyIndex};

    #[test]
    fn correct_wiring_audits_clean() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;
        let report = audit_wiring(&declared, &declared, &mut farm);
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
        assert_eq!(report.verified.len(), 4);
    }

    /// Miswire SC's Y-side cord onto the left breaker (it belongs on the
    /// right): the audit must flag SC and only SC.
    #[test]
    fn detects_single_miswired_cord() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;

        // Build the *actual* (miswired) topology from scratch: identical
        // except SC's SECOND supply lands under "Y Left CB".
        let mut b = TopologyBuilder::new();
        let mut lefts = Vec::new();
        let mut rights = Vec::new();
        for feed in [FeedId::A, FeedId::B] {
            let label = if feed == FeedId::A { "X" } else { "Y" };
            let root = b.add_feed(
                feed,
                PowerDevice::new(format!("{label} Top CB"), DeviceKind::Virtual)
                    .with_extra_limit(Watts::new(1400.0)),
            );
            lefts.push(
                b.add_node(
                    feed,
                    root,
                    PowerDevice::new(format!("{label} Left CB"), DeviceKind::Virtual)
                        .with_extra_limit(Watts::new(750.0)),
                )
                .unwrap(),
            );
            rights.push(
                b.add_node(
                    feed,
                    root,
                    PowerDevice::new(format!("{label} Right CB"), DeviceKind::Virtual)
                        .with_extra_limit(Watts::new(750.0)),
                )
                .unwrap(),
            );
        }
        let sa = b.add_server("SA", Priority::HIGH);
        let sb = b.add_server("SB", Priority::LOW);
        let sc = b.add_server("SC", Priority::LOW);
        let sd = b.add_server("SD", Priority::LOW);
        b.attach(sa, SupplyIndex::FIRST, FeedId::A, lefts[0], Phase::L1)
            .unwrap();
        b.attach(sb, SupplyIndex::FIRST, FeedId::B, lefts[1], Phase::L1)
            .unwrap();
        b.attach(sc, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
            .unwrap();
        // THE MISTAKE: SC's Y cord on the LEFT breaker.
        b.attach(sc, SupplyIndex::SECOND, FeedId::B, lefts[1], Phase::L1)
            .unwrap();
        b.attach(sd, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
            .unwrap();
        b.attach(sd, SupplyIndex::SECOND, FeedId::B, rights[1], Phase::L1)
            .unwrap();
        let actual = b.build().unwrap();

        let report = audit_wiring(&declared, &actual, &mut farm);
        assert_eq!(report.mismatches.len(), 1, "{:?}", report.mismatches);
        let m = &report.mismatches[0];
        assert_eq!(m.server, sc);
        assert!(m.missing.contains(&"Y Right CB".to_string()), "{m:?}");
        assert!(m.unexpected.contains(&"Y Left CB".to_string()), "{m:?}");
        assert_eq!(report.verified.len(), 3);
    }

    /// Regression: a declaration that names a server the farm does not
    /// hold used to panic the audit (`expect("probed server exists")`).
    /// It must now skip that server's probe, record a
    /// [`InvariantKind::ProbeIntegrity`] violation, and still audit the
    /// servers that do exist.
    #[test]
    fn declared_but_missing_server_is_skipped_not_panicked() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let sd = rig.server("SD");
        // Rebuild the farm without SD: declared inventory ⊃ racked fleet.
        let mut farm = Farm::new();
        for (id, srv) in rig.farm.iter() {
            if id == sd {
                continue;
            }
            let mut server = capmaestro_server::Server::new(srv.config().clone());
            server.set_offered_demand(srv.offered_demand());
            server.settle();
            farm.insert(id, server);
        }

        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        let report = audit_wiring_tracked(&declared, &declared, &mut farm, &mut tracker);

        assert_eq!(report.verified.len(), 3, "{report:?}");
        assert!(!report.verified.contains(&sd));
        assert!(report.is_clean(), "{:?}", report.mismatches);
        let probe_violations: Vec<_> = tracker
            .violations()
            .iter()
            .filter(|v| v.kind == InvariantKind::ProbeIntegrity)
            .collect();
        assert_eq!(probe_violations.len(), 1, "{:?}", tracker.violations());
        assert!(
            probe_violations[0].detail.contains("absent from the farm"),
            "{}",
            probe_violations[0].detail
        );
    }

    #[test]
    fn probe_restores_server_state() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;
        let before: Vec<f64> = farm
            .iter()
            .map(|(_, s)| s.offered_demand().as_f64())
            .collect();
        let _ = audit_wiring(&declared, &declared, &mut farm);
        let after: Vec<f64> = farm
            .iter()
            .map(|(_, s)| s.offered_demand().as_f64())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn healthy_soak_is_clean() {
        let rig = crate::scenarios::priority_rig(RigConfig::table2());
        let mut engine = crate::engine::Engine::new(rig);
        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(400, |e| tracker.observe(e));
        assert!(
            tracker.is_clean(),
            "healthy rig must not violate invariants: {:?}",
            tracker.violations()
        );
        assert_eq!(tracker.seconds_observed(), 400);
    }

    /// Two 420 W servers on an uncapped 700 W-rated breaker: a 20 %
    /// sustained overload trips the UL 489 thermal model in ~106 s, and
    /// the tracker must report it (trips are never exempt).
    #[test]
    fn uncapped_overload_is_flagged_as_breaker_trip() {
        use capmaestro_core::plane::{ControlPlane, PlaneConfig};
        use capmaestro_core::tree::ControlTree;
        use capmaestro_server::{Server, ServerConfig};
        use capmaestro_topology::{CircuitBreaker, DeviceKind, Phase, PowerDevice, Priority};
        use capmaestro_units::Watts;

        let mut b = TopologyBuilder::new();
        let root = b.add_feed(
            FeedId::A,
            PowerDevice::new("Rack CB", DeviceKind::Cdu)
                .with_breaker(CircuitBreaker::with_default_derating(Watts::new(700.0))),
        );
        for name in ["S1", "S2"] {
            b.single_corded_server(name, Priority::LOW, FeedId::A, root, Phase::L1)
                .unwrap();
        }
        let topology = b.build().unwrap();
        let trees: Vec<ControlTree> = topology
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, _) in topology.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        let plane = ControlPlane::new(
            trees,
            vec![Watts::new(560.0)],
            PlaneConfig::default(),
        );
        let rig = crate::scenarios::Rig {
            topology,
            farm,
            plane,
        };
        let mut engine = crate::engine::Engine::with_config(
            rig,
            crate::engine::EngineConfig {
                control_enabled: false,
                ..Default::default()
            },
        );
        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(200, |e| tracker.observe(e));
        assert!(
            tracker
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::BreakerTrip),
            "840 W of demand on a 700 W-rated breaker without capping must trip: {:?}",
            tracker.violations()
        );
    }

    /// Swapping priorities mid-run creates a genuine transient inversion:
    /// the promoted server is still physically throttled for the ~3 s the
    /// demoted one takes to shed its old cap headroom. A tracker with a
    /// short sustain window must see it; the default (32 s) window must
    /// ride through it as controller convergence.
    #[test]
    fn priority_swap_transient_is_sustain_gated() {
        use capmaestro_topology::Priority;

        let rig = crate::scenarios::priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let sb = rig.server("SB");
        let mut engine = crate::engine::Engine::new(rig);
        engine.schedule(200, crate::engine::Event::SetPriority(sa, Priority::LOW));
        engine.schedule(200, crate::engine::Event::SetPriority(sb, Priority::HIGH));

        let mut strict = InvariantTracker::new(InvariantConfig {
            sustain_s: 2,
            ..Default::default()
        });
        let mut lenient = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(400, |e| {
            strict.observe(e);
            lenient.observe(e);
        });
        assert!(
            strict
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::PriorityInversion),
            "2 s sustain must catch the swap transient: {:?}",
            strict.violations()
        );
        assert!(
            lenient.is_clean(),
            "default sustain must absorb controller convergence: {:?}",
            lenient.violations()
        );
    }

    /// A persistent under-reporting gain (a sensor reading 25 % low) is
    /// exactly the fault server-side screening cannot see: the plane
    /// happily re-budgets the "freed" watts while the feed keeps carrying
    /// the real load. The feed-level metering cross-check must flag it.
    #[test]
    fn under_reporting_gain_is_flagged_by_meter_cross_check() {
        use crate::faults::FaultKind;

        let rig = crate::scenarios::priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let mut engine = crate::engine::Engine::new(rig);
        engine.schedule(
            40,
            crate::engine::Event::InjectFault(sa, FaultKind::Spike { factor: 0.75 }),
        );
        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(300, |e| tracker.observe(e));
        assert!(
            tracker
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::MeterMismatch),
            "a sustained 25 % under-reporting gain must trip the metering \
             cross-check: {:?}",
            tracker.violations()
        );
    }

    /// The cross-check is one-sided: an over-reporting gain (the kind
    /// chaos plans generate) reads as reported > physical and must not
    /// trip it — the degradation ladder already owns that direction.
    #[test]
    fn over_reporting_gain_does_not_trip_meter_cross_check() {
        use crate::faults::FaultKind;

        let rig = crate::scenarios::priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let mut engine = crate::engine::Engine::new(rig);
        engine.schedule(
            40,
            crate::engine::Event::InjectFault(sa, FaultKind::Spike { factor: 1.3 }),
        );
        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(300, |e| tracker.observe(e));
        assert!(
            !tracker
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::MeterMismatch),
            "over-reporting must not read as a meter mismatch: {:?}",
            tracker.violations()
        );
    }

    #[test]
    fn faulted_servers_are_exempt_from_inversion_checks() {
        use crate::faults::FaultKind;

        let rig = crate::scenarios::priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let mut engine = crate::engine::Engine::new(rig);
        // Freeze the high-priority server's sensor: the plane over-caps it
        // on frozen data, which would read as an inversion were it not
        // exempt while the fault layer owns it.
        engine.schedule(
            160,
            crate::engine::Event::InjectFault(sa, FaultKind::StuckSensor),
        );
        let mut tracker = InvariantTracker::new(InvariantConfig::default());
        engine.run_observed(600, |e| tracker.observe(e));
        assert!(
            !tracker
                .violations()
                .iter()
                .any(|v| v.kind == InvariantKind::PriorityInversion),
            "faulted server must be exempt: {:?}",
            tracker.violations()
        );
    }

    #[test]
    fn node_loads_match_engine_accounting() {
        let topo = figure7a_rig();
        let rig = stranded_rig(RigConfig::table3());
        let farm = rig.farm;
        let loads = node_loads(&topo, &farm);
        // The X top CB carries the X-side loads of SA, SC, SD.
        let x_root = topo.feed(FeedId::A).unwrap().root().unwrap();
        let x_top = loads[&(FeedId::A, x_root)];
        let expected: f64 = farm
            .iter()
            .map(|(_, s)| {
                let snap = s.sense();
                snap.supply_ac[0].as_f64()
            })
            .sum::<f64>()
            - farm
                .iter()
                .nth(1) // SB is Y-side only
                .map(|(_, s)| s.sense().supply_ac[0].as_f64())
                .unwrap();
        assert!((x_top.as_f64() - expected).abs() < 1e-6);
    }
}

