//! Active wiring audit: validating a declared power topology at runtime.
//!
//! The paper's §7 calls out that "wiring mistakes are possible when we
//! connect servers to the power infrastructure … there is a need to
//! develop a cost-effective approach to finding such errors (other than
//! manual cable tracing)". This module implements such an approach over
//! the simulation substrate: a **power perturbation probe**.
//!
//! For each server, the auditor briefly throttles it (a deep DC cap — the
//! knob CapMaestro already owns), reads every metered distribution point
//! before and after, and checks that exactly the declared ancestors of the
//! server's outlets responded. A supply plugged into the wrong branch
//! shows up as a response on an undeclared meter and silence on a declared
//! one.

use std::collections::HashMap;

use capmaestro_core::plane::Farm;
use capmaestro_topology::{FeedId, NodeId, ServerId, Topology};
use capmaestro_units::Watts;

/// Per-(feed, node) load for a farm wired according to `topology`: outlet
/// loads pushed up each ancestor path. This is what the infrastructure's
/// meters would read.
pub fn node_loads(topology: &Topology, farm: &Farm) -> HashMap<(FeedId, NodeId), Watts> {
    let mut loads: HashMap<(FeedId, NodeId), Watts> = HashMap::new();
    for graph in topology.feeds() {
        for (outlet_node, outlet) in graph.outlets() {
            let Some(server) = farm.get(outlet.server) else {
                continue;
            };
            let snap = server.sense();
            let load = snap
                .supply_ac
                .get(outlet.supply.index())
                .copied()
                .unwrap_or(Watts::ZERO);
            for node in graph.path_to_root(outlet_node) {
                *loads.entry((graph.feed(), node)).or_insert(Watts::ZERO) += load;
            }
        }
    }
    loads
}

/// A detected wiring discrepancy for one server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WiringMismatch {
    /// The server whose probe disagreed with the declared topology.
    pub server: ServerId,
    /// Metered points that the declared topology says should have
    /// responded but did not (device names).
    pub missing: Vec<String>,
    /// Metered points that responded although the declared topology says
    /// they should not have (device names).
    pub unexpected: Vec<String>,
}

/// Outcome of a wiring audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Servers whose observed response set matched the declaration.
    pub verified: Vec<ServerId>,
    /// Servers with discrepancies.
    pub mismatches: Vec<WiringMismatch>,
}

impl AuditReport {
    /// Whether the declared topology survived the audit unchallenged.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Load change below this is measurement noise, not a response.
const RESPONSE_THRESHOLD: Watts = Watts::new(5.0);

/// Audits `declared` against the physical truth.
///
/// `actual` describes how the data center is *really* cabled (in a live
/// deployment this is the physical world itself; here it is the topology
/// the farm's meters answer for). The probe perturbs one server at a time:
/// it forces the server's demand to idle, diffs every metered node, and
/// compares the responding set against the declared ancestry. Servers are
/// restored to their previous demand afterwards.
///
/// Only internal nodes carrying a limit (i.e. metered distribution points)
/// participate in the comparison; outlet leaves are excluded since a leaf
/// meter would make the audit trivial.
pub fn audit_wiring(declared: &Topology, actual: &Topology, farm: &mut Farm) -> AuditReport {
    let mut report = AuditReport::default();
    let servers: Vec<ServerId> = farm.iter().map(|(id, _)| id).collect();

    for server in servers {
        // Expected responders: metered ancestors per the declaration.
        let mut expected: Vec<(FeedId, String)> = Vec::new();
        for (feed, node, _) in declared.supply_attachments(server) {
            let graph = declared.feed(feed).expect("declared feed");
            for ancestor in graph.path_to_root(node) {
                let device = graph.device(ancestor);
                if device.effective_limit().is_some() {
                    expected.push((feed, device.name().to_string()));
                }
            }
        }
        expected.sort();
        expected.dedup();

        // Probe: drop the server to idle, observe the metered deltas on
        // the *actual* wiring.
        let baseline = node_loads(actual, farm);
        let (prev_demand, was_powered) = {
            let srv = farm.get_mut(server).expect("probed server exists");
            let prev = srv.offered_demand();
            let powered = srv.is_powered();
            srv.set_offered_demand(srv.config().model().idle());
            srv.settle();
            (prev, powered)
        };
        let probed = node_loads(actual, farm);
        {
            let srv = farm.get_mut(server).expect("probed server exists");
            srv.set_offered_demand(prev_demand);
            srv.set_powered(was_powered);
            srv.settle();
        }

        let mut observed: Vec<(FeedId, String)> = Vec::new();
        for (key @ (feed, node), base) in &baseline {
            let graph = actual.feed(*feed).expect("actual feed");
            if graph.device(*node).effective_limit().is_none() {
                continue;
            }
            let after = probed.get(key).copied().unwrap_or(Watts::ZERO);
            if (*base - after).as_f64().abs() >= RESPONSE_THRESHOLD.as_f64() {
                observed.push((*feed, graph.device(*node).name().to_string()));
            }
        }
        observed.sort();
        observed.dedup();

        let missing: Vec<String> = expected
            .iter()
            .filter(|e| !observed.contains(e))
            .map(|(_, n)| n.clone())
            .collect();
        let unexpected: Vec<String> = observed
            .iter()
            .filter(|o| !expected.contains(o))
            .map(|(_, n)| n.clone())
            .collect();
        if missing.is_empty() && unexpected.is_empty() {
            report.verified.push(server);
        } else {
            report.mismatches.push(WiringMismatch {
                server,
                missing,
                unexpected,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{stranded_rig, RigConfig};
    use capmaestro_topology::builder::TopologyBuilder;
    use capmaestro_topology::presets::figure7a_rig;
    use capmaestro_topology::{DeviceKind, Phase, PowerDevice, Priority, SupplyIndex};

    #[test]
    fn correct_wiring_audits_clean() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;
        let report = audit_wiring(&declared, &declared, &mut farm);
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
        assert_eq!(report.verified.len(), 4);
    }

    /// Miswire SC's Y-side cord onto the left breaker (it belongs on the
    /// right): the audit must flag SC and only SC.
    #[test]
    fn detects_single_miswired_cord() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;

        // Build the *actual* (miswired) topology from scratch: identical
        // except SC's SECOND supply lands under "Y Left CB".
        let mut b = TopologyBuilder::new();
        let mut lefts = Vec::new();
        let mut rights = Vec::new();
        for feed in [FeedId::A, FeedId::B] {
            let label = if feed == FeedId::A { "X" } else { "Y" };
            let root = b.add_feed(
                feed,
                PowerDevice::new(format!("{label} Top CB"), DeviceKind::Virtual)
                    .with_extra_limit(Watts::new(1400.0)),
            );
            lefts.push(
                b.add_node(
                    feed,
                    root,
                    PowerDevice::new(format!("{label} Left CB"), DeviceKind::Virtual)
                        .with_extra_limit(Watts::new(750.0)),
                )
                .unwrap(),
            );
            rights.push(
                b.add_node(
                    feed,
                    root,
                    PowerDevice::new(format!("{label} Right CB"), DeviceKind::Virtual)
                        .with_extra_limit(Watts::new(750.0)),
                )
                .unwrap(),
            );
        }
        let sa = b.add_server("SA", Priority::HIGH);
        let sb = b.add_server("SB", Priority::LOW);
        let sc = b.add_server("SC", Priority::LOW);
        let sd = b.add_server("SD", Priority::LOW);
        b.attach(sa, SupplyIndex::FIRST, FeedId::A, lefts[0], Phase::L1)
            .unwrap();
        b.attach(sb, SupplyIndex::FIRST, FeedId::B, lefts[1], Phase::L1)
            .unwrap();
        b.attach(sc, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
            .unwrap();
        // THE MISTAKE: SC's Y cord on the LEFT breaker.
        b.attach(sc, SupplyIndex::SECOND, FeedId::B, lefts[1], Phase::L1)
            .unwrap();
        b.attach(sd, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
            .unwrap();
        b.attach(sd, SupplyIndex::SECOND, FeedId::B, rights[1], Phase::L1)
            .unwrap();
        let actual = b.build().unwrap();

        let report = audit_wiring(&declared, &actual, &mut farm);
        assert_eq!(report.mismatches.len(), 1, "{:?}", report.mismatches);
        let m = &report.mismatches[0];
        assert_eq!(m.server, sc);
        assert!(m.missing.contains(&"Y Right CB".to_string()), "{m:?}");
        assert!(m.unexpected.contains(&"Y Left CB".to_string()), "{m:?}");
        assert_eq!(report.verified.len(), 3);
    }

    #[test]
    fn probe_restores_server_state() {
        let rig = stranded_rig(RigConfig::table3());
        let declared = rig.topology.clone();
        let mut farm = rig.farm;
        let before: Vec<f64> = farm
            .iter()
            .map(|(_, s)| s.offered_demand().as_f64())
            .collect();
        let _ = audit_wiring(&declared, &declared, &mut farm);
        let after: Vec<f64> = farm
            .iter()
            .map(|(_, s)| s.offered_demand().as_f64())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn node_loads_match_engine_accounting() {
        let topo = figure7a_rig();
        let rig = stranded_rig(RigConfig::table3());
        let farm = rig.farm;
        let loads = node_loads(&topo, &farm);
        // The X top CB carries the X-side loads of SA, SC, SD.
        let x_root = topo.feed(FeedId::A).unwrap().root().unwrap();
        let x_top = loads[&(FeedId::A, x_root)];
        let expected: f64 = farm
            .iter()
            .map(|(_, s)| {
                let snap = s.sense();
                snap.supply_ac[0].as_f64()
            })
            .sum::<f64>()
            - farm
                .iter()
                .nth(1) // SB is Y-side only
                .map(|(_, s)| s.sense().supply_ac[0].as_f64())
                .unwrap();
        assert!((x_top.as_f64() - expected).abs() < 1e-6);
    }
}
