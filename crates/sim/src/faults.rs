//! Telemetry fault injection: corrupting what the control plane *sees*.
//!
//! CapMaestro's safety argument (paper §4.2–§4.3) assumes the control
//! plane reacts correctly when sensing misbehaves: IPMI reads get dropped,
//! sensors stick or go noisy, whole telemetry feeds flap. This module
//! provides the fault-injecting implementation of the server crate's
//! [`SenseInterposer`] seam — a [`FaultLayer`] that the simulation engine
//! routes every sensor reading through before delivering it to the
//! control plane.
//!
//! Two ways to drive it:
//!
//! - **Scripted**: the engine's `Event::InjectFault` / `Event::ClearFault`
//!   / `Event::FlapTelemetry` / `Event::StopFlap` variants schedule faults
//!   at exact simulation seconds, for targeted scenario tests.
//! - **Seeded**: a [`ChaosPlan`] generates a randomized (but fully
//!   deterministic per seed) schedule of fault episodes for soak runs.
//!
//! The physics is never touched: a fault corrupts the readings, not the
//! wires. A server under `DropReading` keeps drawing real power — the
//! control plane just stops hearing about it, and must degrade to its
//! fail-safe cap rather than trip a breaker.

use std::collections::BTreeMap;

use capmaestro_server::{SenseInterposer, SensorSnapshot};
use capmaestro_topology::{FeedId, ServerId};
use capmaestro_units::Watts;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A telemetry fault injectable on one server's sense path.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Readings are never delivered — the silent-sensor fault.
    DropReading,
    /// The first reading taken after injection is captured and redelivered
    /// unchanged every second — the frozen-sensor fault. The control plane
    /// sees perfectly plausible, perfectly stale data.
    StuckSensor,
    /// Seeded Gaussian noise of standard deviation `sigma_w` watts is
    /// added to every reading (per-supply values scaled consistently).
    NoisySensor {
        /// Noise standard deviation in watts.
        sigma_w: f64,
    },
    /// Every reading has all power fields multiplied by `factor` — the
    /// transient gain fault. Factors beyond the estimator's plausibility
    /// band degrade like silence; smaller ones test the spike filter.
    Spike {
        /// Multiplicative gain applied to every power field.
        factor: f64,
    },
}

/// Timing of a flapping telemetry feed: readings from every server on the
/// feed are delivered for `up_s` seconds, then dropped for `down_s`
/// seconds, cycling until stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSpec {
    /// Seconds per delivered phase.
    pub up_s: u64,
    /// Seconds per dropped phase.
    pub down_s: u64,
}

#[derive(Debug)]
struct Flap {
    spec: FlapSpec,
    members: Vec<ServerId>,
    /// Simulation second the current phase began.
    since_s: u64,
    up: bool,
}

/// The fault-injecting [`SenseInterposer`]: holds the set of active
/// per-server faults and flapping feeds, and corrupts readings
/// accordingly. Deterministic per seed — two layers constructed with the
/// same seed and driven identically corrupt identically.
#[derive(Debug)]
pub struct FaultLayer {
    rng: StdRng,
    faults: BTreeMap<ServerId, FaultKind>,
    /// Captured reading per stuck sensor.
    stuck: BTreeMap<ServerId, SensorSnapshot>,
    flaps: BTreeMap<FeedId, Flap>,
    injected_total: u64,
}

impl FaultLayer {
    /// Creates an empty (all-pass) fault layer with a noise seed.
    pub fn new(seed: u64) -> Self {
        FaultLayer {
            rng: StdRng::seed_from_u64(seed),
            faults: BTreeMap::new(),
            stuck: BTreeMap::new(),
            flaps: BTreeMap::new(),
            injected_total: 0,
        }
    }

    /// Injects (or replaces) a fault on one server's sense path.
    pub fn inject(&mut self, server: ServerId, kind: FaultKind) {
        // Re-injection re-arms a stuck sensor: it freezes the *next*
        // reading, not one captured during a previous episode.
        self.stuck.remove(&server);
        self.faults.insert(server, kind);
        self.injected_total += 1;
    }

    /// Clears any fault on one server. Readings flow clean again.
    pub fn clear(&mut self, server: ServerId) {
        self.faults.remove(&server);
        self.stuck.remove(&server);
    }

    /// Clears every per-server fault and stops every flap.
    pub fn clear_all(&mut self) {
        self.faults.clear();
        self.stuck.clear();
        self.flaps.clear();
    }

    /// Starts a flapping telemetry feed covering `members` (the servers
    /// whose readings travel over it), beginning in the delivered phase at
    /// `now_s`. Restarting an already-flapping feed resets its cycle.
    pub fn start_flap(
        &mut self,
        feed: FeedId,
        members: Vec<ServerId>,
        spec: FlapSpec,
        now_s: u64,
    ) {
        assert!(
            spec.up_s > 0 && spec.down_s > 0,
            "flap phases must each last at least one second"
        );
        self.flaps.insert(
            feed,
            Flap {
                spec,
                members,
                since_s: now_s,
                up: true,
            },
        );
        self.injected_total += 1;
    }

    /// Stops a flapping feed; its members' readings flow clean again.
    pub fn stop_flap(&mut self, feed: FeedId) {
        self.flaps.remove(&feed);
    }

    /// Advances flap phase machines to simulation second `now_s`. Call
    /// once per simulated second, before interception.
    pub fn tick(&mut self, now_s: u64) {
        for flap in self.flaps.values_mut() {
            let phase_len = if flap.up {
                flap.spec.up_s
            } else {
                flap.spec.down_s
            };
            if now_s.saturating_sub(flap.since_s) >= phase_len {
                flap.up = !flap.up;
                flap.since_s = now_s;
            }
        }
    }

    /// Whether the layer is currently a guaranteed no-op (no faults, no
    /// flaps). Lets the engine skip interception entirely on the healthy
    /// path.
    pub fn is_quiet(&self) -> bool {
        self.faults.is_empty() && self.flaps.is_empty()
    }

    /// The fault active on a server, if any.
    pub fn fault_on(&self, server: ServerId) -> Option<&FaultKind> {
        self.faults.get(&server)
    }

    /// Every server whose telemetry is currently subject to a fault: the
    /// per-server fault targets plus all members of flapping feeds
    /// (regardless of the flap's current phase). This is the exempt set
    /// for invariant auditing — a server being lied about cannot be held
    /// to healthy-path guarantees.
    pub fn affected_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.faults.keys().copied().collect();
        for flap in self.flaps.values() {
            ids.extend(flap.members.iter().copied());
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total fault injections (per-server faults + flap starts) so far.
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }
}

/// One standard-normal draw via Box–Muller (the vendored `rand` has no
/// distributions module).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl SenseInterposer for FaultLayer {
    fn intercept(
        &mut self,
        _now_s: u64,
        server: ServerId,
        raw: SensorSnapshot,
    ) -> Option<SensorSnapshot> {
        // A flapping feed in its dropped phase silences every member,
        // taking precedence over per-server faults.
        for flap in self.flaps.values() {
            if !flap.up && flap.members.contains(&server) {
                return None;
            }
        }
        match self.faults.get(&server) {
            None => Some(raw),
            Some(FaultKind::DropReading) => None,
            Some(FaultKind::StuckSensor) => {
                Some(self.stuck.entry(server).or_insert(raw).clone())
            }
            Some(FaultKind::NoisySensor { sigma_w }) => {
                let delta = standard_normal(&mut self.rng) * sigma_w;
                Some(raw.offset(Watts::new(delta)))
            }
            Some(FaultKind::Spike { factor }) => Some(raw.scaled(*factor)),
        }
    }
}

/// Knobs of [`ChaosPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Total soak length in simulation seconds.
    pub seconds: u64,
    /// Fault episodes to schedule.
    pub episodes: usize,
    /// Shortest episode, seconds.
    pub min_duration_s: u64,
    /// Longest episode, seconds.
    pub max_duration_s: u64,
    /// Largest Gaussian σ a `NoisySensor` episode may carry, watts.
    pub sigma_max_w: f64,
    /// Largest gain a `Spike` episode may carry (drawn from
    /// `[1.2, spike_max_factor]`). Generated plans only over-report: a
    /// persistent *under*-reporting gain is indistinguishable from a
    /// genuinely lighter load at the server-sensor level, so the
    /// controller uncaps the server and physical power can exceed the
    /// feed budget — defending against it needs feed-level metering
    /// (a §7 open problem), not server-side screening. Targeted tests
    /// can still construct `FaultKind::Spike { factor: <1.0 }` directly.
    pub spike_max_factor: f64,
    /// Fraction of episodes that flap a whole telemetry feed instead of
    /// faulting one server.
    pub flap_fraction: f64,
    /// No episode starts before this second — the rig settles to its
    /// healthy steady state first, giving recovery checks a baseline.
    pub settle_s: u64,
    /// No episode is active after `seconds − quiesce_s` — the tail of the
    /// soak is fault-free so recovery-to-baseline can be asserted.
    pub quiesce_s: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seconds: 4000,
            episodes: 24,
            min_duration_s: 24,
            max_duration_s: 240,
            sigma_max_w: 60.0,
            spike_max_factor: 3.0,
            flap_fraction: 0.2,
            settle_s: 120,
            quiesce_s: 400,
        }
    }
}

/// One scheduled fault episode: a fault held on a target over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Second the fault is injected.
    pub start_s: u64,
    /// Second the fault is cleared.
    pub end_s: u64,
    /// What happens to whom.
    pub action: ChaosAction,
}

/// The target+kind of one episode.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// A per-server telemetry fault.
    Fault(ServerId, FaultKind),
    /// A whole telemetry feed flapping.
    Flap(FeedId, FlapSpec),
}

/// A seeded, deterministic schedule of fault episodes for a soak run.
///
/// # Examples
///
/// ```
/// use capmaestro_sim::faults::{ChaosConfig, ChaosPlan};
/// use capmaestro_topology::{FeedId, ServerId};
///
/// let servers: Vec<ServerId> = (0..8).map(ServerId).collect();
/// let a = ChaosPlan::generate(&ChaosConfig::default(), &servers, &[FeedId::A], 7);
/// let b = ChaosPlan::generate(&ChaosConfig::default(), &servers, &[FeedId::A], 7);
/// assert_eq!(a.episodes(), b.episodes());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    episodes: Vec<Episode>,
}

impl ChaosPlan {
    /// An empty plan: scheduling it is a guaranteed no-op.
    pub fn empty() -> Self {
        ChaosPlan {
            episodes: Vec::new(),
        }
    }

    /// Generates a plan over `servers` and `feeds`, deterministic per
    /// `seed`. Episode onsets land in `[settle_s, seconds − quiesce_s −
    /// duration)`; targets, kinds, and parameters are drawn uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or the config leaves no room between
    /// settle and quiesce for the longest episode.
    pub fn generate(
        config: &ChaosConfig,
        servers: &[ServerId],
        feeds: &[FeedId],
        seed: u64,
    ) -> Self {
        assert!(!servers.is_empty(), "chaos needs at least one server");
        assert!(
            config.min_duration_s > 0 && config.min_duration_s <= config.max_duration_s,
            "episode durations must be positive and ordered"
        );
        let window_end = config
            .seconds
            .saturating_sub(config.quiesce_s)
            .saturating_sub(config.max_duration_s);
        assert!(
            window_end > config.settle_s,
            "no room for episodes between settle ({} s) and quiesce",
            config.settle_s
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut episodes = Vec::with_capacity(config.episodes);
        for _ in 0..config.episodes {
            let start_s = rng.random_range(config.settle_s..window_end);
            let duration =
                rng.random_range(config.min_duration_s..=config.max_duration_s);
            let flap = !feeds.is_empty() && rng.random::<f64>() < config.flap_fraction;
            let action = if flap {
                let feed = feeds[rng.random_range(0..feeds.len())];
                let up_s = rng.random_range(4u64..=16);
                let down_s = rng.random_range(4u64..=16);
                ChaosAction::Flap(feed, FlapSpec { up_s, down_s })
            } else {
                let server = servers[rng.random_range(0..servers.len())];
                let kind = match rng.random_range(0u32..4) {
                    0 => FaultKind::DropReading,
                    1 => FaultKind::StuckSensor,
                    2 => FaultKind::NoisySensor {
                        sigma_w: rng.random_range(5.0..config.sigma_max_w),
                    },
                    _ => {
                        let factor =
                            rng.random_range(1.2..config.spike_max_factor.max(1.3));
                        FaultKind::Spike { factor }
                    }
                };
                ChaosAction::Fault(server, kind)
            };
            episodes.push(Episode {
                start_s,
                end_s: start_s + duration,
                action,
            });
        }
        episodes.sort_by_key(|e| (e.start_s, e.end_s));
        ChaosPlan { episodes }
    }

    /// The scheduled episodes, by onset.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// The last second at which any episode is still active (0 for an
    /// empty plan). After this the world should converge back to its
    /// pre-fault state.
    pub fn last_fault_end_s(&self) -> u64 {
        self.episodes.iter().map(|e| e.end_s).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_server::{Server, ServerConfig};

    fn snapshot(power: f64) -> SensorSnapshot {
        let mut server = Server::new(ServerConfig::paper_default());
        server.set_offered_demand(Watts::new(power));
        server.settle();
        server.sense()
    }

    #[test]
    fn empty_layer_is_identity() {
        let mut layer = FaultLayer::new(1);
        assert!(layer.is_quiet());
        let raw = snapshot(420.0);
        assert_eq!(layer.intercept(0, ServerId(0), raw.clone()), Some(raw));
    }

    #[test]
    fn drop_reading_silences_only_its_target() {
        let mut layer = FaultLayer::new(1);
        layer.inject(ServerId(0), FaultKind::DropReading);
        let raw = snapshot(420.0);
        assert_eq!(layer.intercept(0, ServerId(0), raw.clone()), None);
        assert_eq!(layer.intercept(0, ServerId(1), raw.clone()), Some(raw.clone()));
        layer.clear(ServerId(0));
        assert_eq!(layer.intercept(1, ServerId(0), raw.clone()), Some(raw));
        assert!(layer.is_quiet());
    }

    #[test]
    fn stuck_sensor_freezes_first_reading_after_injection() {
        let mut layer = FaultLayer::new(1);
        layer.inject(ServerId(0), FaultKind::StuckSensor);
        let first = snapshot(420.0);
        let later = snapshot(300.0);
        assert_eq!(
            layer.intercept(0, ServerId(0), first.clone()),
            Some(first.clone())
        );
        // The world moved on; the delivered reading did not.
        assert_eq!(
            layer.intercept(1, ServerId(0), later.clone()),
            Some(first.clone())
        );
        // Re-injection re-arms: the next reading becomes the new freeze.
        layer.inject(ServerId(0), FaultKind::StuckSensor);
        assert_eq!(layer.intercept(2, ServerId(0), later.clone()), Some(later));
    }

    #[test]
    fn noise_is_seed_deterministic_and_zero_mean() {
        let raw = snapshot(420.0);
        let mut a = FaultLayer::new(42);
        let mut b = FaultLayer::new(42);
        a.inject(ServerId(0), FaultKind::NoisySensor { sigma_w: 25.0 });
        b.inject(ServerId(0), FaultKind::NoisySensor { sigma_w: 25.0 });
        let mut sum = 0.0;
        for t in 0..2000 {
            let x = a.intercept(t, ServerId(0), raw.clone()).unwrap();
            let y = b.intercept(t, ServerId(0), raw.clone()).unwrap();
            assert_eq!(x, y, "same seed must corrupt identically");
            sum += x.total_ac.as_f64() - raw.total_ac.as_f64();
        }
        let mean = sum / 2000.0;
        assert!(mean.abs() < 2.5, "noise mean {mean} should be near zero");
    }

    #[test]
    fn spike_scales_and_flap_cycles() {
        let mut layer = FaultLayer::new(1);
        layer.inject(ServerId(0), FaultKind::Spike { factor: 2.0 });
        let raw = snapshot(420.0);
        let out = layer.intercept(0, ServerId(0), raw.clone()).unwrap();
        assert!((out.total_ac.as_f64() - 2.0 * raw.total_ac.as_f64()).abs() < 1e-9);

        layer.clear_all();
        layer.start_flap(
            FeedId::A,
            vec![ServerId(0), ServerId(1)],
            FlapSpec { up_s: 2, down_s: 3 },
            0,
        );
        let mut delivered = Vec::new();
        for t in 0..10 {
            layer.tick(t);
            delivered.push(layer.intercept(t, ServerId(0), raw.clone()).is_some());
            // A non-member is untouched.
            assert!(layer.intercept(t, ServerId(7), raw.clone()).is_some());
        }
        // 2 s up, 3 s down, cycling.
        assert_eq!(
            delivered,
            vec![true, true, false, false, false, true, true, false, false, false]
        );
        layer.stop_flap(FeedId::A);
        assert!(layer.is_quiet());
    }

    #[test]
    fn affected_servers_unions_faults_and_flaps() {
        let mut layer = FaultLayer::new(1);
        layer.inject(ServerId(3), FaultKind::DropReading);
        layer.start_flap(
            FeedId::B,
            vec![ServerId(1), ServerId(3)],
            FlapSpec { up_s: 5, down_s: 5 },
            0,
        );
        assert_eq!(layer.affected_servers(), vec![ServerId(1), ServerId(3)]);
        assert_eq!(layer.injected_total(), 2);
    }

    #[test]
    fn chaos_plan_is_deterministic_and_windowed() {
        let servers: Vec<ServerId> = (0..20).map(ServerId).collect();
        let feeds = [FeedId::A, FeedId::B];
        let config = ChaosConfig::default();
        let a = ChaosPlan::generate(&config, &servers, &feeds, 7);
        let b = ChaosPlan::generate(&config, &servers, &feeds, 7);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(&config, &servers, &feeds, 8);
        assert_ne!(a, c, "different seeds must give different plans");
        assert_eq!(a.episodes().len(), config.episodes);
        for e in a.episodes() {
            assert!(e.start_s >= config.settle_s);
            assert!(e.end_s <= config.seconds - config.quiesce_s);
            assert!(e.end_s > e.start_s);
        }
        assert!(a.last_fault_end_s() <= config.seconds - config.quiesce_s);
        assert_eq!(ChaosPlan::empty().last_fault_end_s(), 0);
    }
}
