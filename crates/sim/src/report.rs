//! Table and time-series formatting shared by the experiment binaries.
//!
//! The harnesses in `capmaestro-bench` print the same rows/series the
//! paper's tables and figures report; these helpers keep that output
//! consistent and machine-diffable (aligned columns, CSV series).

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use capmaestro_sim::report::Table;
///
/// let mut t = Table::new(vec!["Server", "Budget (W)"]);
/// t.row(vec!["SA".into(), "430".into()]);
/// let out = t.render();
/// assert!(out.contains("SA"));
/// assert!(out.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a set of equally-long series as CSV with a leading index
/// column (`t` by default) — the machine-readable form of a figure.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn series_csv(index_name: &str, series: &[(&str, &[f64])]) -> String {
    let mut out = String::new();
    out.push_str(index_name);
    for (name, _) in series {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    if let Some((_, first)) = series.first() {
        for (_, s) in series {
            assert_eq!(s.len(), first.len(), "series lengths must match");
        }
        for i in 0..first.len() {
            let _ = write!(out, "{i}");
            for (_, s) in series {
                let _ = write!(out, ",{:.3}", s[i]);
            }
            out.push('\n');
        }
    }
    out
}

/// Downsamples a series by averaging every `stride` samples — keeps
/// printed figures readable without hiding trends.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn downsample(series: &[f64], stride: usize) -> Vec<f64> {
    assert!(stride > 0, "stride must be positive");
    series
        .chunks(stride)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Renders a compact ASCII sparkline of a series (eight levels), for
/// at-a-glance shape checks in terminal output.
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    series
        .iter()
        .map(|v| {
            let idx = (((v - min) / range) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["Server", "Priority", "Budget (W)"]);
        t.row(vec!["SA".into(), "H".into(), "430".into()]);
        t.row(vec!["SB".into(), "L".into(), "270".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Server"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_series() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let csv = series_csv("t", &[("x", &a), ("y", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,x,y");
        assert_eq!(lines[1], "0,1.000,3.000");
        assert_eq!(lines[2], "1,2.000,4.000");
    }

    #[test]
    #[should_panic(expected = "series lengths")]
    fn csv_length_mismatch_panics() {
        let a = [1.0];
        let b = [1.0, 2.0];
        let _ = series_csv("t", &[("x", &a), ("y", &b)]);
    }

    #[test]
    fn downsampling() {
        let s = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(downsample(&s, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(downsample(&s, 1), s.to_vec());
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
