//! Job-scheduler integration: dynamic priorities and demands from a job
//! timeline (paper §7, "Coordination of Job Scheduling with Power
//! Management").
//!
//! A [`JobSchedule`] assigns [`Job`]s — each with a priority, a CPU
//! utilization, and a lifetime — to servers, then compiles into engine
//! [`Event`]s: at every arrival and departure the affected server's
//! offered demand is recomputed from its active jobs and its priority is
//! re-declared to the control plane as the maximum of its active jobs'
//! priorities. That is exactly the "dynamic priorities … communicated to
//! the power management algorithm quickly, allowing for proactive power
//! budgeting" the paper calls for.

use std::collections::HashMap;

use capmaestro_server::ServerPowerModel;
use capmaestro_topology::{Priority, ServerId};
use capmaestro_units::Ratio;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::engine::Event;

/// One job: a priority, a CPU share, and a lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Display name.
    pub name: String,
    /// The job's priority (drives its host's effective priority).
    pub priority: Priority,
    /// CPU utilization the job contributes to its host (fraction).
    pub utilization: f64,
    /// Arrival time (simulation seconds).
    pub start_s: u64,
    /// Departure time (exclusive).
    pub end_s: u64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics unless `utilization ∈ [0, 1]` and `end_s > start_s`.
    pub fn new(
        name: impl Into<String>,
        priority: Priority,
        utilization: f64,
        start_s: u64,
        end_s: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "job utilization must be a fraction, got {utilization}"
        );
        assert!(end_s > start_s, "job must end after it starts");
        Job {
            name: name.into(),
            priority,
            utilization,
            start_s,
            end_s,
        }
    }

    /// Whether the job runs at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        (self.start_s..self.end_s).contains(&t)
    }
}

/// Jobs placed onto servers, compilable into engine events.
#[derive(Debug, Clone, Default)]
pub struct JobSchedule {
    assignments: Vec<(ServerId, Job)>,
}

impl JobSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        JobSchedule::default()
    }

    /// Places a job on a server.
    pub fn assign(&mut self, server: ServerId, job: Job) -> &mut Self {
        self.assignments.push((server, job));
        self
    }

    /// All assignments.
    pub fn assignments(&self) -> &[(ServerId, Job)] {
        &self.assignments
    }

    /// Number of placed jobs.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Generates a random schedule: `count` jobs over `servers`, arrivals
    /// uniform in `[0, horizon_s)`, durations uniform in
    /// `[min_duration_s, horizon_s / 2]`, utilization in `[0.2, 1.0]`,
    /// priorities drawn from `{0, 1, 2}` with high levels rarer.
    pub fn generate(
        servers: &[ServerId],
        count: usize,
        horizon_s: u64,
        seed: u64,
    ) -> Self {
        assert!(!servers.is_empty(), "need at least one server");
        assert!(horizon_s >= 8, "horizon too short for jobs");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = JobSchedule::new();
        for i in 0..count {
            let server = servers[rng.random_range(0..servers.len())];
            let start = rng.random_range(0..horizon_s.saturating_sub(8).max(1));
            let duration = rng.random_range(8..=(horizon_s / 2).max(9));
            let utilization = 0.2 + 0.8 * rng.random::<f64>();
            let priority = match rng.random_range(0..10u32) {
                0..=5 => Priority(0),
                6..=8 => Priority(1),
                _ => Priority(2),
            };
            schedule.assign(
                server,
                Job::new(
                    format!("job{i}"),
                    priority,
                    utilization,
                    start,
                    (start + duration).min(horizon_s),
                ),
            );
        }
        schedule
    }

    /// The utilization and effective priority of a server at time `t`
    /// (sum of active jobs' utilization clamped to 1; maximum priority,
    /// `Priority::LOW` when idle).
    pub fn server_state_at(&self, server: ServerId, t: u64) -> (f64, Priority) {
        let mut utilization = 0.0;
        let mut priority = Priority::LOW;
        for (s, job) in &self.assignments {
            if *s == server && job.active_at(t) {
                utilization += job.utilization;
                priority = priority.max(job.priority);
            }
        }
        (utilization.min(1.0), priority)
    }

    /// Compiles the schedule into engine events: one `SetDemand` +
    /// `SetPriority` pair per server per arrival/departure edge, with the
    /// demand derived from the power model.
    pub fn compile(&self, model: ServerPowerModel) -> Vec<(u64, Event)> {
        // Collect each server's edge times.
        let mut edges: HashMap<ServerId, Vec<u64>> = HashMap::new();
        for (server, job) in &self.assignments {
            let entry = edges.entry(*server).or_default();
            entry.push(job.start_s);
            entry.push(job.end_s);
        }
        let mut events = Vec::new();
        for (server, mut times) in edges {
            times.sort_unstable();
            times.dedup();
            for t in times {
                let (utilization, priority) = self.server_state_at(server, t);
                let demand = model.power_at_utilization(Ratio::new(utilization));
                events.push((t, Event::SetDemand(server, demand)));
                events.push((t, Event::SetPriority(server, priority)));
            }
        }
        events.sort_by_key(|(t, _)| *t);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Trace};
    use crate::scenarios::{priority_rig, RigConfig};
    use capmaestro_units::Watts;

    #[test]
    fn job_lifetime() {
        let job = Job::new("j", Priority(1), 0.5, 10, 20);
        assert!(!job.active_at(9));
        assert!(job.active_at(10));
        assert!(job.active_at(19));
        assert!(!job.active_at(20));
    }

    #[test]
    #[should_panic(expected = "must end after")]
    fn empty_lifetime_rejected() {
        let _ = Job::new("j", Priority(0), 0.5, 10, 10);
    }

    #[test]
    fn server_state_accumulates_and_clamps() {
        let mut schedule = JobSchedule::new();
        let s = ServerId(0);
        schedule.assign(s, Job::new("a", Priority(0), 0.7, 0, 100));
        schedule.assign(s, Job::new("b", Priority(2), 0.6, 50, 100));
        let (u0, p0) = schedule.server_state_at(s, 10);
        assert_eq!((u0, p0), (0.7, Priority(0)));
        let (u1, p1) = schedule.server_state_at(s, 60);
        assert_eq!(u1, 1.0); // 0.7 + 0.6 clamped
        assert_eq!(p1, Priority(2));
        let (u2, p2) = schedule.server_state_at(s, 100);
        assert_eq!((u2, p2), (0.0, Priority::LOW));
    }

    #[test]
    fn compile_emits_paired_edges_in_order() {
        let mut schedule = JobSchedule::new();
        schedule.assign(ServerId(0), Job::new("a", Priority(1), 0.8, 30, 90));
        let events = schedule.compile(ServerPowerModel::paper_default());
        assert_eq!(events.len(), 4); // 2 edges × (demand + priority)
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        // At the arrival the demand rises above idle; at departure it
        // returns to idle.
        let Event::SetDemand(_, d0) = &events[0].1 else {
            panic!("expected SetDemand first")
        };
        assert!(*d0 > Watts::new(160.0));
        let Event::SetDemand(_, d1) = &events[2].1 else {
            panic!("expected SetDemand at departure")
        };
        assert_eq!(*d1, Watts::new(160.0));
    }

    #[test]
    fn generated_schedules_are_deterministic_and_valid() {
        let servers: Vec<ServerId> = (0..10).map(ServerId).collect();
        let a = JobSchedule::generate(&servers, 50, 600, 7);
        let b = JobSchedule::generate(&servers, 50, 600, 7);
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.len(), 50);
        for (_, job) in a.assignments() {
            assert!(job.end_s > job.start_s);
            assert!(job.end_s <= 600);
            assert!((0.0..=1.0).contains(&job.utilization));
        }
    }

    /// End to end: a high-priority job arriving on a capped low-priority
    /// server promotes it; the plane re-budgets within a control period;
    /// the job's departure demotes it again.
    #[test]
    fn job_arrival_promotes_and_departure_demotes() {
        let rig = priority_rig(RigConfig::table2());
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        let mut schedule = JobSchedule::new();
        // A P2 job (above SA's P1) occupying SB fully from t=80 to t=200.
        schedule.assign(sb, Job::new("urgent", Priority(2), 1.0, 80, 200));
        for (t, event) in schedule.compile(ServerPowerModel::paper_default()) {
            engine.schedule(t, event);
        }
        let trace = engine.run(320);
        let sb_power = &trace.server_power[&sb];
        // Before the job: capped near Pcap_min.
        assert!(Trace::tail_mean(&sb_power[..80], 10) < 300.0);
        // During: promoted to the top, gets (nearly) full demand.
        assert!(
            Trace::tail_mean(&sb_power[..200], 20) > 430.0,
            "promoted SB at {}",
            Trace::tail_mean(&sb_power[..200], 20)
        );
        // After departure: back to idle power (the job was its demand).
        assert!(
            Trace::tail_mean(sb_power, 10) < 200.0,
            "departed SB at {}",
            Trace::tail_mean(sb_power, 10)
        );
    }
}
