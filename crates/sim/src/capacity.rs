//! The §6.4 capacity planner: how many servers fit?
//!
//! Models the Table 4 production data center and answers, per policy and
//! condition, the maximum deployable server count under the paper's
//! criterion: **average cap ratio below 1 %** — over *all* servers in
//! typical conditions, and over *high-priority* servers during a worst-case
//! power emergency (all servers at 100 % utilization with one entire feed
//! down).
//!
//! Methodology notes (deviations from the paper are deliberate and
//! documented in `EXPERIMENTS.md`):
//!
//! - The paper runs 20 k Monte-Carlo trials per typical-case point. We
//!   *stratify* over the bins of the fleet-average utilization
//!   distribution instead — the distribution is discrete, so weighting each
//!   bin by its probability removes that sampling dimension entirely and a
//!   handful of repetitions per bin (for priority placement and per-server
//!   jitter) converges tighter than 20 k raw trials.
//! - Both feeds and all per-server splits are symmetric in the capacity
//!   study (split 0.5, budgets 50/50), so allocating one feed's three
//!   phase trees and doubling is exact, halving the work.

use capmaestro_core::policy::PolicyKind;
use capmaestro_core::tree::{ControlTree, SupplyInput};
use capmaestro_server::ServerPowerModel;
use capmaestro_topology::presets::{table4_datacenter, DataCenterParams};
use capmaestro_topology::{FeedId, Priority};
use capmaestro_units::{Ratio, Watts};
use capmaestro_workload::{google_like_profile, DiscreteDistribution, NormalSampler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which operating condition a capacity evaluation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// Normal operation: both feeds up, fleet utilization drawn from the
    /// load profile. Criterion applies to all servers.
    Typical,
    /// Worst-case power emergency: every server at 100 % utilization and
    /// one entire feed down. Criterion applies to high-priority servers.
    WorstCase,
}

/// Aggregate result of evaluating one `(rack size, policy, condition)`
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Mean cap ratio over all servers.
    pub cap_ratio_all: f64,
    /// Mean cap ratio over high-priority servers.
    pub cap_ratio_high: f64,
    /// Servers deployed at this point.
    pub servers: usize,
}

impl TrialStats {
    /// The criterion value the paper judges this condition by.
    pub fn criterion(&self, condition: Condition) -> f64 {
        match condition {
            Condition::Typical => self.cap_ratio_all,
            Condition::WorstCase => self.cap_ratio_high,
        }
    }
}

/// Configuration of the capacity study. Defaults reproduce Table 4 and the
/// §6.4 methodology.
#[derive(Debug, Clone)]
pub struct CapacityConfig {
    /// Physical data-center parameters (rack count, device ratings).
    pub dc: DataCenterParams,
    /// Fraction of servers designated high priority (0.3 in the paper).
    pub high_priority_fraction: f64,
    /// Contractual budget per phase across both feeds (700 kW).
    pub contractual_per_phase: Watts,
    /// Loading fraction of the contractual budget (95 %, 5 % margin).
    pub contractual_loading: f64,
    /// The acceptance threshold on the mean cap ratio (1 %).
    pub cap_ratio_threshold: f64,
    /// Fleet-average utilization distribution (Fig. 8 substitute).
    pub profile: DiscreteDistribution,
    /// Standard deviation of per-server utilization jitter around the
    /// fleet average.
    pub jitter_std: f64,
    /// Repetitions per profile bin in typical-case evaluation.
    pub typical_reps_per_bin: usize,
    /// Monte-Carlo trials in worst-case evaluation.
    pub worst_trials: usize,
    /// The server power model (Table 4 envelope).
    pub model: ServerPowerModel,
    /// Base random seed.
    pub seed: u64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            dc: DataCenterParams::default(),
            high_priority_fraction: 0.3,
            contractual_per_phase: Watts::from_kilowatts(700.0),
            contractual_loading: 0.95,
            cap_ratio_threshold: 0.01,
            profile: google_like_profile(),
            jitter_std: 0.05,
            typical_reps_per_bin: 3,
            worst_trials: 60,
            model: ServerPowerModel::paper_default(),
            seed: 0xCA9_AE57,
        }
    }
}

/// A prepared deployment at one rack size: feed A's three phase trees plus
/// bookkeeping.
#[derive(Debug)]
struct Prepared {
    trees: Vec<ControlTree>,
    server_count: usize,
}

/// The capacity planner.
///
/// # Examples
///
/// ```no_run
/// use capmaestro_core::policy::PolicyKind;
/// use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
///
/// let planner = CapacityPlanner::new(CapacityConfig::default());
/// let n = planner.max_deployable(PolicyKind::GlobalPriority, Condition::WorstCase);
/// println!("global priority sustains {n} servers through a feed failure");
/// ```
#[derive(Debug)]
pub struct CapacityPlanner {
    config: CapacityConfig,
}

/// SplitMix64, for deriving independent sub-seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn policy_tag(policy: PolicyKind) -> u64 {
    match policy {
        PolicyKind::NoPriority => 1,
        PolicyKind::LocalPriority => 2,
        PolicyKind::GlobalPriority => 3,
    }
}

impl CapacityPlanner {
    /// Creates a planner.
    pub fn new(config: CapacityConfig) -> Self {
        CapacityPlanner { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CapacityConfig {
        &self.config
    }

    fn prepare(&self, servers_per_rack: usize) -> Prepared {
        let params = DataCenterParams {
            servers_per_rack,
            ..self.config.dc
        };
        let (topo, _placements) = table4_datacenter(&params, |_| Priority::LOW);
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .filter(|spec| spec.feed() == FeedId::A)
            .map(ControlTree::new)
            .collect();
        Prepared {
            trees,
            server_count: topo.server_count(),
        }
    }

    /// Draws an exact-fraction high-priority set over `n` servers.
    fn draw_priorities(&self, n: usize, rng: &mut StdRng) -> Vec<Priority> {
        let mut priorities = vec![Priority::LOW; n];
        let k = (self.config.high_priority_fraction * n as f64).round() as usize;
        // Partial Fisher–Yates over an index vector.
        let mut indices: Vec<u32> = (0..n as u32).collect();
        for i in 0..k.min(n) {
            let j = rng.random_range(i..n);
            indices.swap(i, j);
            priorities[indices[i] as usize] = Priority::HIGH;
        }
        priorities
    }

    /// One trial: given per-server demands and priorities, allocate feed
    /// A's trees and return `(mean cap ratio all, mean cap ratio high)`.
    ///
    /// `share` is each surviving supply's load share (0.5 with both feeds
    /// up, 1.0 after a feed failure) and `budget_scale` converts a
    /// per-supply budget to the server total (2.0 or 1.0 respectively).
    #[allow(clippy::too_many_arguments)] // one explicit knob per §6.4 sweep dimension
    fn trial(
        &self,
        prepared: &mut Prepared,
        demands: &[Watts],
        priorities: &[Priority],
        share: f64,
        budget_scale: f64,
        root_budget: Watts,
        policy: PolicyKind,
    ) -> (f64, f64) {
        let model = self.config.model;
        // Fast path: if no limit can bind, nothing is capped.
        if self.uncapped_everywhere(prepared, demands, share, root_budget) {
            return (0.0, 0.0);
        }

        let policy_impl = policy.policy();
        let mut sum_all = 0.0;
        let mut count_all = 0usize;
        let mut sum_high = 0.0;
        let mut count_high = 0usize;

        for tree in &mut prepared.trees {
            tree.set_priorities_with(|server| priorities[server.index()]);
            tree.set_inputs_with(|server, _| SupplyInput {
                demand: demands[server.index()],
                cap_min: model.cap_min(),
                cap_max: model.cap_max(),
                share: Ratio::new(share),
            });
            let alloc = tree.allocate(root_budget, policy_impl.as_ref());
            // Iterate leaves in spec order (not HashMap order) so the
            // floating-point accumulation — and therefore the whole
            // planner — is bit-for-bit deterministic.
            for (_, leaf) in tree.spec().leaves() {
                let server = leaf.server;
                let Some(budget) = alloc.supply_budget(server, leaf.supply) else {
                    continue;
                };
                let demand = demands[server.index()];
                let total_budget = budget * budget_scale;
                let ratio = model.cap_ratio(demand, total_budget).as_f64();
                sum_all += ratio;
                count_all += 1;
                if priorities[server.index()] == Priority::HIGH {
                    sum_high += ratio;
                    count_high += 1;
                }
            }
        }
        (
            if count_all > 0 { sum_all / count_all as f64 } else { 0.0 },
            if count_high > 0 {
                sum_high / count_high as f64
            } else {
                0.0
            },
        )
    }

    /// Conservative no-capping check: accumulate `max(demand, cap_min) ×
    /// share` up each tree and compare against every limit and the root
    /// budget. Exact when it returns `true` (no allocation can cap), so the
    /// expensive allocation is skipped for lightly-loaded trials.
    fn uncapped_everywhere(
        &self,
        prepared: &Prepared,
        demands: &[Watts],
        share: f64,
        root_budget: Watts,
    ) -> bool {
        let model = self.config.model;
        for tree in &prepared.trees {
            let spec = tree.spec();
            let n = spec.len();
            let mut sums = vec![Watts::ZERO; n];
            for idx in (0..n).rev() {
                let node = spec.node(idx);
                if let Some(leaf) = &node.leaf {
                    sums[idx] =
                        demands[leaf.server.index()].max(model.cap_min()) * share;
                }
                if let Some(p) = node.parent {
                    let s = sums[idx];
                    sums[p] += s;
                }
                if let Some(limit) = node.limit {
                    if sums[idx] > limit {
                        return false;
                    }
                }
            }
            if sums[spec.root()] > root_budget {
                return false;
            }
        }
        true
    }

    /// Evaluates one `(rack size, policy, condition)` point.
    pub fn evaluate(
        &self,
        servers_per_rack: usize,
        policy: PolicyKind,
        condition: Condition,
    ) -> TrialStats {
        let mut prepared = self.prepare(servers_per_rack);
        let n = prepared.server_count;
        let base = mix(
            self.config
                .seed
                .wrapping_add(servers_per_rack as u64)
                .wrapping_mul(0x1000_0001)
                ^ policy_tag(policy),
        );
        let model = self.config.model;
        // Contractual budget per phase, after the 5 % margin.
        let contractual =
            self.config.contractual_per_phase * self.config.contractual_loading;

        let (cap_all, cap_high) = match condition {
            Condition::WorstCase => {
                // One feed down: full contractual flows through feed A,
                // every server at maximum demand.
                let demands = vec![model.cap_max(); n];
                let mut sum_all = 0.0;
                let mut sum_high = 0.0;
                let trials = self.config.worst_trials.max(1);
                for t in 0..trials {
                    let mut rng = StdRng::seed_from_u64(mix(base ^ (t as u64) << 1));
                    let priorities = self.draw_priorities(n, &mut rng);
                    let (a, h) = self.trial(
                        &mut prepared,
                        &demands,
                        &priorities,
                        1.0,
                        1.0,
                        contractual,
                        policy,
                    );
                    sum_all += a;
                    sum_high += h;
                }
                (sum_all / trials as f64, sum_high / trials as f64)
            }
            Condition::Typical => {
                // Both feeds up, symmetric: allocate feed A with half the
                // contractual budget and double the per-supply budgets.
                let root = contractual / 2.0;
                let reps = self.config.typical_reps_per_bin.max(1);
                let mut sum_all = 0.0;
                let mut sum_high = 0.0;
                let values = self.config.profile.values().to_vec();
                let probs = self.config.profile.probabilities().to_vec();
                for (bin, (&u, &p)) in values.iter().zip(&probs).enumerate() {
                    if p <= 1e-9 {
                        continue;
                    }
                    let mut bin_all = 0.0;
                    let mut bin_high = 0.0;
                    for rep in 0..reps {
                        let mut rng = StdRng::seed_from_u64(mix(
                            base ^ ((bin as u64) << 20) ^ (rep as u64),
                        ));
                        let priorities = self.draw_priorities(n, &mut rng);
                        let jitter = NormalSampler::new(u, self.config.jitter_std);
                        let demands: Vec<Watts> = (0..n)
                            .map(|_| {
                                let ui = jitter.sample_clamped(&mut rng, 0.0, 1.0);
                                model.power_at_utilization(Ratio::new(ui))
                            })
                            .collect();
                        let (a, h) = self.trial(
                            &mut prepared,
                            &demands,
                            &priorities,
                            0.5,
                            2.0,
                            root,
                            policy,
                        );
                        bin_all += a;
                        bin_high += h;
                    }
                    sum_all += p * bin_all / reps as f64;
                    sum_high += p * bin_high / reps as f64;
                }
                (sum_all, sum_high)
            }
        };

        TrialStats {
            cap_ratio_all: cap_all,
            cap_ratio_high: cap_high,
            servers: n,
        }
    }

    /// The largest rack size (6–45 servers per rack) whose criterion stays
    /// under the threshold, found by binary search (the criterion is
    /// monotone in the rack size). Returns the corresponding total server
    /// count, or 0 if even 6 per rack violates the criterion.
    pub fn max_deployable(&self, policy: PolicyKind, condition: Condition) -> usize {
        let (mut lo, mut hi) = (6usize, 45usize);
        if self
            .evaluate(lo, policy, condition)
            .criterion(condition)
            >= self.config.cap_ratio_threshold
        {
            return 0;
        }
        if self
            .evaluate(hi, policy, condition)
            .criterion(condition)
            < self.config.cap_ratio_threshold
        {
            return hi * self.config.dc.racks;
        }
        // Invariant: lo passes, hi fails.
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let stats = self.evaluate(mid, policy, condition);
            if stats.criterion(condition) < self.config.cap_ratio_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo * self.config.dc.racks
    }

    /// Cap-ratio curve across rack sizes (the Fig. 10 series).
    pub fn capacity_curve(
        &self,
        policy: PolicyKind,
        condition: Condition,
        rack_sizes: &[usize],
    ) -> Vec<TrialStats> {
        rack_sizes
            .iter()
            .map(|&spr| self.evaluate(spr, policy, condition))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down data center (1/9th of the racks) so tests run fast;
    /// limits are unchanged so per-rack capacities match the full center.
    fn small_config() -> CapacityConfig {
        CapacityConfig {
            dc: DataCenterParams {
                racks: 18,
                transformers_per_feed: 2,
                rpps_per_transformer: 3,
                cdus_per_rpp: 3,
                ..DataCenterParams::default()
            },
            // Scale the contractual budget with the rack count.
            contractual_per_phase: Watts::from_kilowatts(700.0 / 9.0),
            worst_trials: 8,
            typical_reps_per_bin: 1,
            ..CapacityConfig::default()
        }
    }

    #[test]
    fn worst_case_ordering_matches_paper() {
        let planner = CapacityPlanner::new(small_config());
        let none = planner.max_deployable(PolicyKind::NoPriority, Condition::WorstCase);
        let local =
            planner.max_deployable(PolicyKind::LocalPriority, Condition::WorstCase);
        let global =
            planner.max_deployable(PolicyKind::GlobalPriority, Condition::WorstCase);
        assert!(
            none < local && local <= global,
            "expected none < local <= global, got {none} / {local} / {global}"
        );
        assert!(global > none * 5 / 4, "global {global} vs none {none}");
    }

    #[test]
    fn typical_case_admits_more_than_worst_case() {
        let planner = CapacityPlanner::new(small_config());
        let typical =
            planner.max_deployable(PolicyKind::GlobalPriority, Condition::Typical);
        let worst =
            planner.max_deployable(PolicyKind::GlobalPriority, Condition::WorstCase);
        assert!(typical >= worst, "typical {typical} < worst {worst}");
    }

    #[test]
    fn cap_ratio_monotone_in_rack_size() {
        let planner = CapacityPlanner::new(small_config());
        let sizes = [12, 24, 36, 45];
        let curve =
            planner.capacity_curve(PolicyKind::NoPriority, Condition::WorstCase, &sizes);
        for pair in curve.windows(2) {
            assert!(
                pair[1].cap_ratio_all >= pair[0].cap_ratio_all - 1e-9,
                "cap ratio should not decrease with more servers"
            );
        }
        // At 45/rack the no-priority policy definitely caps heavily.
        assert!(curve[3].cap_ratio_all > 0.1);
    }

    #[test]
    fn high_priority_protected_under_global() {
        let planner = CapacityPlanner::new(small_config());
        let stats = planner.evaluate(36, PolicyKind::GlobalPriority, Condition::WorstCase);
        let nop = planner.evaluate(36, PolicyKind::NoPriority, Condition::WorstCase);
        // Under global priority the high-priority servers see far less
        // capping than under no priority.
        assert!(
            stats.cap_ratio_high < nop.cap_ratio_high / 3.0,
            "global high {} vs none high {}",
            stats.cap_ratio_high,
            nop.cap_ratio_high
        );
        // And under no priority everyone is capped alike.
        assert!((nop.cap_ratio_high - nop.cap_ratio_all).abs() < 0.02);
    }

    #[test]
    fn priorities_drawn_with_exact_fraction() {
        let planner = CapacityPlanner::new(small_config());
        let mut rng = StdRng::seed_from_u64(7);
        let priorities = planner.draw_priorities(1000, &mut rng);
        let high = priorities.iter().filter(|p| **p == Priority::HIGH).count();
        assert_eq!(high, 300);
    }

    #[test]
    fn uncapped_shortcut_consistent_with_allocation() {
        let planner = CapacityPlanner::new(small_config());
        let mut prepared = planner.prepare(12);
        let n = prepared.server_count;
        // Light load: surely uncapped.
        let light = vec![Watts::new(300.0); n];
        let contractual = planner.config.contractual_per_phase * 0.95;
        assert!(planner.uncapped_everywhere(&prepared, &light, 0.5, contractual / 2.0));
        let (a, h) = planner.trial(
            &mut prepared,
            &light,
            &vec![Priority::LOW; n],
            0.5,
            2.0,
            contractual / 2.0,
            PolicyKind::GlobalPriority,
        );
        assert_eq!((a, h), (0.0, 0.0));
        // Max load at maximum density: the CDU limit binds (15 servers on
        // one phase × 490 W = 7.35 kW > 5.52 kW derated).
        let prepared45 = planner.prepare(45);
        let heavy = vec![Watts::new(490.0); prepared45.server_count];
        assert!(!planner.uncapped_everywhere(&prepared45, &heavy, 1.0, contractual));
    }

    #[test]
    fn stats_criterion_selector() {
        let stats = TrialStats {
            cap_ratio_all: 0.2,
            cap_ratio_high: 0.05,
            servers: 100,
        };
        assert_eq!(stats.criterion(Condition::Typical), 0.2);
        assert_eq!(stats.criterion(Condition::WorstCase), 0.05);
    }
}
