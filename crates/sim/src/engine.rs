//! The time-stepped simulation engine.
//!
//! Advances the world at 1 Hz: servers draw power with node-manager
//! settling, the control plane senses every second and re-budgets every
//! control period, breaker thermal models integrate stress, and scripted
//! [`Event`]s inject failures or workload changes. Everything observable is
//! recorded into a [`Trace`] for the figure-regeneration harnesses.

use std::collections::HashMap;
use std::sync::Arc;

use capmaestro_core::obs::{names, PhaseTimer};
use capmaestro_core::oplog::ReconcilePlan;
use capmaestro_core::par::par_map;
use capmaestro_core::plane::{ControlPlane, Farm, RoundReport, SenseBuffer};
use capmaestro_server::{SenseInterposer, SensorSnapshot, ServerRef};
use capmaestro_topology::{BreakerSim, BreakerState, FeedId, NodeId, Phase, ServerId, SupplyIndex, Topology};
use capmaestro_units::{Seconds, Watts};

use crate::faults::{ChaosAction, ChaosPlan, FaultKind, FaultLayer, FlapSpec};
use crate::scenarios::Rig;

/// Engine timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Seconds between control rounds (8 in the paper).
    pub control_period_s: u64,
    /// Whether the control plane runs at all. Disabling it simulates a
    /// data center *without* power capping — the baseline whose breakers
    /// trip during failures (the counterfactual behind Fig. 9's
    /// no-capping bar).
    pub control_enabled: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            control_period_s: 8,
            control_enabled: true,
        }
    }
}

/// A scripted event applied at a scheduled simulation second.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A whole power feed dies: its control trees are dropped and every
    /// supply on it fails over to the survivors.
    FailFeed(FeedId),
    /// Replace the per-tree root budgets (order matches the plane's
    /// remaining trees).
    SetRootBudgets(Vec<Watts>),
    /// Change one server's offered demand.
    SetDemand(ServerId, Watts),
    /// Change one server's priority (the job-scheduler hook of §7).
    SetPriority(ServerId, capmaestro_topology::Priority),
    /// Fail a single power supply of one server (the load shifts to its
    /// siblings; §3.1's second cause of feed imbalance).
    FailSupply(ServerId, SupplyIndex),
    /// Put a supply into (or out of) cold standby — the hot-spare mode of
    /// §3.1 \[34\].
    SetStandby(ServerId, SupplyIndex, bool),
    /// A failed feed returns to service: its control trees resume, the
    /// supplies on it are repaired, and servers that went dark power back
    /// up.
    RestoreFeed(FeedId),
    /// Inject a telemetry fault on one server's sense path (the physics
    /// is untouched — only what the control plane sees).
    InjectFault(ServerId, FaultKind),
    /// Clear any telemetry fault on one server.
    ClearFault(ServerId),
    /// Start flapping the telemetry feed: readings from every server on
    /// the power feed cycle between delivered and dropped per the spec.
    FlapTelemetry(FeedId, FlapSpec),
    /// Stop a flapping telemetry feed.
    StopFlap(FeedId),
}

/// Everything the engine recorded, one sample per simulated second.
///
/// The per-series maps (`server_power`, `supply_power`, `throttle`,
/// `dc_cap`, `node_load`) are filled from batched append buffers that the
/// engine flushes when a run completes (or after every [`Engine::step`]);
/// the event logs (`trips`, `lost_servers`, `stranded`) and `seconds` are
/// always live.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Total AC power per server.
    pub server_power: HashMap<ServerId, Vec<f64>>,
    /// Per-supply AC power.
    pub supply_power: HashMap<(ServerId, SupplyIndex), Vec<f64>>,
    /// Power-cap throttling level per server.
    pub throttle: HashMap<ServerId, Vec<f64>>,
    /// DC cap commanded per server (carried forward between rounds).
    pub dc_cap: HashMap<ServerId, Vec<f64>>,
    /// Load at every limited distribution node, keyed by `(feed, node)`.
    pub node_load: HashMap<(FeedId, NodeId), Vec<f64>>,
    /// Human-readable names for the recorded nodes.
    pub node_names: HashMap<(FeedId, NodeId), String>,
    /// Breaker trip events: `(second, feed, node name)`.
    pub trips: Vec<(u64, FeedId, String)>,
    /// Servers that lost all input power: `(second, server)`.
    pub lost_servers: Vec<(u64, ServerId)>,
    /// Stranded power reclaimed per control round: `(second, watts)`.
    pub stranded: Vec<(u64, f64)>,
    /// Seconds simulated.
    pub seconds: u64,
}

impl Trace {
    /// The recorded series for a node found by device name (first match
    /// across feeds).
    pub fn node_series(&self, name: &str) -> Option<&[f64]> {
        let key = self
            .node_names
            .iter()
            .find(|(_, n)| n.as_str() == name)?
            .0;
        self.node_load.get(key).map(|v| v.as_slice())
    }

    /// The recorded series for a node found by feed and device name.
    pub fn node_series_on(&self, feed: FeedId, name: &str) -> Option<&[f64]> {
        let key = self
            .node_names
            .iter()
            .find(|((f, _), n)| *f == feed && n.as_str() == name)?
            .0;
        self.node_load.get(key).map(|v| v.as_slice())
    }

    /// Energy one server consumed over the trace, in watt-hours.
    pub fn server_energy_wh(&self, server: ServerId) -> f64 {
        self.server_power
            .get(&server)
            .map(|s| s.iter().sum::<f64>() / 3600.0)
            .unwrap_or(0.0)
    }

    /// Total energy the fleet consumed over the trace, in watt-hours.
    pub fn total_energy_wh(&self) -> f64 {
        self.server_power
            .values()
            .map(|s| s.iter().sum::<f64>() / 3600.0)
            .sum()
    }

    /// Mean of the last `n` samples of a series. The window is clamped
    /// to the series length, and a degenerate window (empty series *or*
    /// `n == 0`) yields `0.0` rather than the `0.0 / 0` NaN a naive
    /// division would produce.
    pub fn tail_mean(series: &[f64], n: usize) -> f64 {
        let n = n.min(series.len());
        if n == 0 {
            return 0.0;
        }
        series[series.len() - n..].iter().sum::<f64>() / n as f64
    }
}

/// Static index of the per-second sense/accumulate hot path, built once
/// at engine construction. The power topology and the farm's membership
/// never change mid-run, so the outlet order, each outlet's position in
/// the farm's snapshot sweep, the set of loaded `(feed, node, phase)`
/// keys, and each key's contributing outlets are all precomputed —
/// the per-second loop then does indexed sums instead of re-walking
/// paths and re-hashing keys every simulated second.
#[derive(Debug)]
struct LoadIndex {
    /// Per outlet, feed-major in outlet order: the farm snapshot slot of
    /// its server (`None` when the farm has no such server) and the
    /// supply index.
    outlets: Vec<(Option<u32>, u8)>,
    /// Key → slot in each second's load vector, assigned in first-touch
    /// order over the outlets.
    slots: HashMap<(FeedId, NodeId, Phase), usize>,
    /// Per key: the contributing outlet indices, in outlet order. Each
    /// key's loads are summed in exactly this order, which keeps the
    /// parallel accumulation bit-identical to the sequential push-up.
    contributors: Vec<Vec<u32>>,
}

impl LoadIndex {
    fn build(topology: &Topology, farm: &Farm) -> Self {
        let server_slot: HashMap<ServerId, u32> = farm
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (id, i as u32))
            .collect();
        let mut outlets = Vec::new();
        let mut slots = HashMap::new();
        let mut contributors: Vec<Vec<u32>> = Vec::new();
        for graph in topology.feeds() {
            for (outlet_node, outlet) in graph.outlets() {
                let oi = outlets.len() as u32;
                outlets.push((
                    server_slot.get(&outlet.server).copied(),
                    outlet.supply.index() as u8,
                ));
                for node in graph.path_to_root(outlet_node) {
                    let key = (graph.feed(), node, outlet.phase);
                    let next = contributors.len();
                    let slot = *slots.entry(key).or_insert(next);
                    if slot == next {
                        contributors.push(Vec::new());
                    }
                    contributors[slot].push(oi);
                }
            }
        }
        LoadIndex {
            outlets,
            slots,
            contributors,
        }
    }

    /// The load at a key this second, if any outlet feeds it.
    fn load_at(
        &self,
        loads: &[Watts],
        key: (FeedId, NodeId, Phase),
    ) -> Option<Watts> {
        self.slots.get(&key).map(|&slot| loads[slot])
    }
}

/// Batched trace recording: per-second samples land in dense,
/// slot-indexed append buffers (pure `Vec` pushes — no hashing on the
/// per-second path), which are flushed into the [`Trace`] maps once per
/// run (or per manual [`Engine::step`]). The slot layout mirrors the
/// farm's snapshot sweep order and the topology's limited nodes, both of
/// which are fixed for the engine's lifetime; if either ever changes the
/// recorder flushes and relearns the layout, so series stay keyed
/// correctly.
#[derive(Debug, Default)]
struct TraceRecorder {
    ready: bool,
    /// Server order of the snapshot sweep.
    server_ids: Vec<ServerId>,
    /// Supplies per server (length of its `supply_ac`).
    supply_counts: Vec<usize>,
    /// Prefix offsets of each server's supplies in `supply_power`.
    supply_offsets: Vec<usize>,
    server_power: Vec<Vec<f64>>,
    throttle: Vec<Vec<f64>>,
    dc_cap: Vec<Vec<f64>>,
    supply_power: Vec<Vec<f64>>,
    /// Limited nodes, in feed-major topology order.
    node_keys: Vec<(FeedId, NodeId)>,
    /// Per limited node: the `LoadIndex` slots of its present phases, in
    /// `Phase::ALL` order — summing in this order keeps the aggregate
    /// bit-identical to the per-phase `filter_map` it replaces.
    node_phase_slots: Vec<Vec<usize>>,
    node_load: Vec<Vec<f64>>,
}

impl TraceRecorder {
    /// Whether the cached layout still matches this second's sweep.
    fn matches(&self, snaps: &[(ServerId, SensorSnapshot)]) -> bool {
        self.ready
            && self.server_ids.len() == snaps.len()
            && snaps.iter().enumerate().all(|(i, (id, snap))| {
                self.server_ids[i] == *id
                    && self.supply_counts[i] == snap.supply_ac.len()
            })
    }

    /// Relearns the slot layout from this second's sweep and the static
    /// topology, registering node names on first touch exactly as the
    /// unbatched path did.
    fn rebuild(
        &mut self,
        snaps: &[(ServerId, SensorSnapshot)],
        topology: &Topology,
        load_index: &LoadIndex,
        node_names: &mut HashMap<(FeedId, NodeId), String>,
    ) {
        self.server_ids.clear();
        self.supply_counts.clear();
        self.supply_offsets.clear();
        let mut supplies_total = 0;
        for (id, snap) in snaps {
            self.server_ids.push(*id);
            self.supply_counts.push(snap.supply_ac.len());
            self.supply_offsets.push(supplies_total);
            supplies_total += snap.supply_ac.len();
        }
        self.server_power.resize_with(snaps.len(), Vec::new);
        self.throttle.resize_with(snaps.len(), Vec::new);
        self.dc_cap.resize_with(snaps.len(), Vec::new);
        self.supply_power.resize_with(supplies_total, Vec::new);

        self.node_keys.clear();
        self.node_phase_slots.clear();
        self.node_load.clear();
        for graph in topology.feeds() {
            for node in graph.iter() {
                if graph.device(node).effective_limit().is_none() {
                    continue;
                }
                let key = (graph.feed(), node);
                self.node_keys.push(key);
                self.node_phase_slots.push(
                    Phase::ALL
                        .iter()
                        .filter_map(|&p| {
                            load_index.slots.get(&(key.0, key.1, p)).copied()
                        })
                        .collect(),
                );
                self.node_load.push(Vec::new());
                node_names
                    .entry(key)
                    .or_insert_with(|| graph.device(node).name().to_string());
            }
        }
        self.ready = true;
    }

    /// Appends one second of samples. Nothing here hashes or allocates
    /// beyond amortized series growth.
    fn push_second(
        &mut self,
        snaps: &[(ServerId, SensorSnapshot)],
        last_caps: &HashMap<ServerId, f64>,
        loads: &[Watts],
    ) {
        for (slot, (id, snap)) in snaps.iter().enumerate() {
            self.server_power[slot].push(snap.total_ac.as_f64());
            self.throttle[slot].push(snap.throttle.as_f64());
            self.dc_cap[slot]
                .push(last_caps.get(id).copied().unwrap_or(f64::NAN));
            let base = self.supply_offsets[slot];
            for (i, p) in snap.supply_ac.iter().enumerate() {
                self.supply_power[base + i].push(p.as_f64());
            }
        }
        for (k, slots) in self.node_phase_slots.iter().enumerate() {
            let mut load = Watts::ZERO;
            for &slot in slots {
                load += loads[slot];
            }
            self.node_load[k].push(load.as_f64());
        }
    }

    /// Drains every pending buffer into the trace maps (append-only; a
    /// key whose buffer is empty is left untouched, so flushing twice is
    /// a no-op and no spurious empty series appear).
    fn flush(&mut self, trace: &mut Trace) {
        if !self.ready {
            return;
        }
        for (slot, id) in self.server_ids.iter().enumerate() {
            if !self.server_power[slot].is_empty() {
                trace
                    .server_power
                    .entry(*id)
                    .or_default()
                    .append(&mut self.server_power[slot]);
            }
            if !self.throttle[slot].is_empty() {
                trace
                    .throttle
                    .entry(*id)
                    .or_default()
                    .append(&mut self.throttle[slot]);
            }
            if !self.dc_cap[slot].is_empty() {
                trace
                    .dc_cap
                    .entry(*id)
                    .or_default()
                    .append(&mut self.dc_cap[slot]);
            }
            let base = self.supply_offsets[slot];
            for i in 0..self.supply_counts[slot] {
                if !self.supply_power[base + i].is_empty() {
                    trace
                        .supply_power
                        .entry((*id, SupplyIndex(i as u8)))
                        .or_default()
                        .append(&mut self.supply_power[base + i]);
                }
            }
        }
        for (k, key) in self.node_keys.iter().enumerate() {
            if !self.node_load[k].is_empty() {
                trace
                    .node_load
                    .entry(*key)
                    .or_default()
                    .append(&mut self.node_load[k]);
            }
        }
    }
}

/// The time-stepped simulation engine.
///
/// # Examples
///
/// ```
/// use capmaestro_sim::engine::Engine;
/// use capmaestro_sim::scenarios::{priority_rig, RigConfig};
///
/// let rig = priority_rig(RigConfig::table2());
/// let mut engine = Engine::new(rig);
/// let trace = engine.run(120);
/// assert_eq!(trace.seconds, 120);
/// ```
#[derive(Debug)]
pub struct Engine {
    topology: Topology,
    farm: Farm,
    plane: ControlPlane,
    config: EngineConfig,
    breakers: Vec<((FeedId, NodeId, Phase), BreakerSim)>,
    events: Vec<(u64, Event)>,
    time_s: u64,
    trace: Trace,
    last_caps: HashMap<ServerId, f64>,
    load_index: LoadIndex,
    faults: FaultLayer,
    /// Route sensing through the fault layer even when it is quiet
    /// (differential-test knob proving the slow path is a true no-op).
    force_interposition: bool,
    recorder: TraceRecorder,
    /// The readings actually delivered to the control plane on the last
    /// interposed second (reusable buffer; see
    /// [`Engine::delivered_readings`]).
    delivered: Vec<(ServerId, SensorSnapshot)>,
    /// Whether the last stepped second sensed through the fault layer
    /// (i.e. `delivered` describes it).
    delivered_valid: bool,
    /// Root budgets staged by [`Engine::stage_root_budgets`], applied at
    /// the next control-round boundary (the serving subsystem's
    /// `POST /budget` path).
    staged_budgets: Option<Vec<Watts>>,
    /// Reusable snapshot buffer for the per-second physics sweep.
    /// Incrementally synced from the farm's slab, so a quiescent fleet
    /// costs no snapshot copies and no allocations.
    snaps_buf: SenseBuffer,
    /// Reusable snapshot buffer for the interposed 1 Hz sense path
    /// (kept separate from `snaps_buf` so each buffer tracks its own
    /// sync generation against the slab).
    sense_buf: SenseBuffer,
}

impl Engine {
    /// Creates an engine over a rig with default timing.
    pub fn new(rig: Rig) -> Self {
        Engine::with_config(rig, EngineConfig::default())
    }

    /// Creates an engine with explicit timing.
    pub fn with_config(rig: Rig, config: EngineConfig) -> Self {
        let Rig {
            topology,
            farm,
            plane,
        } = rig;
        // One thermal model per (breaker, phase) that actually carries
        // outlets of that phase.
        let mut breakers = Vec::new();
        for graph in topology.feeds() {
            // Phases present under each node.
            let mut phases: HashMap<NodeId, [bool; 3]> = HashMap::new();
            for (outlet_node, outlet) in graph.outlets() {
                for node in graph.path_to_root(outlet_node) {
                    phases.entry(node).or_default()[outlet.phase.index()] = true;
                }
            }
            for node in graph.iter() {
                if let Some(cb) = graph.device(node).breaker() {
                    let present = phases.get(&node).copied().unwrap_or_default();
                    for phase in Phase::ALL {
                        if present[phase.index()] {
                            breakers.push((
                                (graph.feed(), node, phase),
                                BreakerSim::new(*cb),
                            ));
                        }
                    }
                }
            }
        }
        let load_index = LoadIndex::build(&topology, &farm);
        Engine {
            topology,
            farm,
            plane,
            config,
            breakers,
            events: Vec::new(),
            time_s: 0,
            trace: Trace::default(),
            last_caps: HashMap::new(),
            load_index,
            faults: FaultLayer::new(0),
            force_interposition: false,
            recorder: TraceRecorder::default(),
            delivered: Vec::new(),
            delivered_valid: false,
            staged_budgets: None,
            snaps_buf: SenseBuffer::new(),
            sense_buf: SenseBuffer::new(),
        }
    }

    /// Sets how many threads the per-second hot path (stepping, sensing,
    /// load accumulation, trace recording, and the control plane's
    /// estimate phase) fans out across. The simulation is bit-identical
    /// for every thread count; see [`Farm::set_parallelism`].
    pub fn set_parallelism(&mut self, threads: usize) -> &mut Self {
        self.farm.set_parallelism(threads);
        self
    }

    /// Enables or disables the farm's event-driven stepping (on by
    /// default). Disabling forces the full-rebuild sweep every second —
    /// the differential-test baseline; trajectories are bit-identical
    /// either way. See [`Farm::set_event_driven`].
    pub fn set_event_driven(&mut self, enabled: bool) -> &mut Self {
        self.farm.set_event_driven(enabled);
        self
    }

    /// Schedules an event at an absolute simulation second.
    pub fn schedule(&mut self, at_s: u64, event: Event) -> &mut Self {
        self.events.push((at_s, event));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// Schedules every episode of a chaos plan as inject/clear event
    /// pairs. An empty plan schedules nothing — the run stays
    /// bit-identical to one that never saw the plan.
    pub fn schedule_chaos(&mut self, plan: &ChaosPlan) -> &mut Self {
        for episode in plan.episodes() {
            match &episode.action {
                ChaosAction::Fault(server, kind) => {
                    self.schedule(
                        episode.start_s,
                        Event::InjectFault(*server, kind.clone()),
                    );
                    self.schedule(episode.end_s, Event::ClearFault(*server));
                }
                ChaosAction::Flap(feed, spec) => {
                    self.schedule(episode.start_s, Event::FlapTelemetry(*feed, *spec));
                    self.schedule(episode.end_s, Event::StopFlap(*feed));
                }
            }
        }
        self
    }

    /// Replaces the fault layer (e.g. to reseed its noise stream).
    pub fn set_fault_layer(&mut self, layer: FaultLayer) -> &mut Self {
        self.faults = layer;
        self
    }

    /// The fault layer, for inspection (active faults, injection totals).
    pub fn fault_layer(&self) -> &FaultLayer {
        &self.faults
    }

    /// Forces sensing through the interposition path even with no faults
    /// active. Differential tests use this to prove the slow path is
    /// bit-identical to the direct one.
    pub fn set_force_interposition(&mut self, force: bool) -> &mut Self {
        self.force_interposition = force;
        self
    }

    /// The current simulation second (seconds fully stepped so far).
    pub fn now_s(&self) -> u64 {
        self.time_s
    }

    /// Seconds between control rounds (8 in the paper).
    pub fn control_period_s(&self) -> u64 {
        self.config.control_period_s
    }

    /// Stages replacement per-tree root budgets to be applied at the
    /// *next* control-round boundary, not mid-period — the thread-safe
    /// seam behind the serving subsystem's `POST /budget`. A later call
    /// before the boundary replaces the staged set. Staged budgets whose
    /// count no longer matches the plane's live trees (a feed failed in
    /// between) are discarded rather than applied.
    pub fn stage_root_budgets(&mut self, budgets: Vec<Watts>) -> &mut Self {
        self.staged_budgets = Some(budgets);
        self
    }

    /// Powers one server on or off outside the feed-failure machinery —
    /// the operator drain/undrain seam. Value-compared, so repeating the
    /// same state is free under event-driven stepping. Returns `false`
    /// for servers the farm does not hold.
    pub fn set_server_powered(&mut self, server: ServerId, powered: bool) -> bool {
        match self.farm.get_mut(server) {
            Some(mut srv) => {
                srv.set_powered(powered);
                true
            }
            None => false,
        }
    }

    /// Applies a reconciliation plan from the operator event log:
    /// budgets are *staged* (they land inside the next [`Engine::step`]
    /// at the round boundary, exactly like `POST /budget` always has),
    /// while priorities, drains, and allocator switches apply to the
    /// plane immediately so the same round allocates with them. Returns
    /// the number of actions taken. An empty plan does nothing at all —
    /// the bit-identity guarantee the reconciler rests on.
    pub fn apply_reconcile_plan(&mut self, plan: &ReconcilePlan) -> usize {
        let mut applied = 0;
        if let Some(budgets) = &plan.root_budgets {
            self.stage_root_budgets(budgets.clone());
            applied += 1;
        }
        for &(server, priority) in &plan.priorities {
            match priority {
                Some(p) => self.plane.set_priority(server, p),
                None => self.plane.clear_priority(server),
            }
            applied += 1;
        }
        for &(server, powered) in &plan.power {
            if self.set_server_powered(server, powered) {
                applied += 1;
            }
        }
        if let Some(kind) = plan.allocator {
            self.plane.set_allocator(kind);
            applied += 1;
        }
        applied
    }

    /// Drops everything recorded so far and resets the trace to empty
    /// (series layouts are relearned on the next step). A long-running
    /// daemon calls this periodically so an unbounded serving run does
    /// not accumulate an unbounded trace.
    pub fn reset_trace(&mut self) {
        self.recorder = TraceRecorder::default();
        let seconds = self.time_s;
        self.trace = Trace::default();
        self.trace.seconds = seconds;
    }

    /// The most recent control round's decisions, if any round ran.
    pub fn last_round_report(&self) -> Option<&RoundReport> {
        self.plane.last_report()
    }

    /// The sensor readings that were actually delivered to the control
    /// plane on the last stepped second, when that second sensed through
    /// the fault layer. `None` on quiet seconds (delivered ≡ physical, so
    /// cross-checking them is vacuous). The feed-level metering audit
    /// reconciles these against the physical farm state.
    pub fn delivered_readings(&self) -> Option<&[(ServerId, SensorSnapshot)]> {
        self.delivered_valid.then_some(self.delivered.as_slice())
    }

    /// The farm (e.g. for post-run inspection).
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// The control plane.
    pub fn plane(&self) -> &ControlPlane {
        &self.plane
    }

    /// Mutable access to the control plane — the differential-test knob
    /// that lets a harness drop the plane's incremental round caches
    /// between manually stepped seconds.
    pub fn plane_mut(&mut self) -> &mut ControlPlane {
        &mut self.plane
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn apply_event(&mut self, event: Event) {
        match event {
            Event::FailFeed(feed) => {
                self.plane.fail_feed(feed);
                // Fail every supply plugged into the dead feed. A server
                // whose *last* working supply was on that feed goes dark.
                let attachments: Vec<(ServerId, SupplyIndex)> = self
                    .topology
                    .feed(feed)
                    .map(|g| {
                        g.outlets()
                            .map(|(_, o)| (o.server, o.supply))
                            .collect()
                    })
                    .unwrap_or_default();
                for (server, supply) in attachments {
                    if let Some(mut srv) = self.farm.get_mut(server) {
                        let bank = srv.bank_mut();
                        if bank.working_count() > 1 {
                            bank.fail_supply(supply.index());
                        } else {
                            srv.set_powered(false);
                            self.trace.lost_servers.push((self.time_s, server));
                        }
                    }
                }
            }
            Event::SetRootBudgets(budgets) => {
                self.plane.set_root_budgets(budgets);
            }
            Event::SetDemand(server, demand) => {
                if let Some(mut srv) = self.farm.get_mut(server) {
                    srv.set_offered_demand(demand);
                }
            }
            Event::SetPriority(server, priority) => {
                self.plane.set_priority(server, priority);
            }
            Event::FailSupply(server, supply) => {
                if let Some(mut srv) = self.farm.get_mut(server) {
                    let bank = srv.bank_mut();
                    if bank.working_count() > 1 {
                        bank.fail_supply(supply.index());
                    } else {
                        srv.set_powered(false);
                        self.trace.lost_servers.push((self.time_s, server));
                    }
                }
            }
            Event::SetStandby(server, supply, standby) => {
                if let Some(mut srv) = self.farm.get_mut(server) {
                    srv.bank_mut().set_standby(supply.index(), standby);
                }
            }
            Event::RestoreFeed(feed) => {
                self.plane.restore_feed(feed);
                let attachments: Vec<(ServerId, SupplyIndex)> = self
                    .topology
                    .feed(feed)
                    .map(|g| {
                        g.outlets()
                            .map(|(_, o)| (o.server, o.supply))
                            .collect()
                    })
                    .unwrap_or_default();
                for (server, supply) in attachments {
                    if let Some(mut srv) = self.farm.get_mut(server) {
                        srv.bank_mut().repair_supply(supply.index());
                        if !srv.is_powered() {
                            srv.set_powered(true);
                        }
                    }
                }
                // Breakers on the restored feed start cool and closed.
                for ((f, _, _), sim) in &mut self.breakers {
                    if *f == feed {
                        sim.reset();
                    }
                }
            }
            Event::InjectFault(server, kind) => {
                self.plane
                    .recorder()
                    .counter_add(names::SIM_FAULT_EVENTS_TOTAL, 1);
                self.faults.inject(server, kind);
            }
            Event::ClearFault(server) => {
                self.faults.clear(server);
            }
            Event::FlapTelemetry(feed, spec) => {
                self.plane
                    .recorder()
                    .counter_add(names::SIM_FAULT_EVENTS_TOTAL, 1);
                let mut members: Vec<ServerId> = self
                    .topology
                    .feed(feed)
                    .map(|g| g.outlets().map(|(_, o)| o.server).collect())
                    .unwrap_or_default();
                members.sort_unstable();
                members.dedup();
                self.faults.start_flap(feed, members, spec, self.time_s);
            }
            Event::StopFlap(feed) => {
                self.faults.stop_flap(feed);
            }
        }
    }

    /// Per-key load right now, indexed by [`LoadIndex`] slot: the sum of
    /// supply powers at outlet descendants, kept per phase because breaker
    /// ratings are per phase. The per-outlet loads are cheap snapshot
    /// lookups; the per-key sums fan out across threads (keys are
    /// disjoint, and each key sums its contributions in outlet order, so
    /// the result is bit-identical for every thread count).
    fn node_loads(&self, snaps: &[(ServerId, SensorSnapshot)]) -> Vec<Watts> {
        let outlet_loads: Vec<Watts> = self
            .load_index
            .outlets
            .iter()
            .map(|&(slot, supply)| {
                slot.and_then(|s| {
                    snaps[s as usize].1.supply_ac.get(supply as usize).copied()
                })
                .unwrap_or(Watts::ZERO)
            })
            .collect();
        par_map(
            &self.load_index.contributors,
            self.farm.parallelism(),
            |outlets| {
                let mut total = Watts::ZERO;
                for &oi in outlets {
                    total += outlet_loads[oi as usize];
                }
                total
            },
        )
    }

    fn record(&mut self, snaps: &[(ServerId, SensorSnapshot)], loads: &[Watts]) {
        // Per-server and per-node series go into the recorder's dense
        // append buffers — one plain push per sample, no hashing. The
        // displayed node load aggregates the phases (safety checks use
        // the per-phase values against the per-phase ratings).
        if !self.recorder.matches(snaps) {
            self.recorder.flush(&mut self.trace);
            self.recorder.rebuild(
                snaps,
                &self.topology,
                &self.load_index,
                &mut self.trace.node_names,
            );
        }
        self.recorder.push_second(snaps, &self.last_caps, loads);
    }

    /// Runs the simulation for `seconds`, returning the accumulated trace.
    /// May be called repeatedly to continue a run.
    pub fn run(&mut self, seconds: u64) -> Trace {
        self.run_observed(seconds, |_| {})
    }

    /// Like [`Engine::run`], but calls `observer` after every fully
    /// stepped second — the hook the chaos soak harness uses to audit
    /// invariants against the live engine state each second.
    pub fn run_observed(
        &mut self,
        seconds: u64,
        mut observer: impl FnMut(&Engine),
    ) -> Trace {
        for _ in 0..seconds {
            self.step_second();
            observer(self);
        }
        self.recorder.flush(&mut self.trace);
        self.trace.clone()
    }

    /// Advances the simulation by exactly one second and flushes the
    /// recorded series — the manual-stepping alternative to
    /// [`Engine::run`] for harnesses that mutate engine internals (e.g.
    /// [`Engine::plane_mut`]) between seconds.
    pub fn step(&mut self) {
        self.step_second();
        self.recorder.flush(&mut self.trace);
    }

    /// Advances the world by one second: events, sensing (through the
    /// fault layer when it is active), control, physics, breakers,
    /// recording.
    fn step_second(&mut self) {
        let recorder = Arc::clone(self.plane.recorder());
        // Publish the logical clock so trace events carry simulated (not
        // wall) time; a no-op on every recorder except the trace one.
        recorder.trace_set_time_us(self.time_s.saturating_mul(1_000_000));
        recorder.counter_add(names::SIM_STEPS_TOTAL, 1);
        let _step_timer = PhaseTimer::start(&*recorder, names::SIM_STEP_SECONDS);
        {
            // Apply due events.
            while let Some((t, _)) = self.events.first() {
                if *t > self.time_s {
                    break;
                }
                let (_, event) = self.events.remove(0);
                self.apply_event(event);
            }

            // Sense (1 Hz) and control (every period). Telemetry delivery
            // runs through the fault layer whenever it could act; the
            // quiet path senses directly (identical result, no per-reading
            // dispatch).
            self.faults.tick(self.time_s);
            self.delivered.clear();
            self.delivered_valid = false;
            if self.faults.is_quiet() && !self.force_interposition {
                self.plane.sample(&mut self.farm);
            } else {
                let mut sensed = std::mem::take(&mut self.sense_buf);
                self.farm.sense_into(&mut sensed);
                let faults = &mut self.faults;
                let now_s = self.time_s;
                self.delivered.extend(
                    sensed.entries().iter().filter_map(|(id, raw)| {
                        faults
                            .intercept(now_s, *id, raw.clone())
                            .map(|snap| (*id, snap))
                    }),
                );
                self.sense_buf = sensed;
                self.plane.record_snapshots(&self.farm, &self.delivered);
                self.delivered_valid = true;
            }
            if self.config.control_enabled && self.time_s.is_multiple_of(self.config.control_period_s) {
                if let Some(budgets) = self.staged_budgets.take() {
                    if budgets.len() == self.plane.trees().len() {
                        self.plane.set_root_budgets(budgets);
                    }
                }
                let report = self.plane.round(&mut self.farm);
                for (id, cap) in &report.dc_caps {
                    self.last_caps.insert(*id, cap.as_f64());
                }
                self.trace
                    .stranded
                    .push((self.time_s, report.stranded_reclaimed.as_f64()));
            }

            // Physics. One fused sweep steps every server and reads its
            // sensors; the snapshots feed the load accumulation, the
            // breaker models, and the trace without re-sensing. Each
            // breaker's thermal model runs on its own phase's load
            // (ratings are per phase). The sweep writes into a persistent
            // buffer that only re-copies snapshots of servers the slab
            // marked changed — a converged fleet costs no copies.
            let mut snaps = std::mem::take(&mut self.snaps_buf);
            self.farm.step_and_sense_into(Seconds::new(1.0), &mut snaps);
            let loads = self.node_loads(snaps.entries());
            let mut tripped_now: Vec<(FeedId, NodeId, Phase)> = Vec::new();
            for ((feed, node, phase), sim) in &mut self.breakers {
                let load = self
                    .load_index
                    .load_at(&loads, (*feed, *node, *phase))
                    .unwrap_or(Watts::ZERO);
                let before = sim.state();
                let after = sim.step(load, Seconds::new(1.0));
                if before == BreakerState::Closed && after == BreakerState::Tripped {
                    self.trace.trips.push((
                        self.time_s,
                        *feed,
                        format!(
                            "{} {phase}",
                            self.topology
                                .feed(*feed)
                                .map(|g| g.device(*node).name().to_string())
                                .unwrap_or_default()
                        ),
                    ));
                    tripped_now.push((*feed, *node, *phase));
                }
            }
            // A tripped breaker interrupts downstream delivery: every
            // outlet of that phase beneath it loses its supply; a server
            // whose last working supply died goes dark (§2.1's
            // "downstream power delivery is interrupted, potentially
            // causing server power outage").
            let mut resensed: Vec<ServerId> = Vec::new();
            for (feed, node, phase) in tripped_now.drain(..) {
                let victims: Vec<(ServerId, SupplyIndex)> = self
                    .topology
                    .feed(feed)
                    .map(|g| {
                        g.outlets()
                            .filter(|(outlet_node, o)| {
                                o.phase == phase
                                    && g.path_to_root(*outlet_node).contains(&node)
                            })
                            .map(|(_, o)| (o.server, o.supply))
                            .collect()
                    })
                    .unwrap_or_default();
                for (server, supply) in victims {
                    if let Some(mut srv) = self.farm.get_mut(server) {
                        let bank = srv.bank_mut();
                        if bank.working_count() > 1 {
                            bank.fail_supply(supply.index());
                        } else {
                            srv.set_powered(false);
                            self.trace.lost_servers.push((self.time_s, server));
                        }
                        if !resensed.contains(&server) {
                            resensed.push(server);
                        }
                    }
                }
            }
            // Trips changed the victims' PSU state after the sweep;
            // refresh their snapshots so the trace records post-trip
            // sensor readings, exactly as a fresh sense would.
            if !resensed.is_empty() {
                for (id, snap) in snaps.entries_mut().iter_mut() {
                    if resensed.contains(id) {
                        if let Some(server) = self.farm.get(*id) {
                            *snap = server.sense();
                        }
                    }
                }
            }

            // Record.
            self.record(snaps.entries(), &loads);
            self.snaps_buf = snaps;
            self.time_s += 1;
            self.trace.seconds = self.time_s;
        }
    }

    /// Runs one control round immediately (outside the 1 Hz loop) and
    /// returns its decisions — handy for reading converged steady-state
    /// budgets after [`Engine::run`].
    pub fn run_control_round(&mut self) -> capmaestro_core::plane::RoundReport {
        self.plane.sample(&mut self.farm);
        self.plane.round(&mut self.farm).clone()
    }

    /// Immutable view of everything recorded so far. The event logs
    /// (`trips`, `lost_servers`, `stranded`) are live every second; the
    /// per-series maps are complete at [`Engine::run`] /
    /// [`Engine::run_observed`] boundaries and after [`Engine::step`].
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Direct access to a server for assertions.
    pub fn server(&self, id: ServerId) -> Option<ServerRef<'_>> {
        self.farm.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{priority_rig, stranded_rig, RigConfig};
    use capmaestro_core::policy::PolicyKind;
    use std::collections::BTreeSet;

    /// Strict (bitwise for NaN-capable series) trace equality.
    fn assert_traces_identical(a: &Trace, b: &Trace) {
        assert_eq!(a.seconds, b.seconds);
        assert_eq!(a.server_power, b.server_power);
        assert_eq!(a.supply_power, b.supply_power);
        assert_eq!(a.throttle, b.throttle);
        assert_eq!(a.node_load, b.node_load);
        assert_eq!(a.trips, b.trips);
        assert_eq!(a.lost_servers, b.lost_servers);
        assert_eq!(a.stranded, b.stranded);
        // dc_cap may hold NaN before a server's first round; compare bits.
        assert_eq!(
            a.dc_cap.keys().collect::<BTreeSet<_>>(),
            b.dc_cap.keys().collect::<BTreeSet<_>>()
        );
        for (id, va) in &a.dc_cap {
            let vb = &b.dc_cap[id];
            assert_eq!(va.len(), vb.len());
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "dc cap diverged for {id:?}");
            }
        }
    }

    /// Regression: `tail_mean` over a degenerate window must be `0.0`,
    /// never NaN. A window of `n == 0` used to divide by zero, and a
    /// window longer than a short history must clamp to what exists.
    #[test]
    fn tail_mean_handles_short_history_and_zero_window() {
        assert_eq!(Trace::tail_mean(&[], 10), 0.0);
        assert_eq!(Trace::tail_mean(&[], 0), 0.0);
        let short = [4.0, 8.0];
        // n == 0 on a non-empty series: the old code returned 0.0 / 0.
        let zero_window = Trace::tail_mean(&short, 0);
        assert!(
            zero_window == 0.0 && !zero_window.is_nan(),
            "zero window must be 0.0, got {zero_window}"
        );
        // Window longer than the history clamps to the full series.
        assert_eq!(Trace::tail_mean(&short, 5), 6.0);
        assert_eq!(Trace::tail_mean(&short, 1), 8.0);
    }

    #[test]
    fn empty_chaos_plan_is_bit_identical_to_plain_run() {
        // The plain run never touches the fault machinery; the chaos run
        // schedules an empty plan AND routes every reading through the
        // interposition path. Bit-identical traces prove the fault layer
        // is a true no-op when empty.
        let mut plain = Engine::new(priority_rig(RigConfig::table2()));
        let reference = plain.run(200);
        let mut chaos = Engine::new(priority_rig(RigConfig::table2()));
        chaos.schedule_chaos(&crate::faults::ChaosPlan::empty());
        chaos.set_force_interposition(true);
        let observed = chaos.run(200);
        assert_traces_identical(&reference, &observed);

        // Same property on the dual-feed rig with SPO on.
        let mut plain = Engine::new(stranded_rig(RigConfig::table3()));
        let reference = plain.run(120);
        let mut chaos = Engine::new(stranded_rig(RigConfig::table3()));
        chaos.schedule_chaos(&crate::faults::ChaosPlan::empty());
        chaos.set_force_interposition(true);
        let observed = chaos.run(120);
        assert_traces_identical(&reference, &observed);
    }

    #[test]
    fn dropped_telemetry_server_degrades_to_fail_safe_and_recovers() {
        let rig = priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let mut engine = Engine::new(rig);
        engine.schedule(80, Event::InjectFault(sa, FaultKind::DropReading));
        engine.schedule(240, Event::ClearFault(sa));
        let trace = engine.run(440);
        // Healthy, high-priority SA gets its full 420 W demand.
        let before = Trace::tail_mean(&trace.server_power[&sa][..80], 10);
        assert!(before > 400.0, "healthy SA at {before}");
        // Default staleness (3 rounds × 8 s) has long since degraded SA to
        // its fail-safe cap_min cap — despite its priority. Over-throttling
        // a blind server is the safe failure mode (§4.2).
        let during = Trace::tail_mean(&trace.server_power[&sa][..240], 10);
        assert!(
            during < 300.0,
            "stale SA must be clamped to fail-safe, got {during}"
        );
        // Telemetry resumed at t=240: SA regains its demand.
        let after = Trace::tail_mean(&trace.server_power[&sa], 10);
        assert!(after > 400.0, "recovered SA at {after}");
        assert!(trace.trips.is_empty());
        assert_eq!(engine.fault_layer().injected_total(), 1);
    }

    #[test]
    fn flapping_telemetry_feed_stays_safe_without_degrading() {
        // Feed B's telemetry flaps (5 s delivered / 10 s dropped). Every
        // down phase is shorter than the staleness budget, so no server
        // should be declared stale — and the physical feed must stay
        // within budget throughout.
        let rig = stranded_rig(RigConfig::table3());
        let mut engine = Engine::new(rig);
        engine.schedule(
            80,
            Event::FlapTelemetry(FeedId::B, crate::faults::FlapSpec { up_s: 5, down_s: 10 }),
        );
        engine.schedule(240, Event::StopFlap(FeedId::B));
        let trace = engine.run(320);
        assert!(trace.trips.is_empty());
        assert!(engine.plane().stale_servers().is_empty());
        let y_top = trace
            .node_series_on(FeedId::B, "Y Top CB")
            .expect("Y top recorded");
        assert!(Trace::tail_mean(y_top, 20) <= 700.0 * 1.02);
    }

    #[test]
    fn feed_fail_restore_round_trip_returns_budgets_and_caps() {
        // Satellite: Event::FailFeed then Event::RestoreFeed through the
        // engine must return budgets and per-server caps to within
        // tolerance of their pre-fault values.
        let rig = stranded_rig(RigConfig::table3());
        let servers: Vec<ServerId> = ["SA", "SB", "SC", "SD"]
            .iter()
            .map(|n| rig.server(n))
            .collect();
        let mut engine = Engine::new(rig);
        engine.schedule(120, Event::FailFeed(FeedId::B));
        engine.schedule(240, Event::RestoreFeed(FeedId::B));
        // Healthy segment first; snapshot the converged budgets.
        engine.run(120);
        let pre = engine
            .last_round_report()
            .expect("a round ran")
            .clone();
        let trace = engine.run(360);
        let post = engine.last_round_report().expect("a round ran").clone();
        for &id in &servers {
            for supply in [SupplyIndex::FIRST, SupplyIndex::SECOND] {
                let (Some(b0), Some(b1)) = (
                    pre.supply_budget(id, supply),
                    post.supply_budget(id, supply),
                ) else {
                    continue;
                };
                assert!(
                    (b1.as_f64() - b0.as_f64()).abs() <= 0.02 * b0.as_f64() + 2.0,
                    "budget for {id:?}/{supply:?} should return: pre {b0}, post {b1}"
                );
            }
            let pre_p = Trace::tail_mean(&trace.server_power[&id][..120], 8);
            let post_p = Trace::tail_mean(&trace.server_power[&id], 8);
            assert!(
                (post_p - pre_p).abs() <= 0.02 * pre_p + 5.0,
                "power for {id:?} should return: pre {pre_p:.1}, post {post_p:.1}"
            );
        }
        // Both trees budget again from their original roots.
        assert_eq!(engine.plane().trees().len(), 2);
        assert_eq!(
            engine.plane().root_budgets_now(),
            vec![Watts::new(700.0), Watts::new(700.0)]
        );
    }

    #[test]
    fn priority_rig_reaches_table2_steady_state() {
        let rig = priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        let trace = engine.run(160);

        // SA (high priority) ends near its full 420 W demand.
        let sa_power = Trace::tail_mean(&trace.server_power[&sa], 20);
        assert!(
            (sa_power - 420.0).abs() < 8.0,
            "SA steady power {sa_power}"
        );
        // SB is throttled toward Pcap_min.
        let sb_power = Trace::tail_mean(&trace.server_power[&sb], 20);
        assert!(sb_power < 290.0, "SB steady power {sb_power}");
        // Top CB load stays within the 1240 W budget (small transient
        // overshoot allowed).
        let top = trace.node_series("Top CB").expect("top CB recorded");
        let top_tail = Trace::tail_mean(top, 20);
        assert!(top_tail <= 1245.0, "top CB load {top_tail}");
    }

    #[test]
    fn no_breaker_trips_in_rig_runs() {
        let rig = priority_rig(RigConfig::table2());
        let mut engine = Engine::new(rig);
        let trace = engine.run(200);
        assert!(trace.trips.is_empty());
    }

    #[test]
    fn demand_change_event_tracked() {
        let rig = priority_rig(RigConfig::table2());
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        engine.schedule(60, Event::SetDemand(sb, Watts::new(200.0)));
        let trace = engine.run(150);
        let sb_power = Trace::tail_mean(&trace.server_power[&sb], 20);
        assert!(
            (sb_power - 200.0).abs() < 10.0,
            "SB should settle at its new 200 W demand, got {sb_power}"
        );
    }

    #[test]
    fn feed_failure_shifts_load_and_keeps_feeds_safe() {
        let config = RigConfig::table3().with_policy(PolicyKind::GlobalPriority);
        let rig = stranded_rig(config);
        let sc = rig.server("SC");
        let mut engine = Engine::new(rig);
        // At t=80 the Y side (feed B) dies; the X side inherits the full
        // 1400 W contractual budget.
        engine.schedule(80, Event::FailFeed(FeedId::B));
        engine.schedule(80, Event::SetRootBudgets(vec![Watts::new(1400.0)]));
        let trace = engine.run(240);

        // SC's Y-side supply carries nothing after the failure.
        let y_supply = &trace.supply_power[&(sc, SupplyIndex::SECOND)];
        assert!(y_supply[239] < 1.0, "Y supply still loaded: {}", y_supply[239]);
        // And its X-side supply carries the whole server.
        let x_supply = &trace.supply_power[&(sc, SupplyIndex::FIRST)];
        let total = &trace.server_power[&sc];
        assert!((x_supply[239] - total[239]).abs() < 1.0);
        assert!(trace.trips.is_empty());
    }

    #[test]
    fn stranded_power_reclaimed_only_with_spo() {
        let with = {
            let rig = stranded_rig(RigConfig::table3().with_spo(true));
            let mut engine = Engine::new(rig);
            let trace = engine.run(60);
            trace.stranded.iter().map(|(_, w)| *w).sum::<f64>()
        };
        let without = {
            let rig = stranded_rig(RigConfig::table3().with_spo(false));
            let mut engine = Engine::new(rig);
            let trace = engine.run(60);
            trace.stranded.iter().map(|(_, w)| *w).sum::<f64>()
        };
        assert!(with > 1.0, "SPO should find stranded power, got {with}");
        assert_eq!(without, 0.0);
    }

    #[test]
    fn trace_node_lookup() {
        let rig = stranded_rig(RigConfig::table3());
        let mut engine = Engine::new(rig);
        let trace = engine.run(10);
        assert!(trace.node_series_on(FeedId::A, "X Top CB").is_some());
        assert!(trace.node_series_on(FeedId::B, "Y Top CB").is_some());
        assert!(trace.node_series("nonexistent").is_none());
        assert_eq!(trace.seconds, 10);
    }

    #[test]
    fn single_supply_failure_shifts_load_and_stays_budgeted() {
        // SC loses its X-side supply at t=60: its Y-side supply picks up
        // the whole server and the controller keeps the Y feed safe.
        let rig = stranded_rig(RigConfig::table3());
        let sc = rig.server("SC");
        let mut engine = Engine::new(rig);
        engine.schedule(60, Event::FailSupply(sc, SupplyIndex::FIRST));
        let trace = engine.run(240);
        let x = &trace.supply_power[&(sc, SupplyIndex::FIRST)];
        let y = &trace.supply_power[&(sc, SupplyIndex::SECOND)];
        assert!(x[239] < 0.5, "failed supply still loaded: {}", x[239]);
        assert!(y[239] > 200.0, "survivor should carry the server: {}", y[239]);
        // The Y feed budget (700 W) is still respected at steady state.
        let y_top = trace
            .node_series_on(FeedId::B, "Y Top CB")
            .expect("Y top recorded");
        assert!(Trace::tail_mean(y_top, 20) <= 700.0 * 1.02);
        assert!(trace.trips.is_empty());
    }

    #[test]
    fn hot_spare_standby_consolidates_load() {
        // SD's second supply goes to cold standby at t=60 (hot-spare mode):
        // the first supply carries everything; leaving standby restores
        // the split.
        let rig = stranded_rig(RigConfig::table3());
        let sd = rig.server("SD");
        let mut engine = Engine::new(rig);
        engine.schedule(60, Event::SetStandby(sd, SupplyIndex::SECOND, true));
        engine.schedule(150, Event::SetStandby(sd, SupplyIndex::SECOND, false));
        let trace = engine.run(230);
        let first = &trace.supply_power[&(sd, SupplyIndex::FIRST)];
        let second = &trace.supply_power[&(sd, SupplyIndex::SECOND)];
        // During standby the second supply draws nothing.
        assert!(second[140] < 0.5, "standby supply loaded: {}", second[140]);
        let total_during = first[140] + second[140];
        assert!(total_during > 200.0);
        // After reactivation the intrinsic 46/54 split returns.
        let share_after = second[229] / (first[229] + second[229]);
        assert!(
            (share_after - 0.54).abs() < 0.02,
            "split after reactivation: {share_after}"
        );
        assert!(trace.trips.is_empty());
    }

    #[test]
    fn feed_failure_and_repair_round_trip() {
        // Feed B dies at t=60 and is repaired at t=200. SB (Y-only) goes
        // dark and must come back; SC/SD's split must return to normal;
        // the Y-side trees must budget again.
        let rig = stranded_rig(RigConfig::table3());
        let sb = rig.server("SB");
        let sc = rig.server("SC");
        let mut engine = Engine::new(rig);
        engine.schedule(60, Event::FailFeed(FeedId::B));
        engine.schedule(200, Event::RestoreFeed(FeedId::B));
        let trace = engine.run(340);

        // SB dark during the outage, alive again afterwards.
        assert!(trace.server_power[&sb][150] < 1.0, "SB should be dark");
        let sb_after = Trace::tail_mean(&trace.server_power[&sb], 20);
        assert!(
            sb_after > 300.0,
            "SB should recover after the repair, got {sb_after:.0}"
        );
        assert_eq!(trace.lost_servers, vec![(60, sb)]);

        // SC's Y-side supply carries load again at the end.
        let y = &trace.supply_power[&(sc, SupplyIndex::SECOND)];
        assert!(y[150] < 1.0);
        assert!(y[339] > 100.0, "SC Y supply should resume: {}", y[339]);

        // Both trees are budgeting again.
        assert_eq!(engine.plane().trees().len(), 2);
        assert!(trace.trips.is_empty());
    }

    #[test]
    fn dynamic_priority_promotion_shifts_power() {
        // SB starts low priority and capped; a scheduler promotes it to
        // P2 (above SA's P1) at t=80 — its power must rise toward demand
        // while SA yields.
        let rig = priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        engine.schedule(
            80,
            Event::SetPriority(sb, capmaestro_topology::Priority(2)),
        );
        let trace = engine.run(200);
        let sb_before = Trace::tail_mean(&trace.server_power[&sb][..80], 10);
        let sb_after = Trace::tail_mean(&trace.server_power[&sb], 20);
        assert!(sb_before < 300.0, "SB should start capped: {sb_before}");
        assert!(
            sb_after > 400.0,
            "promoted SB should approach its 413 W demand: {sb_after}"
        );
        let sa_after = Trace::tail_mean(&trace.server_power[&sa], 20);
        assert!(sa_after < 300.0, "demoted-by-comparison SA should yield: {sa_after}");
    }

    #[test]
    fn tail_mean_edge_cases() {
        assert_eq!(Trace::tail_mean(&[], 5), 0.0);
        assert_eq!(Trace::tail_mean(&[2.0, 4.0], 5), 3.0);
        assert_eq!(Trace::tail_mean(&[1.0, 2.0, 3.0, 4.0], 2), 3.5);
    }

    #[test]
    fn energy_accounting() {
        let rig = priority_rig(RigConfig::table2());
        let sa = rig.server("SA");
        let mut engine = Engine::new(rig);
        let trace = engine.run(3600); // one hour
        // SA runs at ~420 W all hour ⇒ ~420 Wh.
        let sa_wh = trace.server_energy_wh(sa);
        assert!((sa_wh - 420.0).abs() < 15.0, "SA energy {sa_wh:.0} Wh");
        // Fleet total ≤ budget × 1 h.
        let total = trace.total_energy_wh();
        assert!(total <= 1240.0 * 1.02, "total {total:.0} Wh");
        assert_eq!(trace.server_energy_wh(ServerId(99)), 0.0);
    }
}
