//! Process-level chaos for the distributed control plane.
//!
//! Two pieces, both pure functions of a seed so every participant can
//! compute them independently without coordination:
//!
//! - [`demand_at`] — the per-round offered-demand schedule. Socket agents
//!   apply it to their owned servers when they advance the world, and the
//!   in-process reference deployment applies the *same* schedule to the
//!   shared farm, so the socket-vs-channel differential test can demand
//!   bit-identical budgets.
//! - [`partition_plan`] — a kill/freeze schedule over agent processes for
//!   the `partition` bench. The plan guarantees at most one outstanding
//!   fault per agent, recovery slack between faults, and a quiet tail so
//!   every rack re-converges before the run ends.

use capmaestro_topology::ServerId;
use capmaestro_units::Watts;

/// SplitMix64: the repo's standard cheap seedable mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes `(seed, server, round)` into one well-distributed word.
fn mix(seed: u64, server: ServerId, round: u64) -> u64 {
    let a = splitmix64(seed ^ 0xd6e8_feb8_6659_fd93);
    let b = splitmix64(a ^ (server.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    splitmix64(b ^ round.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
}

/// Lowest offered demand the schedule ever sets.
pub const DEMAND_FLOOR_W: f64 = 250.0;
/// Highest offered demand the schedule ever sets.
pub const DEMAND_CEIL_W: f64 = 480.0;

/// The seeded demand schedule: what `server` should offer as demand just
/// before the world advances out of `round`, or `None` to leave the
/// previous offer in place (roughly three rounds out of four).
///
/// Pure: agents apply it to the servers they own, the reference
/// deployment applies it to every server, and both sides agree without a
/// message exchanged. Demands are quantized to whole watts so the f64 is
/// exactly representable on both sides.
pub fn demand_at(seed: u64, server: ServerId, round: u64) -> Option<Watts> {
    let word = mix(seed, server, round);
    if !word.is_multiple_of(4) {
        return None;
    }
    let span = (DEMAND_CEIL_W - DEMAND_FLOOR_W) as u64 + 1;
    let watts = DEMAND_FLOOR_W + ((word >> 8) % span) as f64;
    Some(Watts::new(watts))
}

/// One scheduled fault against one agent process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcFault {
    /// SIGKILL the agent at `at_round`, restart it `down_rounds` rounds
    /// later. The controller sees the connection tear, rides the
    /// staleness ladder, and recovers when the restarted agent
    /// reconnects.
    Kill {
        /// Round before which the process is killed.
        at_round: u64,
        /// Rounds the process stays down before the bench restarts it.
        down_rounds: u64,
    },
    /// SIGSTOP the agent at `at_round`, SIGCONT it `frozen_rounds`
    /// rounds later. Unlike a kill the process keeps its socket, so this
    /// exercises the heartbeat-silence path rather than the torn-frame
    /// path.
    Freeze {
        /// Round before which the process is stopped.
        at_round: u64,
        /// Rounds the process stays frozen.
        frozen_rounds: u64,
    },
}

impl ProcFault {
    /// The round the fault fires.
    pub fn at_round(self) -> u64 {
        match self {
            ProcFault::Kill { at_round, .. } | ProcFault::Freeze { at_round, .. } => at_round,
        }
    }

    /// The last round the agent may still be unavailable.
    pub fn clears_by(self) -> u64 {
        match self {
            ProcFault::Kill {
                at_round,
                down_rounds,
            } => at_round + down_rounds,
            ProcFault::Freeze {
                at_round,
                frozen_rounds,
            } => at_round + frozen_rounds,
        }
    }
}

/// The full kill/freeze schedule for one chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// `actions[agent]` — that agent's faults, sorted by round,
    /// non-overlapping with recovery slack between them.
    pub actions: Vec<Vec<ProcFault>>,
    /// No fault is outstanding at or after this round: the quiet tail in
    /// which every rack must re-converge to non-fail-safe budgets.
    pub quiet_from: u64,
}

impl PartitionPlan {
    /// Faults scheduled to fire entering `round`, as `(agent, action)`.
    pub fn due(&self, round: u64) -> Vec<(usize, ProcFault)> {
        let mut due = Vec::new();
        for (agent, actions) in self.actions.iter().enumerate() {
            for &a in actions {
                if a.at_round() == round {
                    due.push((agent, a));
                }
            }
        }
        due
    }

    /// Total faults across all agents.
    pub fn fault_count(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }
}

/// Builds a seeded fault schedule for `agents` agent processes over a run
/// of `rounds` control rounds.
///
/// Guarantees, by construction:
///
/// - every agent suffers at least one fault (runs long enough to fit one);
/// - at most one fault is outstanding per agent at any time, with at
///   least three clear rounds between an agent's faults;
/// - every fault clears before `rounds - quiet_tail`, so the final
///   `quiet_tail` rounds are fault-free recovery time.
///
/// # Panics
///
/// Panics if `agents == 0` or the run is too short to fit a fault and the
/// quiet tail (`rounds <= quiet_tail + 6`).
pub fn partition_plan(seed: u64, agents: usize, rounds: u64, quiet_tail: u64) -> PartitionPlan {
    assert!(agents > 0, "at least one agent is required");
    assert!(
        rounds > quiet_tail + 6,
        "run too short for a fault plus the quiet tail"
    );
    let quiet_from = rounds - quiet_tail;
    let mut actions: Vec<Vec<ProcFault>> = vec![Vec::new(); agents];
    for (agent, slot) in actions.iter_mut().enumerate() {
        // Faults start no earlier than round 2 (let the fleet converge
        // once) and must clear by quiet_from.
        let mut next_free = 2u64;
        let mut k = 0u64;
        loop {
            let word = splitmix64(seed ^ splitmix64((agent as u64) << 32 | k));
            let outage = 2 + (word >> 16) % 3; // 2..=4 rounds down
            let latest_start = match quiet_from.checked_sub(outage + 1) {
                Some(l) if l > next_free => l,
                _ => break,
            };
            let at_round = next_free + (word >> 32) % (latest_start - next_free + 1);
            let action = if word.is_multiple_of(2) {
                ProcFault::Kill {
                    at_round,
                    down_rounds: outage,
                }
            } else {
                ProcFault::Freeze {
                    at_round,
                    frozen_rounds: outage,
                }
            };
            slot.push(action);
            next_free = action.clears_by() + 3;
            k += 1;
            if slot.len() >= 3 {
                break;
            }
        }
        slot.sort_by_key(|a| a.at_round());
    }
    PartitionPlan {
        actions,
        quiet_from,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_schedule_is_pure_and_bounded() {
        let id = ServerId(7);
        let a = demand_at(42, id, 5);
        let b = demand_at(42, id, 5);
        assert_eq!(a, b, "same inputs must give the same answer");
        let mut fired = 0u32;
        for round in 0..400 {
            for s in 0..8 {
                if let Some(w) = demand_at(42, ServerId(s), round) {
                    fired += 1;
                    assert!(w.as_f64() >= DEMAND_FLOOR_W && w.as_f64() <= DEMAND_CEIL_W);
                    assert_eq!(w.as_f64().fract(), 0.0, "whole watts only");
                }
            }
        }
        // ~25% firing rate over 3200 samples; allow a wide band.
        assert!(fired > 400 && fired < 1600, "fired {fired} of 3200");
    }

    #[test]
    fn demand_schedule_varies_by_seed() {
        let mut differs = false;
        for round in 0..50 {
            if demand_at(1, ServerId(0), round) != demand_at(2, ServerId(0), round) {
                differs = true;
                break;
            }
        }
        assert!(differs, "different seeds should give different schedules");
    }

    #[test]
    fn partition_plan_respects_guarantees() {
        for seed in [1u64, 7, 99] {
            let plan = partition_plan(seed, 4, 40, 8);
            assert_eq!(plan.actions.len(), 4);
            assert_eq!(plan.quiet_from, 32);
            assert!(plan.fault_count() >= 4, "every agent gets a fault");
            for actions in &plan.actions {
                assert!(!actions.is_empty());
                let mut prev_clear: Option<u64> = None;
                for a in actions {
                    assert!(a.at_round() >= 2);
                    assert!(a.clears_by() < plan.quiet_from);
                    if let Some(p) = prev_clear {
                        assert!(a.at_round() >= p + 3, "recovery slack between faults");
                    }
                    prev_clear = Some(a.clears_by());
                }
            }
        }
    }

    #[test]
    fn partition_plan_is_deterministic() {
        assert_eq!(partition_plan(5, 4, 40, 8), partition_plan(5, 4, 40, 8));
        assert_ne!(partition_plan(5, 4, 40, 8), partition_plan(6, 4, 40, 8));
    }

    #[test]
    #[should_panic(expected = "run too short")]
    fn partition_plan_rejects_short_runs() {
        let _ = partition_plan(1, 2, 10, 8);
    }
}
