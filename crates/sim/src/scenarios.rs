//! Ready-to-run builds of the paper's experimental rigs.

use capmaestro_core::alloc::AllocatorKind;
use capmaestro_core::plane::{BudgetSource, ControlPlane, Farm, PlaneConfig};
use capmaestro_core::policy::PolicyKind;
use capmaestro_core::tree::ControlTree;
use capmaestro_server::{PsuBank, Server, ServerConfig};
use capmaestro_topology::presets::{
    figure2_feed, figure7a_rig, table4_datacenter, DataCenterParams, RIG_SERVER_NAMES,
};
use capmaestro_topology::{Priority, ServerId, Topology};
use capmaestro_units::{Ratio, Seconds, Watts};
use capmaestro_workload::NormalSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of a four-server rig experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigConfig {
    /// Offered demand of SA..SD in watts.
    pub demands: [f64; 4],
    /// The capping policy.
    pub policy: PolicyKind,
    /// The budget-split allocator raced at every tree node.
    pub allocator: AllocatorKind,
    /// Run the stranded-power optimization each round.
    pub spo: bool,
    /// PSU conversion efficiency.
    pub efficiency: f64,
}

impl RigConfig {
    /// Table 2's measured demands under Global Priority, SPO off.
    pub fn table2() -> Self {
        RigConfig {
            demands: [420.0, 413.0, 417.0, 423.0],
            policy: PolicyKind::GlobalPriority,
            allocator: AllocatorKind::Waterfall,
            spo: false,
            efficiency: 0.94,
        }
    }

    /// Table 3's measured demands (the stranded-power rig).
    pub fn table3() -> Self {
        RigConfig {
            demands: [414.0, 415.0, 433.0, 439.0],
            policy: PolicyKind::GlobalPriority,
            allocator: AllocatorKind::Waterfall,
            spo: true,
            efficiency: 0.94,
        }
    }

    /// Selects the policy (builder-style).
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the budget-split allocator (builder-style).
    #[must_use]
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Enables/disables SPO (builder-style).
    #[must_use]
    pub fn with_spo(mut self, spo: bool) -> Self {
        self.spo = spo;
        self
    }
}

/// A rig ready to simulate: topology + farm + control plane.
#[derive(Debug)]
pub struct Rig {
    /// The power topology.
    pub topology: Topology,
    /// The simulated servers.
    pub farm: Farm,
    /// The control plane managing them.
    pub plane: ControlPlane,
}

impl Rig {
    /// Looks up a rig server by name ("SA".."SD").
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn server(&self, name: &str) -> ServerId {
        self.topology
            .server_by_name(name)
            .unwrap_or_else(|| panic!("rig has no server named {name}"))
    }
}

/// Builds the §6.2 priority-comparison rig: the Fig. 2 feed with four
/// single-corded servers under a 1240 W contractual budget (emulating one
/// failed feed of a redundant pair).
pub fn priority_rig(config: RigConfig) -> Rig {
    let topology = figure2_feed();
    let trees: Vec<ControlTree> = topology
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let mut farm = Farm::new();
    for (i, name) in RIG_SERVER_NAMES.iter().enumerate() {
        let id = topology.server_by_name(name).expect("preset server");
        let mut server = Server::new(
            ServerConfig::paper_default()
                .with_bank(PsuBank::balanced(1, Ratio::new(config.efficiency))),
        );
        server.set_offered_demand(Watts::new(config.demands[i]));
        server.settle();
        farm.insert(id, server);
    }
    let plane = ControlPlane::new(
        trees,
        vec![Watts::new(1240.0)],
        PlaneConfig::default()
            .with_policy(config.policy)
            .with_allocator(config.allocator)
            .with_spo(config.spo)
            .with_control_period(Seconds::new(8.0)),
    );
    Rig {
        topology,
        farm,
        plane,
    }
}

/// Per-server intrinsic X-side load shares for the stranded-power rig:
/// SA is X-only, SB is Y-only, SC and SD split unevenly (the splits that
/// reproduce Table 3's stranded-power pattern).
pub const STRANDED_RIG_X_SHARES: [f64; 4] = [1.0, 0.0, 0.53, 0.46];

/// Builds the §6.3 stranded-power rig: the Fig. 7a dual-feed topology with
/// SA (X-only, high priority), SB (Y-only), and dual-corded SC/SD whose
/// intrinsic splits mismatch the per-feed budgets. Each feed carries a
/// 700 W budget.
pub fn stranded_rig(config: RigConfig) -> Rig {
    let topology = figure7a_rig();
    let trees: Vec<ControlTree> = topology
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let mut farm = Farm::new();
    for (i, name) in RIG_SERVER_NAMES.iter().enumerate() {
        let id = topology.server_by_name(name).expect("preset server");
        let x_share = STRANDED_RIG_X_SHARES[i];
        let bank = if x_share == 0.0 || x_share == 1.0 {
            PsuBank::balanced(1, Ratio::new(config.efficiency))
        } else {
            PsuBank::dual(x_share, Ratio::new(config.efficiency))
        };
        let mut server =
            Server::new(ServerConfig::paper_default().with_bank(bank));
        server.set_offered_demand(Watts::new(config.demands[i]));
        server.settle();
        farm.insert(id, server);
    }
    let plane = ControlPlane::new(
        trees,
        vec![Watts::new(700.0), Watts::new(700.0)],
        PlaneConfig::default()
            .with_policy(config.policy)
            .with_allocator(config.allocator)
            .with_spo(config.spo)
            .with_control_period(Seconds::new(8.0)),
    );
    Rig {
        topology,
        farm,
        plane,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_rig_shape() {
        let rig = priority_rig(RigConfig::table2());
        assert_eq!(rig.farm.len(), 4);
        assert_eq!(rig.plane.trees().len(), 1);
        let sa = rig.server("SA");
        assert_eq!(
            rig.farm.get(sa).unwrap().offered_demand(),
            Watts::new(420.0)
        );
        // Single-corded servers.
        assert_eq!(rig.farm.get(sa).unwrap().bank().len(), 1);
    }

    #[test]
    fn stranded_rig_shape() {
        let rig = stranded_rig(RigConfig::table3());
        assert_eq!(rig.farm.len(), 4);
        assert_eq!(rig.plane.trees().len(), 2);
        let sc = rig.server("SC");
        let bank = rig.farm.get(sc).unwrap().bank();
        assert_eq!(bank.len(), 2);
        let shares = bank.effective_shares();
        assert!((shares[0].as_f64() - 0.53).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no server named")]
    fn unknown_server_panics() {
        let rig = priority_rig(RigConfig::table2());
        let _ = rig.server("SX");
    }

    #[test]
    fn config_builders() {
        let c = RigConfig::table2()
            .with_policy(PolicyKind::LocalPriority)
            .with_spo(true);
        assert_eq!(c.policy, PolicyKind::LocalPriority);
        assert!(c.spo);
    }
}

/// Configuration of a full data-center rig (Table 4 style) for closed-loop
/// simulation — smaller `params` make debug-mode tests fast.
#[derive(Debug, Clone)]
pub struct DataCenterRigConfig {
    /// Physical layout (racks, device ratings, servers per rack).
    pub params: DataCenterParams,
    /// Fraction of servers that are high priority.
    pub high_priority_fraction: f64,
    /// Fleet-average CPU utilization the servers start at.
    pub utilization: f64,
    /// Per-server utilization jitter (σ of a clamped normal).
    pub jitter_std: f64,
    /// Half-width of the per-server PSU split imbalance: supply 0's share
    /// is drawn uniformly from `0.5 ± split_jitter`.
    pub split_jitter: f64,
    /// Capping policy.
    pub policy: PolicyKind,
    /// The budget-split allocator raced at every tree node.
    pub allocator: AllocatorKind,
    /// Run SPO each round.
    pub spo: bool,
    /// Contractual budget per phase, shared across feeds (already
    /// including any loading margin).
    pub contractual_per_phase: Watts,
    /// Seed for priorities, demands, and splits.
    pub seed: u64,
}

impl Default for DataCenterRigConfig {
    fn default() -> Self {
        DataCenterRigConfig {
            params: DataCenterParams::default(),
            high_priority_fraction: 0.3,
            utilization: 0.3,
            jitter_std: 0.05,
            split_jitter: 0.1,
            policy: PolicyKind::GlobalPriority,
            allocator: AllocatorKind::Waterfall,
            spo: false,
            contractual_per_phase: Watts::from_kilowatts(700.0) * 0.95,
            seed: 0xD47ACE,
        }
    }
}

impl DataCenterRigConfig {
    /// A 1/9th-scale center (18 racks) with a proportionally scaled
    /// contractual budget — fast enough for debug-mode tests while keeping
    /// every per-device rating authentic.
    pub fn small() -> Self {
        DataCenterRigConfig {
            params: DataCenterParams {
                racks: 18,
                transformers_per_feed: 2,
                rpps_per_transformer: 3,
                cdus_per_rpp: 3,
                servers_per_rack: 12,
                ..DataCenterParams::default()
            },
            contractual_per_phase: Watts::from_kilowatts(700.0 / 9.0) * 0.95,
            ..DataCenterRigConfig::default()
        }
    }
}

/// Builds a closed-loop data-center rig: the Table 4 topology (or a scaled
/// subset), dual-corded servers with randomized split imbalance and
/// utilization, and a control plane over all six trees with a shared
/// per-phase contractual budget ([`BudgetSource::SharedPerPhase`], so feed
/// failover needs no operator action).
pub fn datacenter_rig(config: &DataCenterRigConfig) -> Rig {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total = config.params.total_servers();
    let high = (config.high_priority_fraction * total as f64).round() as usize;
    // Exact-fraction random priority placement.
    let mut priorities = vec![Priority::LOW; total];
    let mut indices: Vec<u32> = (0..total as u32).collect();
    for i in 0..high.min(total) {
        let j = rng.random_range(i..total);
        indices.swap(i, j);
        priorities[indices[i] as usize] = Priority::HIGH;
    }
    let (topology, placements) =
        table4_datacenter(&config.params, |i| priorities[i]);

    let trees: Vec<ControlTree> = topology
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();

    let jitter = NormalSampler::new(config.utilization, config.jitter_std);
    let mut farm = Farm::new();
    for placement in &placements {
        let split = 0.5
            + config.split_jitter * (rng.random::<f64>() * 2.0 - 1.0);
        let cfg = ServerConfig::paper_default().with_split(split.clamp(0.05, 0.95));
        let mut server = Server::new(cfg);
        let u = jitter.sample_clamped(&mut rng, 0.0, 1.0);
        server.set_utilization(Ratio::new(u));
        server.settle();
        farm.insert(placement.server, server);
    }

    let plane = ControlPlane::with_budget_source(
        trees,
        BudgetSource::SharedPerPhase(config.contractual_per_phase),
        PlaneConfig::default()
            .with_policy(config.policy)
            .with_allocator(config.allocator)
            .with_spo(config.spo)
            .with_control_period(Seconds::new(8.0)),
    );
    Rig {
        topology,
        farm,
        plane,
    }
}
